"""Quickstart — run the space-time parallel N-body solver end to end.

Builds the paper's model problem (a spherical vortex sheet discretised by
regularised vortex particles), then solves it three ways:

1. classical serial RK4 (the textbook vortex-method baseline),
2. serial SDC(4) (the paper's time-serial reference scheme),
3. PFASST(2, 2, 4) on the Barnes-Hut tree code with MAC coarsening
   (theta 0.3 fine / 0.6 coarse) — the paper's space-time parallel solver.

All three must agree on the resulting flow; PFASST additionally reports
the measured coarse/fine cost ratio that drives its parallel speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SheetConfig,
    SolverConfig,
    SpaceTimeSolver,
    spherical_vortex_sheet,
)
from repro.core import SpaceConfig, TimeConfig
from repro.vortex.diagnostics import compute_diagnostics


def main() -> None:
    # -- the model problem (paper Sec. II) ------------------------------
    sheet = SheetConfig(n=800, sigma_over_h=3.0)
    particles = spherical_vortex_sheet(sheet)
    print(f"spherical vortex sheet: N={particles.n}, h={sheet.h:.4f}, "
          f"sigma={sheet.sigma:.4f}")
    print("initial invariants:",
          compute_diagnostics(particles).as_dict())

    t_end, dt = 2.0, 0.5
    runs = {
        "RK4 (direct)": SolverConfig(
            space=SpaceConfig(evaluator="direct"),
            time=TimeConfig(method="rk4", t_end=t_end, dt=dt),
        ),
        "SDC(4) (direct)": SolverConfig(
            space=SpaceConfig(evaluator="direct"),
            time=TimeConfig(method="sdc", t_end=t_end, dt=dt, sweeps=4),
        ),
        "PFASST(2,2,4) (tree)": SolverConfig(
            space=SpaceConfig(evaluator="tree", theta=0.3,
                              theta_coarse=0.6, leaf_size=48),
            time=TimeConfig(method="pfasst", t_end=t_end, dt=dt,
                            iterations=2, coarse_sweeps=2, p_time=4),
        ),
    }

    finals = {}
    for name, config in runs.items():
        solver = SpaceTimeSolver(particles, sheet.sigma, config)
        result = solver.run()
        finals[name] = result.final
        line = (f"{name:<22s} fine evals: {result.fine_evals:4d}  "
                f"wall in evaluator: {result.fine_eval_seconds:6.2f}s")
        if result.coarse_evals:
            line += (f"  coarse evals: {result.coarse_evals:4d}  "
                     f"alpha measured: {result.alpha_measured:.2f}")
        print(line)

    # -- agreement check -------------------------------------------------
    ref = finals["SDC(4) (direct)"].positions
    for name, ps in finals.items():
        err = np.max(np.abs(ps.positions - ref)) / np.max(np.abs(ref))
        print(f"relative position difference vs SDC(4): {name:<22s} "
              f"{err:.2e}")

    drift = compute_diagnostics(finals["PFASST(2,2,4) (tree)"]).as_dict()
    print("final invariants (PFASST run):", drift)


if __name__ == "__main__":
    main()
