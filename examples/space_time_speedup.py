"""Space-time speedup study — a miniature of the paper's Fig. 8.

Measures, under the simulated MPI's virtual clocks:

* the time-serial SDC(4) baseline on the Barnes-Hut RHS (theta = 0.3),
* PFASST(2, 2, P_T) with MAC-coarsened coarse level (theta = 0.6)
  for increasing numbers of time ranks,

and compares the measured speedup with the theoretical curve S(P_T;
alpha) of Eq. 24, where alpha comes from the *measured* fine/coarse
evaluation-cost ratio — the exact procedure of Sec. IV-B.

Run:  python examples/space_time_speedup.py
"""

import numpy as np

from repro import SheetConfig, spherical_vortex_sheet
from repro.parallel import CommCostModel, Scheduler
from repro.pfasst import (
    LevelSpec,
    PfasstConfig,
    run_pfasst,
    speedup_bound,
    speedup_two_level,
)
from repro.sdc import SDCStepper
from repro.tree import TreeEvaluator
from repro.vortex import VortexProblem, get_kernel

N = 700
N_STEPS, DT = 8, 0.5
P_TIMES = (1, 2, 4, 8)
KS, KP, Y = 4, 2, 2  # SDC(4) baseline; PFASST(2, 2, .)


def main() -> None:
    sheet = SheetConfig(n=N, sigma_over_h=3.0)
    particles = spherical_vortex_sheet(sheet)
    kernel = get_kernel("algebraic6")
    fine_eval = TreeEvaluator(kernel, sheet.sigma, theta=0.3, leaf_size=48)
    # shares the fine evaluator's tree-state cache: one build + one moment
    # pass per particle configuration, two theta traversals
    coarse_eval = fine_eval.coarsened(theta=0.6)
    fine = VortexProblem(particles.volumes, fine_eval)
    coarse = fine.with_evaluator(coarse_eval)
    u0 = particles.state()

    # measure the coarsening ratio (paper: 2.65x for the small setup)
    for ev in (fine_eval, coarse_eval):
        ev.reset_stats()
    for _ in range(3):
        fine.rhs(0.0, u0)
        coarse.rhs(0.0, u0)
    ratio = fine_eval.mean_cost / coarse_eval.mean_cost
    alpha = (2.0 / 3.0) / ratio
    print(f"theta 0.3 vs 0.6 cost ratio: {ratio:.2f}  ->  alpha = {alpha:.3f}")

    # serial baseline under the same virtual clock
    def serial_program(comm):
        stepper = SDCStepper(fine, num_nodes=3, sweeps=KS)
        stepper.run(u0, 0.0, N_STEPS * DT, DT)
        yield comm.work(0.0)

    sched = Scheduler(1, measure_compute=True)
    sched.run(serial_program)
    serial_time = sched.makespan
    print(f"serial SDC(4): {serial_time:.2f}s virtual "
          f"({N_STEPS} steps of dt={DT})")

    print(f"\n{'P_T':>4} {'makespan':>10} {'speedup':>9} "
          f"{'theory':>8} {'bound':>7}")
    for p_t in P_TIMES:
        cfg = PfasstConfig(t0=0.0, t_end=N_STEPS * DT, n_steps=N_STEPS,
                           iterations=KP)
        specs = [
            LevelSpec(fine, num_nodes=3, sweeps=1),
            LevelSpec(coarse, num_nodes=2, sweeps=Y),
        ]
        res = run_pfasst(cfg, specs, u0, p_time=p_t,
                         cost_model=CommCostModel(), measure_compute=True)
        s_meas = serial_time / res.makespan
        s_theory = float(speedup_two_level(p_t, alpha, KS, KP, Y))
        s_bound = float(speedup_bound(p_t, KS, KP))
        print(f"{p_t:>4} {res.makespan:>9.2f}s {s_meas:>9.2f} "
              f"{s_theory:>8.2f} {s_bound:>7.1f}")

    print("\nspeedup keeps growing with P_T even though the spatial "
          "solver is already saturated — the paper's core message.")


if __name__ == "__main__":
    main()
