"""Fault-tolerant PFASST demo — surviving a rank crash mid-run.

Injects a hard crash into time rank 2 of a PFASST(P_T=4) run of the
linear oscillator and compares the three recovery policies:

* ``fail``          — the run dies with a RankFailure diagnostic;
* ``cold-restart``  — all ranks redo the block from its predictor;
* ``warm-restart``  — the lost rank is rebuilt from its neighbour's
  coarse solution (the paper's "less accurate but usable copy") and
  iterating continues, at a fraction of the cold restart's cost.

Both recovering policies reconverge to the fault-free solution; the
printed table quantifies the extra iterations each one paid.

Run:  python examples/fault_tolerant_pfasst.py
CI smoke mode (exit non-zero unless warm restart reconverges):
      python examples/fault_tolerant_pfasst.py --smoke
"""

import sys

import numpy as np

from repro.parallel import FaultPlan, RankCrash, RankFailure
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.vortex.problem import ODEProblem

P_TIME = 4
CRASH = RankCrash(rank=2, after_ops=26)  # lands inside V-cycle iteration 2
TOL = 1e-11


class Oscillator(ODEProblem):
    """u' = A u with lightly damped complex spectrum (-0.2 +- 2i)."""

    matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.matrix @ u


def build():
    problem = Oscillator()
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    u0 = np.array([1.0, 2.0])
    return specs, u0


def config(recovery: str) -> PfasstConfig:
    return PfasstConfig(
        t0=0.0, t_end=1.0, n_steps=P_TIME, iterations=30,
        residual_tol=TOL, recovery=recovery,
    )


def main(argv) -> int:
    smoke = "--smoke" in argv
    specs, u0 = build()
    baseline = run_pfasst(config("fail"), specs, u0, p_time=P_TIME)
    print(f"fault-free:     u(T) = {baseline.u_end}, "
          f"{sum(baseline.iterations_done)} iterations")

    plan = FaultPlan(crashes=(CRASH,))
    try:
        run_pfasst(config("fail"), specs, u0, p_time=P_TIME, fault_plan=plan)
    except RankFailure as exc:
        first_line = str(exc).splitlines()[0]
        print(f"\npolicy 'fail':  run dies as expected — {first_line}")

    rows = []
    for policy in ("cold-restart", "warm-restart"):
        res = run_pfasst(
            config(policy), specs, u0, p_time=P_TIME, fault_plan=plan,
            verify=True,  # injection is replay-stable: results must be
        )                 # byte-identical under the reversed service order
        err = float(np.abs(res.u_end - baseline.u_end).max())
        rows.append((policy, err, res))
        print(f"\npolicy {policy!r}: reconverged, |u - u_ff| = {err:.2e}, "
              f"{res.recovery_iterations} extra iteration(s)")
        for event in res.recoveries:
            print(f"  recovery: block {event['block']} attempt "
                  f"{event['attempt']} at iteration {event['k']} "
                  f"(failed ranks {event['failed_ranks']})")
        print("  " + res.resilience.summary().replace("\n", "\n  "))

    (cold, warm) = rows
    print(f"\nwarm restart paid {warm[2].recovery_iterations} extra "
          f"iteration(s) vs {cold[2].recovery_iterations} for cold restart")

    if smoke:
        ok = (
            warm[1] < 100 * TOL
            and cold[1] < 100 * TOL
            and warm[2].recovery_iterations < cold[2].recovery_iterations
        )
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
