"""Traced PFASST run — record, export and render a Fig. 6 schedule.

Runs PFASST(2 iterations, P_T=4) on a damped oscillator with a
:class:`repro.obs.Tracer` attached to the simulated-MPI scheduler and a
global metrics registry installed, then writes

* ``trace.json``        — the native repro-trace file (input to the
  ``repro-trace`` CLI: summarize / gantt / diff);
* ``trace.chrome.json`` — Chrome ``trace_event`` JSON; open it at
  https://ui.perfetto.dev to scrub the virtual timeline, one thread per
  simulated rank;
* ``schedule.svg``      — the per-rank Gantt chart (the paper's Fig. 6);

and prints the ASCII Gantt plus the run's message counters.

Run:  python examples/traced_run.py [--outdir DIR]
CI smoke mode (exit non-zero unless the trace has all ranks + sweeps):
      python examples/traced_run.py --smoke --outdir /tmp
"""

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_chrome_trace,
    render_ascii,
    render_svg,
    save_trace,
    use_metrics,
)
from repro.parallel import CommCostModel
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.vortex.problem import ODEProblem

P_TIME = 4


class Oscillator(ODEProblem):
    """u' = A u with lightly damped complex spectrum (-0.2 +- 2i)."""

    matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.matrix @ u


def traced_run():
    """Run PFASST with tracing on; returns (result, tracer, metrics)."""
    problem = Oscillator()
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    config = PfasstConfig(
        t0=0.0, t_end=1.0, n_steps=P_TIME, iterations=2, trace=True
    )
    tracer = Tracer(meta={"example": "traced_run", "p_time": P_TIME})
    metrics = MetricsRegistry()
    with use_metrics(metrics):
        result = run_pfasst(
            config, specs, np.array([1.0, 2.0]), p_time=P_TIME,
            cost_model=CommCostModel(), measure_compute=True,
            tracer=tracer,
        )
    return result, tracer, metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--outdir", default=".", help="output directory")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: validate the trace, no chatter")
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    result, tracer, metrics = traced_run()

    trace_path = save_trace(tracer, outdir / "trace.json", metrics=metrics)
    chrome_path = export_chrome_trace(tracer, outdir / "trace.chrome.json")
    svg_path = outdir / "schedule.svg"
    svg_path.write_text(render_svg(tracer.spans))

    ranks = {f"rank{r}" for r in range(P_TIME)}
    sweeps = {s.name for s in tracer.spans if s.name.startswith("sweep:")}
    ok = ranks.issubset(set(tracer.tracks())) and {
        "sweep:L0:k0", "sweep:L1:k0", "sweep:L0:k1", "sweep:L1:k1"
    }.issubset(sweeps)

    if args.smoke:
        print(f"traced_run smoke: {'OK' if ok else 'FAILED'} "
              f"({len(tracer.spans)} spans, {len(tracer.instants)} instants"
              f", trace at {trace_path})")
        return 0 if ok else 1

    print(f"u(T) = {result.u_end}, virtual makespan "
          f"{result.makespan * 1e3:.3f} ms\n")
    print(render_ascii(tracer.spans))
    counters = metrics.as_dict()["counters"]
    print(f"\nmessages: {counters.get('mpi.messages', 0):.0f}, "
          f"bytes: {counters.get('mpi.bytes', 0):.0f}")
    print(f"\nwrote {trace_path}, {chrome_path}, {svg_path}")
    print(f"inspect with:  repro-trace summarize {trace_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
