"""Coulomb tree-code demo — PEPC's original use case.

Builds a homogeneous, charge-neutral plasma cube (the workload of the
paper's Fig. 5 scaling study), solves for the electrostatic potential and
field with the Barnes-Hut solver at several MAC parameters, and checks
the accuracy/cost trade-off against direct summation.  Also shows the SFC
domain decomposition a parallel run would use.

Run:  python examples/coulomb_plasma.py
"""

import numpy as np

from repro import TreeCoulombSolver
from repro.nbody import coulomb_direct
from repro.tree.domain import branch_counts, sfc_partition

N = 3000


def main() -> None:
    rng = np.random.default_rng(42)
    positions = rng.random((N, 3))
    charges = np.concatenate([np.ones(N // 2), -np.ones(N - N // 2)])
    print(f"neutral plasma cube: N={N}, total charge "
          f"{charges.sum():+.0f}")

    phi_ref, e_ref = coulomb_direct(positions, positions, charges)
    print(f"direct O(N^2) reference: potential range "
          f"[{phi_ref.min():.3f}, {phi_ref.max():.3f}]")

    print(f"\n{'theta':>6} {'rel phi err':>12} {'rel E err':>10} "
          f"{'interactions/particle':>22}")
    for theta in (0.3, 0.6, 1.0):
        solver = TreeCoulombSolver(theta=theta, leaf_size=48)
        phi, e = solver.compute(positions, charges)
        err_phi = np.max(np.abs(phi - phi_ref)) / np.max(np.abs(phi_ref))
        err_e = np.max(np.abs(e - e_ref)) / np.max(np.abs(e_ref))
        print(f"{theta:>6.1f} {err_phi:>12.2e} {err_e:>10.2e} "
              f"{solver.last_stats.interactions_per_particle:>22.0f}")

    # the parallel decomposition a P_S-rank run would use (paper Fig. 3)
    print("\nSFC domain decomposition (what each PEPC rank would own):")
    for ranks in (4, 16):
        d = sfc_partition(positions, ranks, curve="hilbert")
        b = branch_counts(d)
        print(f"  {ranks:>3} ranks: {d.counts.min()}-{d.counts.max()} "
              f"particles/rank, {b.sum()} branch nodes to exchange")


if __name__ == "__main__":
    main()
