"""Vortex sheet roll-up — the paper's Fig. 1 scenario, with CSV output.

Evolves the spherical vortex sheet with second-order Runge-Kutta and
dt = 1 (the paper's visualisation run) and writes particle snapshots to
CSV files that any plotting tool can render: columns
``x, y, z, speed, |omega|``.  Particle size/colour in the paper's figure
correspond to the ``speed`` column.

Run:  python examples/vortex_sheet.py [out_dir]
"""

import csv
import pathlib
import sys

import numpy as np

from repro import SheetConfig, spherical_vortex_sheet
from repro.integrators import get_integrator
from repro.vortex import DirectEvaluator, VortexProblem, get_kernel, unpack_state
from repro.vortex.diagnostics import compute_diagnostics
from repro.vortex.particles import ParticleSystem

N_PARTICLES = 1000
T_END = 10.0
DT = 1.0
SNAPSHOT_EVERY = 2.0


def write_snapshot(path: pathlib.Path, positions, velocity, vorticity):
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["x", "y", "z", "speed", "vorticity_mag"])
        speed = np.linalg.norm(velocity, axis=1)
        wmag = np.linalg.norm(vorticity, axis=1)
        for row in zip(positions[:, 0], positions[:, 1], positions[:, 2],
                       speed, wmag):
            writer.writerow([f"{v:.6e}" for v in row])


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "sheet_out")
    out_dir.mkdir(exist_ok=True)

    sheet = SheetConfig(n=N_PARTICLES, sigma_over_h=3.0)
    particles = spherical_vortex_sheet(sheet)
    kernel = get_kernel("algebraic6")
    evaluator = DirectEvaluator(kernel, sheet.sigma)
    problem = VortexProblem(particles.volumes, evaluator)
    rk2 = get_integrator("rk2")

    print(f"evolving N={N_PARTICLES} sheet to T={T_END} with RK2, dt={DT}")
    next_snapshot = [0.0]

    def callback(t: float, u: np.ndarray) -> None:
        if t + 1e-9 < next_snapshot[0]:
            return
        next_snapshot[0] += SNAPSHOT_EVERY
        x, w = unpack_state(u)
        field = evaluator.field(x, w * particles.volumes[:, None],
                                gradient=False)
        path = out_dir / f"sheet_t{t:05.1f}.csv"
        write_snapshot(path, x, field.velocity, w)
        ps = ParticleSystem(x, w, particles.volumes)
        d = compute_diagnostics(ps, time=t).as_dict()
        print(f"t={t:5.1f}  mean z={x[:, 2].mean():+.3f}  "
              f"max |u|={np.linalg.norm(field.velocity, axis=1).max():.3f}  "
              f"enstrophy={d['enstrophy']:.4f}  -> {path.name}")

    rk2.run(problem, particles.state(), 0.0, T_END, DT, callback=callback)
    print(f"snapshots written to {out_dir}/")


if __name__ == "__main__":
    main()
