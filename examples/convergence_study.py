"""Convergence study — verify integrator orders on the model problem.

A compact version of the paper's Sec. IV-A analysis: runs RK2/RK3/RK4,
SDC(2..4) and PFASST variants over a dt ladder against a high-order SDC
reference and prints the observed convergence orders.

Run:  python examples/convergence_study.py
"""

import math

import numpy as np

from repro import SheetConfig, spherical_vortex_sheet
from repro.integrators import get_integrator
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import SDCStepper
from repro.vortex import DirectEvaluator, VortexProblem, get_kernel

N = 150
T_END = 2.0
DTS = (0.5, 0.25, 0.125)


def main() -> None:
    sheet = SheetConfig(n=N, sigma_over_h=3.0)
    particles = spherical_vortex_sheet(sheet)
    problem = VortexProblem(
        particles.volumes,
        DirectEvaluator(get_kernel("algebraic6"), sheet.sigma),
    )
    u0 = particles.state()

    print("computing SDC(8) reference solution ...")
    ref = SDCStepper(problem, num_nodes=5, sweeps=8).run(
        u0, 0.0, T_END, DTS[-1] / 5
    )

    def error(u):
        return np.max(np.abs(u[0] - ref[0])) / np.max(np.abs(ref[0]))

    def orders(errs):
        return [
            math.log(errs[i] / errs[i + 1], 2) for i in range(len(errs) - 1)
        ]

    rows = []
    for name in ("rk2", "rk3", "rk4"):
        integ = get_integrator(name)
        errs = [error(integ.run(problem, u0, 0.0, T_END, dt)) for dt in DTS]
        rows.append((name.upper(), errs))
    for k in (2, 3, 4):
        errs = [
            error(SDCStepper(problem, num_nodes=3, sweeps=k).run(
                u0, 0.0, T_END, dt))
            for dt in DTS
        ]
        rows.append((f"SDC({k})", errs))
    for iters in (1, 2):
        errs = []
        for dt in DTS:
            cfg = PfasstConfig(t0=0.0, t_end=T_END,
                               n_steps=int(round(T_END / dt)),
                               iterations=iters)
            specs = [
                LevelSpec(problem, num_nodes=3, sweeps=1),
                LevelSpec(problem, num_nodes=2, sweeps=2),
            ]
            errs.append(error(run_pfasst(cfg, specs, u0, p_time=4).u_end))
        rows.append((f"PFASST({iters},2,4)", errs))

    print(f"\n{'scheme':<14} " + " ".join(f"{dt:>10}" for dt in DTS)
          + "   orders")
    for name, errs in rows:
        order_str = ", ".join(f"{o:.2f}" for o in orders(errs))
        print(f"{name:<14} "
              + " ".join(f"{e:>10.2e}" for e in errs)
              + f"   {order_str}")


if __name__ == "__main__":
    main()
