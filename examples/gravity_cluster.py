"""Self-gravitating cluster — PEPC's original gravitation mode.

Builds a Plummer-like star cluster, computes accelerations with the
Barnes-Hut solver, and integrates a short stretch of dynamics with RK4,
monitoring energy conservation and the virial ratio.  Demonstrates that
the tree code is a multi-purpose N-body engine (the paper stresses PEPC's
"transition from a pure gravitation/Coulomb solver to a multi-purpose
N-body suite").

Run:  python examples/gravity_cluster.py
"""

import numpy as np

from repro.nbody import gravity_direct
from repro.tree import TreeCoulombSolver

N = 1500
G = 1.0
THETA = 0.5


def plummer_sphere(n: int, seed: int = 11) -> tuple[np.ndarray, np.ndarray]:
    """Positions and velocities of a Plummer model (a = 1, M = 1)."""
    rng = np.random.default_rng(seed)
    # radii by inverting the Plummer cumulative mass profile
    m = rng.uniform(0.0, 1.0, n)
    r = 1.0 / np.sqrt(m ** (-2.0 / 3.0) - 1.0)
    r = np.clip(r, 0.0, 10.0)
    direction = rng.normal(size=(n, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    pos = r[:, None] * direction
    # isotropic velocities at ~half the local escape speed
    v_esc = np.sqrt(2.0) * (1.0 + r * r) ** (-0.25)
    vdir = rng.normal(size=(n, 3))
    vdir /= np.linalg.norm(vdir, axis=1, keepdims=True)
    vel = 0.5 * v_esc[:, None] * vdir
    return pos, vel


def tree_acceleration(solver, pos, masses):
    """a = -(4 pi G) E_coulomb with the singular kernel (see nbody)."""
    phi, field = solver.compute(pos, masses)
    return -4.0 * np.pi * G * field, -4.0 * np.pi * G * phi


def main() -> None:
    pos, vel = plummer_sphere(N)
    masses = np.full(N, 1.0 / N)
    solver = TreeCoulombSolver(theta=THETA, leaf_size=48, softening=0.02)

    # accuracy check vs direct summation
    acc_tree, phi_tree = tree_acceleration(solver, pos, masses)
    phi_ref, acc_ref = gravity_direct(pos, pos, masses, g_constant=G,
                                      softening=0.02)
    rel = np.max(np.abs(acc_tree - acc_ref)) / np.max(np.abs(acc_ref))
    print(f"Plummer cluster N={N}: tree vs direct acceleration "
          f"rel err {rel:.2e} at theta={THETA}")

    def energies(pos, vel):
        phi, acc = gravity_direct(pos, pos, masses, g_constant=G,
                                  softening=0.02)
        kinetic = 0.5 * np.sum(masses[:, None] * vel**2)
        potential = 0.5 * np.dot(masses, phi)
        return kinetic, potential

    ke, pe = energies(pos, vel)
    print(f"initial: KE={ke:.4f} PE={pe:.4f} virial 2K/|W|="
          f"{2 * ke / abs(pe):.2f}")

    # leapfrog (kick-drift-kick) with tree forces
    dt, steps = 0.05, 40
    acc, _ = tree_acceleration(solver, pos, masses)
    e0 = ke + pe
    for k in range(steps):
        vel = vel + 0.5 * dt * acc
        pos = pos + dt * vel
        acc, _ = tree_acceleration(solver, pos, masses)
        vel = vel + 0.5 * dt * acc
    ke, pe = energies(pos, vel)
    e1 = ke + pe
    print(f"after t={dt * steps}: KE={ke:.4f} PE={pe:.4f} "
          f"energy drift {(e1 - e0) / abs(e0):.2e}")
    print(f"tree stats: {solver.last_stats.interactions_per_particle:.0f} "
          "interactions/particle")


if __name__ == "__main__":
    main()
