"""Legacy setup shim.

Allows ``python setup.py develop`` on minimal/offline environments where
pip's PEP-517 editable path is unavailable (no ``wheel`` package, no
network).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
