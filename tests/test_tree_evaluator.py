"""Tests for the full Barnes-Hut evaluators against direct summation."""

import numpy as np
import pytest

from repro.nbody import coulomb_direct
from repro.tree import TreeCoulombSolver, TreeEvaluator
from repro.vortex import DirectEvaluator, get_kernel, spherical_vortex_sheet
from repro.vortex.kernels import GaussianKernel
from repro.vortex.sheet import SheetConfig


@pytest.fixture(scope="module")
def sheet_setup():
    cfg = SheetConfig(n=400)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    ref = DirectEvaluator(kernel, cfg.sigma).field(ps.positions, ps.charges)
    return ps, cfg, kernel, ref


class TestAccuracy:
    def test_theta_zero_matches_direct_exactly(self, sheet_setup):
        ps, cfg, kernel, ref = sheet_setup
        tree = TreeEvaluator(kernel, cfg.sigma, theta=0.0, leaf_size=24)
        out = tree.field(ps.positions, ps.charges)
        assert np.allclose(out.velocity, ref.velocity, rtol=1e-12, atol=1e-14)
        assert np.allclose(out.gradient, ref.gradient, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("theta,tol", [(0.3, 2e-3), (0.6, 2e-2)])
    def test_accuracy_at_paper_thetas(self, sheet_setup, theta, tol):
        ps, cfg, kernel, ref = sheet_setup
        tree = TreeEvaluator(kernel, cfg.sigma, theta=theta, leaf_size=24)
        out = tree.field(ps.positions, ps.charges)
        rel = np.max(np.abs(out.velocity - ref.velocity)) / np.max(
            np.abs(ref.velocity)
        )
        assert rel < tol

    def test_error_monotone_in_theta(self, sheet_setup):
        ps, cfg, kernel, ref = sheet_setup
        errs = []
        for theta in (0.2, 0.5, 1.0):
            out = TreeEvaluator(kernel, cfg.sigma, theta=theta,
                                leaf_size=24).field(ps.positions, ps.charges)
            errs.append(np.max(np.abs(out.velocity - ref.velocity)))
        assert errs[0] < errs[1] < errs[2]

    def test_cost_decreases_with_theta(self, sheet_setup):
        """The paper's coarsening premise: larger theta => less work."""
        ps, cfg, kernel, _ = sheet_setup
        work = []
        for theta in (0.3, 0.6):
            ev = TreeEvaluator(kernel, cfg.sigma, theta=theta, leaf_size=24)
            ev.field(ps.positions, ps.charges)
            s = ev.last_stats
            work.append(s.far_interactions + s.near_interactions)
        assert work[1] < work[0]

    def test_multipole_order_improves_accuracy(self, sheet_setup):
        ps, cfg, kernel, ref = sheet_setup
        errs = []
        for order in (0, 1, 2):
            out = TreeEvaluator(kernel, cfg.sigma, theta=0.5, order=order,
                                leaf_size=24).field(ps.positions, ps.charges)
            errs.append(np.max(np.abs(out.velocity - ref.velocity)))
        assert errs[2] < errs[0]

    def test_gradient_accuracy(self, sheet_setup):
        ps, cfg, kernel, ref = sheet_setup
        out = TreeEvaluator(kernel, cfg.sigma, theta=0.3,
                            leaf_size=24).field(ps.positions, ps.charges)
        rel = np.max(np.abs(out.gradient - ref.gradient)) / np.max(
            np.abs(ref.gradient)
        )
        assert rel < 5e-3

    def test_no_gradient_mode(self, sheet_setup):
        ps, cfg, kernel, _ = sheet_setup
        out = TreeEvaluator(kernel, cfg.sigma, theta=0.3).field(
            ps.positions, ps.charges, gradient=False
        )
        assert out.gradient is None

    def test_bmax_variant_works(self, sheet_setup):
        ps, cfg, kernel, ref = sheet_setup
        out = TreeEvaluator(kernel, cfg.sigma, theta=0.4, leaf_size=24,
                            mac_variant="bmax").field(ps.positions, ps.charges)
        rel = np.max(np.abs(out.velocity - ref.velocity)) / np.max(
            np.abs(ref.velocity)
        )
        assert rel < 2e-2

    def test_result_in_caller_order(self, sheet_setup, rng):
        """Scatter back: permuting the input permutes the output."""
        ps, cfg, kernel, _ = sheet_setup
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=24)
        out = ev.field(ps.positions, ps.charges)
        perm = rng.permutation(ps.n)
        out_p = ev.field(ps.positions[perm], ps.charges[perm])
        assert np.allclose(out_p.velocity, out.velocity[perm], atol=1e-11)


class TestValidation:
    def test_gaussian_kernel_rejected(self):
        with pytest.raises(ValueError, match="multipole"):
            TreeEvaluator(GaussianKernel(), 0.5)

    def test_negative_theta(self):
        with pytest.raises(ValueError, match="theta"):
            TreeEvaluator("algebraic6", 0.5, theta=-0.1)

    def test_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            TreeEvaluator("algebraic6", 0.5, order=5)

    def test_stats_populated(self, sheet_setup):
        ps, cfg, kernel, _ = sheet_setup
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.5, leaf_size=24)
        ev.field(ps.positions, ps.charges)
        s = ev.last_stats
        assert s.n_particles == ps.n
        assert s.n_nodes > 0
        assert s.interactions_per_particle > 0
        assert ev.phases.elapsed("traverse") > 0


class TestCoulombTree:
    def test_matches_direct(self, rng):
        pos = rng.normal(size=(500, 3))
        q = rng.normal(size=500)
        phi_ref, e_ref = coulomb_direct(pos, pos, q)
        solver = TreeCoulombSolver(theta=0.4, leaf_size=24)
        phi, e = solver.compute(pos, q)
        assert np.max(np.abs(phi - phi_ref)) / np.max(np.abs(phi_ref)) < 5e-3
        assert np.max(np.abs(e - e_ref)) / np.max(np.abs(e_ref)) < 5e-3

    def test_theta_zero_exact(self, rng):
        pos = rng.normal(size=(200, 3))
        q = rng.normal(size=200)
        phi_ref, e_ref = coulomb_direct(pos, pos, q)
        phi, e = TreeCoulombSolver(theta=0.0, leaf_size=24).compute(pos, q)
        assert np.allclose(phi, phi_ref, atol=1e-12)
        assert np.allclose(e, e_ref, atol=1e-12)

    def test_neutral_plasma_setup(self, rng):
        """The Fig. 5 workload: homogeneous neutral Coulomb system."""
        n = 400
        pos = rng.random((n, 3))
        q = np.concatenate([np.ones(n // 2), -np.ones(n // 2)])
        solver = TreeCoulombSolver(theta=0.6, leaf_size=24)
        phi, e = solver.compute(pos, q)
        assert np.all(np.isfinite(phi))
        assert np.all(np.isfinite(e))
        assert solver.last_stats.far_interactions > 0
