"""Tests for multipole moments and the upward pass."""

import numpy as np
import pytest

from repro.tree.build import build_octree
from repro.tree.multipole import (
    compute_coulomb_moments,
    compute_vortex_moments,
)


def _brute_vortex_moments(pos, charges, center):
    d = pos - center
    m0 = charges.sum(axis=0)
    m1 = np.einsum("ni,nj->ij", charges, d)
    m2 = 0.5 * np.einsum("ni,nj,nk->ijk", charges, d, d)
    return m0, m1, m2


class TestVortexMoments:
    def test_root_moments_match_brute_force(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        m0, m1, m2 = _brute_vortex_moments(pos, ch, mom.center[0])
        assert np.allclose(mom.m0[0], m0, atol=1e-12)
        assert np.allclose(mom.m1[0], m1, atol=1e-12)
        assert np.allclose(mom.m2[0], m2, atol=1e-12)

    def test_every_node_matches_brute_force(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        for node in range(tree.n_nodes):
            idx = tree.particles_of(node)
            m0, m1, m2 = _brute_vortex_moments(
                pos[idx], ch[idx], mom.center[node]
            )
            assert np.allclose(mom.m0[node], m0, atol=1e-10)
            assert np.allclose(mom.m1[node], m1, atol=1e-10)
            assert np.allclose(mom.m2[node], m2, atol=1e-10)

    def test_monopole_additivity(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        for node in range(tree.n_nodes):
            kids = tree.children(node)
            if kids.size:
                assert np.allclose(
                    mom.m0[node], mom.m0[kids].sum(axis=0), atol=1e-12
                )

    def test_bmax_bounds_particles(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        for node in range(tree.n_nodes):
            idx = tree.particles_of(node)
            dist = np.linalg.norm(pos[idx] - mom.center[node], axis=1)
            assert dist.max() <= mom.bmax[node] + 1e-9

    def test_abs_charge(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        expected = np.linalg.norm(ch, axis=1).sum()
        assert mom.abs_charge[0] == pytest.approx(expected)

    def test_charge_order_is_original(self, random_cloud):
        """Charges are passed in caller order, not Morton order."""
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom1 = compute_vortex_moments(tree, ch)
        # shuffle input consistently: same physical system, same moments
        perm = np.random.default_rng(0).permutation(pos.shape[0])
        tree2 = build_octree(pos[perm], leaf_size=16)
        mom2 = compute_vortex_moments(tree2, ch[perm])
        assert np.allclose(mom1.m0[0], mom2.m0[0], atol=1e-12)

    def test_wrong_charge_shape(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos)
        with pytest.raises(ValueError):
            compute_vortex_moments(tree, ch[:, :2])


class TestCoulombMoments:
    def test_all_nodes_match_brute_force(self, rng):
        pos = rng.normal(size=(200, 3))
        q = rng.normal(size=200)
        tree = build_octree(pos, leaf_size=16)
        mom = compute_coulomb_moments(tree, q)
        for node in range(0, tree.n_nodes, 7):
            idx = tree.particles_of(node)
            d = pos[idx] - mom.center[node]
            assert mom.m0[node] == pytest.approx(q[idx].sum(), abs=1e-12)
            assert np.allclose(
                mom.m1[node], (q[idx, None] * d).sum(axis=0), atol=1e-10
            )
            m2 = 0.5 * np.einsum("n,nj,nk->jk", q[idx], d, d)
            assert np.allclose(mom.m2[node], m2, atol=1e-10)

    def test_neutral_system_zero_monopole(self, rng):
        pos = rng.normal(size=(100, 3))
        q = np.concatenate([np.ones(50), -np.ones(50)])
        tree = build_octree(pos, leaf_size=16)
        mom = compute_coulomb_moments(tree, q)
        assert mom.m0[0] == pytest.approx(0.0, abs=1e-12)
        assert mom.abs_charge[0] == pytest.approx(100.0)

    def test_quadrupole_symmetry(self, rng):
        pos = rng.normal(size=(150, 3))
        q = rng.normal(size=150)
        tree = build_octree(pos, leaf_size=16)
        mom = compute_coulomb_moments(tree, q)
        assert np.allclose(mom.m2, mom.m2.swapaxes(1, 2), atol=1e-12)


class TestTranslationExactness:
    def test_vortex_m2_symmetric_in_last_axes(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=16)
        mom = compute_vortex_moments(tree, ch)
        assert np.allclose(mom.m2, mom.m2.swapaxes(2, 3), atol=1e-12)

    def test_field_independent_of_leaf_size(self, random_cloud):
        """Different trees (leaf sizes) represent the same physics: the
        root moments must agree exactly."""
        pos, ch = random_cloud
        m_small = compute_vortex_moments(build_octree(pos, leaf_size=4), ch)
        m_large = compute_vortex_moments(build_octree(pos, leaf_size=64), ch)
        assert np.allclose(m_small.m0[0], m_large.m0[0], atol=1e-12)
        assert np.allclose(m_small.m1[0], m_large.m1[0], atol=1e-10)
        assert np.allclose(m_small.m2[0], m_large.m2[0], atol=1e-10)
