"""Tests for collocation node families."""

import numpy as np
import pytest

from repro.sdc.nodes import available_node_types, collocation_nodes


class TestFamilies:
    def test_available(self):
        assert set(available_node_types()) == {
            "lobatto", "radau-right", "legendre", "equidistant",
        }

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown node type"):
            collocation_nodes(3, "chebyshev")

    @pytest.mark.parametrize("family", available_node_types())
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7])
    def test_sorted_in_unit_interval(self, family, n):
        if family in ("radau-right", "legendre") and n < 2:
            pytest.skip("not applicable")
        ns = collocation_nodes(n, family)
        assert ns.num_nodes == n
        assert np.all(np.diff(ns.nodes) > 0)
        assert ns.nodes[0] >= 0.0
        assert ns.nodes[-1] <= 1.0

    def test_lobatto_3_exact(self):
        assert np.allclose(collocation_nodes(3).nodes, [0.0, 0.5, 1.0])

    def test_lobatto_2_exact(self):
        assert np.allclose(collocation_nodes(2).nodes, [0.0, 1.0])

    def test_lobatto_endpoint_flags(self):
        ns = collocation_nodes(4, "lobatto")
        assert ns.includes_left and ns.includes_right
        assert ns.nodes[0] == 0.0 and ns.nodes[-1] == 1.0

    def test_radau_right_includes_only_right(self):
        ns = collocation_nodes(3, "radau-right")
        assert not ns.includes_left
        assert ns.includes_right
        assert ns.nodes[-1] == 1.0
        assert ns.nodes[0] > 0.0

    def test_legendre_excludes_endpoints(self):
        ns = collocation_nodes(4, "legendre")
        assert not ns.includes_left and not ns.includes_right
        assert ns.nodes[0] > 0.0 and ns.nodes[-1] < 1.0

    def test_legendre_matches_leggauss(self):
        ns = collocation_nodes(5, "legendre")
        ref = 0.5 * (np.polynomial.legendre.leggauss(5)[0] + 1.0)
        assert np.allclose(ns.nodes, ref)

    def test_equidistant(self):
        assert np.allclose(
            collocation_nodes(5, "equidistant").nodes, np.linspace(0, 1, 5)
        )

    def test_lobatto_nesting_3_in_5(self):
        """Paper: coarse nodes chosen as a subset of the fine nodes."""
        fine = collocation_nodes(5, "lobatto").nodes
        coarse = collocation_nodes(3, "lobatto").nodes
        for c in coarse:
            assert np.min(np.abs(fine - c)) < 1e-12

    def test_lobatto_2_nested_in_3(self):
        fine = collocation_nodes(3, "lobatto").nodes
        coarse = collocation_nodes(2, "lobatto").nodes
        for c in coarse:
            assert np.min(np.abs(fine - c)) < 1e-12

    def test_symmetry_of_lobatto(self):
        nodes = collocation_nodes(6, "lobatto").nodes
        assert np.allclose(nodes + nodes[::-1], 1.0)

    def test_minimum_counts(self):
        with pytest.raises(ValueError):
            collocation_nodes(1, "lobatto")
        with pytest.raises(ValueError):
            collocation_nodes(1, "equidistant")

    def test_order_metadata(self):
        assert collocation_nodes(3, "lobatto").order == 4
        assert collocation_nodes(3, "radau-right").order == 5
        assert collocation_nodes(3, "legendre").order == 6
        assert collocation_nodes(3, "equidistant").order == 3
