"""Tests for the opt-in numerical sanitizers (repro.analysis.sanitize)."""

import importlib

import numpy as np
import pytest

import repro.analysis.sanitize as sanitize_mod
import repro.sdc.sweeper as sweeper_mod
from repro.sdc.quadrature import make_rule
from repro.vortex.problem import ODEProblem


class _NaNAfterFirstCall(ODEProblem):
    """RHS that turns sour: finite on the first call, NaN afterwards."""

    def __init__(self) -> None:
        self.calls = 0

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        self.calls += 1
        out = -np.asarray(u, dtype=np.float64)
        if self.calls > 1:
            out = out * np.nan
        return out


@pytest.fixture
def sanitized_modules(monkeypatch):
    """Reload the sanitizer and the sweeper with REPRO_SANITIZE=1.

    The gate is evaluated at decoration (import) time, so enabling it in
    a running process means reloading the decorated modules; restore the
    unsanitized modules afterwards so other tests see the no-op path.
    """
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    importlib.reload(sanitize_mod)
    importlib.reload(sweeper_mod)
    assert sanitize_mod.enabled()
    yield sanitize_mod, sweeper_mod
    monkeypatch.delenv("REPRO_SANITIZE")
    importlib.reload(sanitize_mod)
    importlib.reload(sweeper_mod)


#: the three tests below assert the *unset-flag* contract; under the CI
#: job that exports REPRO_SANITIZE=1 for the whole process they do not
#: apply (TestBoundaryDecorator covers the armed path via reload).
_ambient_sanitize = pytest.mark.skipif(
    sanitize_mod.enabled(),
    reason="REPRO_SANITIZE set in the environment; off-path contract n/a",
)


class TestGate:
    @_ambient_sanitize
    def test_disabled_by_default(self):
        assert not sanitize_mod.enabled()

    @_ambient_sanitize
    def test_disabled_decorator_returns_function_unchanged(self):
        def fn(x):
            return x

        assert sanitize_mod.boundary("b", arrays=["x"])(fn) is fn

    @_ambient_sanitize
    def test_shipped_sweep_is_undecorated(self):
        """Zero-overhead contract: without the flag there is no wrapper."""
        assert not hasattr(sweeper_mod.ExplicitSDCSweeper.sweep, "__wrapped__")

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_mod.enabled()

    def test_truthy(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_mod.enabled()


class TestBoundaryDecorator:
    def test_nan_argument_caught(self, sanitized_modules):
        san, _ = sanitized_modules

        @san.boundary("demo", arrays=["x"])
        def fn(x):
            return x

        with pytest.raises(san.SanitizeError, match="demo:x"):
            fn(np.array([1.0, np.nan]))

    def test_shape_contract_enforced(self, sanitized_modules):
        san, _ = sanitized_modules

        @san.boundary("demo", arrays=[("x", (None, 3))])
        def fn(x):
            return x

        with pytest.raises(san.SanitizeError, match="axis 1"):
            fn(np.zeros((4, 2)))

    def test_nan_result_caught(self, sanitized_modules):
        san, _ = sanitized_modules

        @san.boundary("demo")
        def fn():
            return np.array([np.inf]), np.zeros(2)

        with pytest.raises(san.SanitizeError, match="demo:result"):
            fn()

    def test_clean_call_passes_through(self, sanitized_modules):
        san, _ = sanitized_modules

        @san.boundary("demo", arrays=[("x", (None, 3))])
        def fn(x):
            return 2.0 * x

        out = fn(np.ones((5, 3)))
        assert np.array_equal(out, 2.0 * np.ones((5, 3)))

    def test_none_and_scalar_arguments_skipped(self, sanitized_modules):
        san, _ = sanitized_modules

        @san.boundary("demo", arrays=["x", "y"])
        def fn(x, y=None):
            return 0.0

        assert fn(3.5) == 0.0


class TestSweeperBoundary:
    def test_injected_nan_caught_at_sweep(self, sanitized_modules):
        """Acceptance: REPRO_SANITIZE=1 catches an injected NaN at the
        sweeper boundary (the RHS goes NaN mid-sweep)."""
        san, swp = sanitized_modules
        rule = make_rule(3, "lobatto")
        sweeper = swp.ExplicitSDCSweeper(_NaNAfterFirstCall(), rule)
        U, F = sweeper.initialize(0.0, 0.1, np.array([1.0]), "spread")
        with pytest.raises(san.SanitizeError, match="sweep:result"):
            sweeper.sweep(0.0, 0.1, U, F)

    def test_nan_in_node_values_caught_on_entry(self, sanitized_modules):
        san, swp = sanitized_modules
        rule = make_rule(3, "lobatto")
        sweeper = swp.ExplicitSDCSweeper(_NaNAfterFirstCall(), rule)
        U, F = sweeper.initialize(0.0, 0.1, np.array([1.0]), "spread")
        U = U.copy()
        U[1] = np.nan
        with pytest.raises(san.SanitizeError, match="sweep:U"):
            sweeper.sweep(0.0, 0.1, U, F)

    def test_finite_problem_sweeps_normally(self, sanitized_modules):
        _, swp = sanitized_modules

        class Decay(ODEProblem):
            def rhs(self, t, u):
                return -u

        rule = make_rule(3, "lobatto")
        sweeper = swp.ExplicitSDCSweeper(Decay(), rule)
        U, F = sweeper.initialize(0.0, 0.1, np.array([1.0]), "spread")
        U2, F2 = sweeper.sweep(0.0, 0.1, U, F)
        assert np.all(np.isfinite(U2)) and np.all(np.isfinite(F2))
