"""Tests for fault injection in the simulated MPI (repro.parallel.faults)."""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.parallel import CommCostModel, Scheduler
from repro.parallel.collectives import bcast
from repro.parallel.faults import (
    CorruptedPayload,
    CorruptionError,
    FaultPlan,
    MessageFault,
    RankCrash,
    RankFailure,
    RecvTimeout,
    ResilienceReport,
    _stable_unit,
    corrupt_payload,
    payload_checksum,
)

MODEL = CommCostModel(latency=1.0, bandwidth=1e30, send_overhead=0.0)


# ---------------------------------------------------------------------------
# plan construction / validation
# ---------------------------------------------------------------------------
class TestPlanValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0, after_ops=3, at_time=1.0)
        RankCrash(rank=0, after_ops=3)
        RankCrash(rank=0, at_time=1.0)

    def test_crash_trigger_ranges(self):
        with pytest.raises(ValueError, match="after_ops"):
            RankCrash(rank=0, after_ops=0)
        with pytest.raises(ValueError, match="rank"):
            RankCrash(rank=-1, after_ops=1)

    def test_message_fault_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            MessageFault(kind="explode")

    def test_message_fault_probability_checked(self):
        with pytest.raises(ValueError, match="probability"):
            MessageFault(kind="drop", probability=1.5)

    def test_delay_coupling(self):
        with pytest.raises(ValueError, match="delay"):
            MessageFault(kind="delay")  # needs delay > 0
        with pytest.raises(ValueError, match="delay"):
            MessageFault(kind="drop", delay=1.0)

    def test_plan_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),)).empty


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------
class TestPrimitives:
    def test_stable_unit_deterministic_and_in_range(self):
        a = _stable_unit(1, "x", (2, 3))
        assert a == _stable_unit(1, "x", (2, 3))
        assert 0.0 <= a < 1.0
        assert a != _stable_unit(1, "x", (2, 4))

    def test_corrupt_float_array_flips_one_bit(self):
        arr = np.linspace(0.0, 1.0, 7)
        bad = corrupt_payload(arr, key=(0, "k"))
        assert bad.shape == arr.shape
        diff = bad.view(np.uint64) ^ arr.view(np.uint64)
        nz = diff[diff != 0]
        assert len(nz) == 1  # exactly one element touched
        assert bin(int(nz[0])).count("1") == 1  # by exactly one bit
        # the original is untouched (pristine copy semantics)
        assert np.array_equal(arr, np.linspace(0.0, 1.0, 7))

    def test_corrupt_scalars_change_value(self):
        assert corrupt_payload(2.5, key=("a",)) != 2.5
        assert corrupt_payload(17, key=("a",)) != 17
        assert corrupt_payload(b"abc", key=("a",)) != b"abc"

    def test_corrupt_unknown_type_marker(self):
        bad = corrupt_payload({"not": "bit-flippable"}, key=("a",))
        assert isinstance(bad, CorruptedPayload)

    def test_checksum_detects_corruption(self):
        arr = np.arange(5, dtype=np.float64)
        ck = payload_checksum(arr)
        assert ck == payload_checksum(arr.copy())
        assert ck != payload_checksum(corrupt_payload(arr, key=("z",)))


# ---------------------------------------------------------------------------
# crash injection
# ---------------------------------------------------------------------------
class TestCrashInjection:
    def _ping(self, comm):
        if comm.rank == 0:
            yield comm.send(1, "t", 1.0)
            yield comm.send(1, "t", 2.0)
        else:
            a = yield comm.recv(0, "t")
            b = yield comm.recv(0, "t")
            return a + b

    def test_uncaught_crash_raises_and_names_rank(self):
        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        with pytest.raises(RankFailure, match="rank 0 crashed"):
            Scheduler(2, measure_compute=False, fault_plan=plan).run(self._ping)

    def test_caught_crash_lets_program_act_as_replacement(self):
        def prog(comm):
            if comm.rank == 0:
                try:
                    yield comm.send(1, "t", "original")
                    yield comm.send(1, "u", "original")
                except RankFailure:
                    yield comm.send(1, "u", "replacement")
            else:
                t = yield comm.recv(0, "t")
                u = yield comm.recv(0, "u")
                return (t, u)

        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == ("original", "replacement")
        assert sched.resilience.counts() == {"crash": 1, "crash-handled": 1}

    def test_crash_blocking_others_is_diagnosed(self):
        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        with pytest.raises(RankFailure, match="blocked"):
            Scheduler(2, measure_compute=False, fault_plan=plan).run(self._ping)


# ---------------------------------------------------------------------------
# link faults: drop / delay / duplicate / corrupt
# ---------------------------------------------------------------------------
class TestLinkFaults:
    def test_drop_with_retransmit_recovers(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="drop", occurrences=(0,)),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        assert sched.run(prog)[1] == 42.0
        counts = sched.resilience.counts()
        assert counts["drop"] == 1
        assert counts["retransmit"] == 1
        # retransmit costs the timeout wait plus one more transfer
        assert sched.clocks[1] == pytest.approx(0.5 + MODEL.latency)

    def test_drop_without_retries_times_out_with_diagnostic(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        with pytest.raises(RecvTimeout, match=r"tag='t'"):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_drop_without_timeout_deadlocks_with_fault_note(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        with pytest.raises(Exception, match="dropped by fault injection"):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_delay_shifts_clock_not_numerics(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 7.0)
            else:
                return (yield comm.recv(0, "t"))

        base = Scheduler(2, cost_model=MODEL, measure_compute=False)
        r0 = base.run(prog)
        plan = FaultPlan(messages=(MessageFault(kind="delay", delay=3.0),))
        faulty = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan,
            verify=True,
        )
        r1 = faulty.run(prog)
        assert freeze(r0) == freeze(r1)
        assert faulty.clocks[1] == pytest.approx(base.clocks[1] + 3.0)

    def test_duplicate_delivers_second_copy(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 5)
            else:
                a = yield comm.recv(0, "t")
                b = yield comm.recv(0, "t")
                return (a, b)

        plan = FaultPlan(
            messages=(MessageFault(kind="duplicate", occurrences=(0,)),)
        )
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == (5, 5)

    def test_corruption_detected_and_repaired_by_retransmit(self):
        payload = np.linspace(0.0, 1.0, 9)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", payload)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="corrupt"),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        out = sched.run(prog)[1]
        assert np.array_equal(out, payload)
        counts = sched.resilience.counts()
        assert counts["corrupt"] == 1
        assert counts["corruption-detected"] == 1
        assert counts["retransmit"] == 1

    def test_corruption_with_exhausted_retries_raises_diagnostic(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", np.ones(4))
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(messages=(MessageFault(kind="corrupt"),))
        with pytest.raises(
            CorruptionError, match=r"rank 1 <- rank 0, tag='t'"
        ):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_probability_zero_never_fires(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1)
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(
            messages=(MessageFault(kind="drop", probability=0.0),)
        )
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == 1
        assert sched.resilience.counts() == {}


# ---------------------------------------------------------------------------
# determinism of the injection itself
# ---------------------------------------------------------------------------
class TestInjectionDeterminism:
    def _lossy_pipeline(self, comm):
        """Each rank forwards an accumulating sum over a lossy link."""
        total = float(comm.rank)
        if comm.rank > 0:
            total += yield comm.recv(
                comm.rank - 1, "fwd", timeout=1.0, retries=2
            )
        if comm.rank < comm.size - 1:
            yield comm.send(comm.rank + 1, "fwd", total)
        return total

    def _plan(self):
        return FaultPlan(
            messages=(
                MessageFault(kind="drop", probability=0.5),
                MessageFault(kind="delay", delay=0.25, probability=0.5),
            ),
            seed=7,
        )

    def test_same_plan_same_injections_across_runs(self):
        runs = []
        for _ in range(2):
            sched = Scheduler(
                4, cost_model=MODEL, measure_compute=False,
                fault_plan=self._plan(),
            )
            results = sched.run(self._lossy_pipeline)
            runs.append(
                (freeze(results), tuple(sched.clocks),
                 tuple(sorted(sched.resilience.counts().items())))
            )
        assert runs[0] == runs[1]

    def test_injections_are_service_order_independent(self):
        """verify=True replays under the reversed order: injections must
        hit the same messages for results to stay byte-identical."""
        sched = Scheduler(
            4, cost_model=MODEL, measure_compute=False,
            fault_plan=self._plan(), verify=True,
        )
        sched.run(self._lossy_pipeline)  # raises VerificationError if not

    def test_seed_changes_selection(self):
        counts = []
        for seed in (7, 8):
            plan = FaultPlan(
                messages=(MessageFault(kind="drop", probability=0.5),),
                seed=seed,
            )
            sched = Scheduler(
                4, cost_model=MODEL, measure_compute=False, fault_plan=plan
            )
            sched.run(self._lossy_pipeline)
            counts.append(sched.resilience.counts().get("drop", 0))
        # not a strict requirement for every seed pair, but these differ
        assert counts[0] != counts[1]

    def test_fault_free_path_byte_identical_to_no_plan(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", np.arange(6, dtype=np.float64))
            else:
                return (yield comm.recv(0, "t"))

        bare = Scheduler(2, cost_model=MODEL, measure_compute=False)
        r0 = bare.run(prog)
        # a plan whose rules never match this traffic
        plan = FaultPlan(
            crashes=(RankCrash(rank=1, after_ops=10_000),),
            messages=(MessageFault(kind="drop", tag="other"),),
        )
        armed = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        r1 = armed.run(prog)
        assert freeze(r0) == freeze(r1)
        assert bare.clocks == armed.clocks
        assert armed.resilience.counts() == {}


# ---------------------------------------------------------------------------
# collectives over lossy links
# ---------------------------------------------------------------------------
class TestLossyCollectives:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 5])
    def test_bcast_survives_drops_with_retries(self, n_ranks):
        def prog(comm):
            value = 123 if comm.rank == 0 else None
            return (
                yield from bcast(
                    comm, value, root=0, timeout=0.5, retries=2
                )
            )

        plan = FaultPlan(
            messages=(MessageFault(kind="drop", occurrences=(0,)),)
        )
        sched = Scheduler(
            n_ranks, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        assert sched.run(prog) == [123] * n_ranks
        assert sched.resilience.counts()["retransmit"] >= 1


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------
class TestReport:
    def test_empty_summary(self):
        assert "no faults" in ResilienceReport().summary()

    def test_summary_lists_events_and_cost(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        sched.run(prog)
        text = sched.resilience.summary()
        assert "injected" in text and "drop" in text and "retransmit" in text
        assert sched.resilience.recovery_cost > 0.0


class TestReportSerialization:
    """ResilienceReport.to_dict()/from_dict() JSON round trip."""

    def _report_from_run(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, ("lvl", 0), 1.0)
            else:
                return (yield comm.recv(0, ("lvl", 0), timeout=0.5,
                                        retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        sched.run(prog)
        return sched.resilience

    def test_json_round_trip(self):
        import json

        report = self._report_from_run()
        blob = json.dumps(report.to_dict())  # must be JSON-serializable
        again = ResilienceReport.from_dict(json.loads(blob))
        assert again.counts() == report.counts()
        assert again.recovery_cost == report.recovery_cost
        assert len(again.injected) == len(report.injected)
        for a, b in zip(again.injected, report.injected):
            assert (a.kind, a.rank, a.source, a.dest, a.tag, a.time) == \
                (b.kind, b.rank, b.source, b.dest, b.tag, b.time)
        assert again.rule_activations == report.rule_activations

    def test_tuple_tags_survive_round_trip(self):
        report = self._report_from_run()
        tags = [e.tag for e in report.injected if e.tag is not None]
        assert tags and all(isinstance(t, tuple) for t in tags)
        again = ResilienceReport.from_dict(report.to_dict())
        assert [e.tag for e in again.injected if e.tag is not None] == tags

    def test_empty_report_round_trip(self):
        again = ResilienceReport.from_dict(ResilienceReport().to_dict())
        assert again.injected == [] and again.recovered == []
        assert "no faults" in again.summary()


class TestRuleActivations:
    """Zero-activation accounting: rules that never fire are reported."""

    def _run(self, plan, n_ranks=2):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, ("lvl", 0), 1.0)
                return 0
            return (yield comm.recv(0, ("lvl", 0), timeout=0.5, retries=2))

        sched = Scheduler(
            n_ranks, cost_model=MODEL, measure_compute=False,
            fault_plan=plan,
        )
        sched.run(prog)
        return sched.resilience

    def test_dormant_message_rule_reported(self):
        plan = FaultPlan(messages=(
            MessageFault(kind="drop", tag=("never-sent-tag",)),
        ))
        report = self._run(plan)
        rows = report.rule_activations
        assert len(rows) == 1
        assert rows[0]["rule"] == "message[0]"
        assert rows[0]["activations"] == 0
        assert "dormant" in report.summary()

    def test_dormant_crash_rule_reported(self):
        plan = FaultPlan(crashes=(RankCrash(rank=1, after_ops=10_000),))
        report = self._run(plan)
        rows = report.rule_activations
        assert len(rows) == 1
        assert rows[0]["rule"] == "crash[0]"
        assert rows[0]["kind"] == "crash"
        assert rows[0]["activations"] == 0
        assert "never fired" in report.summary()

    def test_fired_rules_counted(self):
        plan = FaultPlan(
            crashes=(RankCrash(rank=1, after_ops=1),),
            messages=(MessageFault(kind="drop"),),
        )

        def prog(comm):
            try:
                if comm.rank == 0:
                    yield comm.send(1, ("lvl", 0), 1.0)
                    return 0
                return (yield comm.recv(0, ("lvl", 0), timeout=0.5,
                                        retries=2))
            except RankFailure:
                return -1

        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        sched.run(prog)
        rows = {r["rule"]: r for r in sched.resilience.rule_activations}
        assert rows["crash[0]"]["activations"] == 1
        assert rows["message[0]"]["activations"] >= 1
        assert "dormant" not in sched.resilience.summary()

    def test_mixed_plan_reports_only_dormant_rules_as_dormant(self):
        plan = FaultPlan(
            crashes=(RankCrash(rank=1, after_ops=10_000),),
            messages=(MessageFault(kind="drop"),),
        )
        report = self._run(plan)
        rows = {r["rule"]: r["activations"] for r in report.rule_activations}
        assert rows["crash[0]"] == 0
        assert rows["message[0]"] >= 1
        text = report.summary()
        assert "dormant:   crash[0]" in text
        assert "dormant:   message[0]" not in text


class TestRecvArgumentValidation:
    """recv(timeout=, retries=, backoff=) argument validation."""

    def _run_single(self, **recv_kw):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1.0)
                return 0
            return (yield comm.recv(0, "t", **recv_kw))

        return Scheduler(2).run(prog)

    def test_zero_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout must be > 0"):
            self._run_single(timeout=0.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout must be > 0"):
            self._run_single(timeout=-1.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries must be >= 0"):
            self._run_single(timeout=1.0, retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="backoff must be >= 0"):
            self._run_single(timeout=1.0, backoff=-0.5)

    def test_valid_arguments_accepted(self):
        assert self._run_single(timeout=1.0, retries=3, backoff=0.1) == \
            [0, 1.0]
