"""Tests for fault injection in the simulated MPI (repro.parallel.faults)."""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.parallel import CommCostModel, Scheduler
from repro.parallel.collectives import bcast
from repro.parallel.faults import (
    CorruptedPayload,
    CorruptionError,
    FaultPlan,
    MessageFault,
    RankCrash,
    RankFailure,
    RecvTimeout,
    ResilienceReport,
    _stable_unit,
    corrupt_payload,
    payload_checksum,
)

MODEL = CommCostModel(latency=1.0, bandwidth=1e30, send_overhead=0.0)


# ---------------------------------------------------------------------------
# plan construction / validation
# ---------------------------------------------------------------------------
class TestPlanValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0, after_ops=3, at_time=1.0)
        RankCrash(rank=0, after_ops=3)
        RankCrash(rank=0, at_time=1.0)

    def test_crash_trigger_ranges(self):
        with pytest.raises(ValueError, match="after_ops"):
            RankCrash(rank=0, after_ops=0)
        with pytest.raises(ValueError, match="rank"):
            RankCrash(rank=-1, after_ops=1)

    def test_message_fault_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            MessageFault(kind="explode")

    def test_message_fault_probability_checked(self):
        with pytest.raises(ValueError, match="probability"):
            MessageFault(kind="drop", probability=1.5)

    def test_delay_coupling(self):
        with pytest.raises(ValueError, match="delay"):
            MessageFault(kind="delay")  # needs delay > 0
        with pytest.raises(ValueError, match="delay"):
            MessageFault(kind="drop", delay=1.0)

    def test_plan_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),)).empty


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------
class TestPrimitives:
    def test_stable_unit_deterministic_and_in_range(self):
        a = _stable_unit(1, "x", (2, 3))
        assert a == _stable_unit(1, "x", (2, 3))
        assert 0.0 <= a < 1.0
        assert a != _stable_unit(1, "x", (2, 4))

    def test_corrupt_float_array_flips_one_bit(self):
        arr = np.linspace(0.0, 1.0, 7)
        bad = corrupt_payload(arr, key=(0, "k"))
        assert bad.shape == arr.shape
        diff = bad.view(np.uint64) ^ arr.view(np.uint64)
        nz = diff[diff != 0]
        assert len(nz) == 1  # exactly one element touched
        assert bin(int(nz[0])).count("1") == 1  # by exactly one bit
        # the original is untouched (pristine copy semantics)
        assert np.array_equal(arr, np.linspace(0.0, 1.0, 7))

    def test_corrupt_scalars_change_value(self):
        assert corrupt_payload(2.5, key=("a",)) != 2.5
        assert corrupt_payload(17, key=("a",)) != 17
        assert corrupt_payload(b"abc", key=("a",)) != b"abc"

    def test_corrupt_unknown_type_marker(self):
        bad = corrupt_payload({"not": "bit-flippable"}, key=("a",))
        assert isinstance(bad, CorruptedPayload)

    def test_checksum_detects_corruption(self):
        arr = np.arange(5, dtype=np.float64)
        ck = payload_checksum(arr)
        assert ck == payload_checksum(arr.copy())
        assert ck != payload_checksum(corrupt_payload(arr, key=("z",)))


# ---------------------------------------------------------------------------
# crash injection
# ---------------------------------------------------------------------------
class TestCrashInjection:
    def _ping(self, comm):
        if comm.rank == 0:
            yield comm.send(1, "t", 1.0)
            yield comm.send(1, "t", 2.0)
        else:
            a = yield comm.recv(0, "t")
            b = yield comm.recv(0, "t")
            return a + b

    def test_uncaught_crash_raises_and_names_rank(self):
        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        with pytest.raises(RankFailure, match="rank 0 crashed"):
            Scheduler(2, measure_compute=False, fault_plan=plan).run(self._ping)

    def test_caught_crash_lets_program_act_as_replacement(self):
        def prog(comm):
            if comm.rank == 0:
                try:
                    yield comm.send(1, "t", "original")
                    yield comm.send(1, "u", "original")
                except RankFailure:
                    yield comm.send(1, "u", "replacement")
            else:
                t = yield comm.recv(0, "t")
                u = yield comm.recv(0, "u")
                return (t, u)

        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == ("original", "replacement")
        assert sched.resilience.counts() == {"crash": 1, "crash-handled": 1}

    def test_crash_blocking_others_is_diagnosed(self):
        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=1),))
        with pytest.raises(RankFailure, match="blocked"):
            Scheduler(2, measure_compute=False, fault_plan=plan).run(self._ping)


# ---------------------------------------------------------------------------
# link faults: drop / delay / duplicate / corrupt
# ---------------------------------------------------------------------------
class TestLinkFaults:
    def test_drop_with_retransmit_recovers(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="drop", occurrences=(0,)),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        assert sched.run(prog)[1] == 42.0
        counts = sched.resilience.counts()
        assert counts["drop"] == 1
        assert counts["retransmit"] == 1
        # retransmit costs the timeout wait plus one more transfer
        assert sched.clocks[1] == pytest.approx(0.5 + MODEL.latency)

    def test_drop_without_retries_times_out_with_diagnostic(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        with pytest.raises(RecvTimeout, match=r"tag='t'"):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_drop_without_timeout_deadlocks_with_fault_note(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 42.0)
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        with pytest.raises(Exception, match="dropped by fault injection"):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_delay_shifts_clock_not_numerics(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 7.0)
            else:
                return (yield comm.recv(0, "t"))

        base = Scheduler(2, cost_model=MODEL, measure_compute=False)
        r0 = base.run(prog)
        plan = FaultPlan(messages=(MessageFault(kind="delay", delay=3.0),))
        faulty = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan,
            verify=True,
        )
        r1 = faulty.run(prog)
        assert freeze(r0) == freeze(r1)
        assert faulty.clocks[1] == pytest.approx(base.clocks[1] + 3.0)

    def test_duplicate_delivers_second_copy(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 5)
            else:
                a = yield comm.recv(0, "t")
                b = yield comm.recv(0, "t")
                return (a, b)

        plan = FaultPlan(
            messages=(MessageFault(kind="duplicate", occurrences=(0,)),)
        )
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == (5, 5)

    def test_corruption_detected_and_repaired_by_retransmit(self):
        payload = np.linspace(0.0, 1.0, 9)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", payload)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="corrupt"),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        out = sched.run(prog)[1]
        assert np.array_equal(out, payload)
        counts = sched.resilience.counts()
        assert counts["corrupt"] == 1
        assert counts["corruption-detected"] == 1
        assert counts["retransmit"] == 1

    def test_corruption_with_exhausted_retries_raises_diagnostic(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", np.ones(4))
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(messages=(MessageFault(kind="corrupt"),))
        with pytest.raises(
            CorruptionError, match=r"rank 1 <- rank 0, tag='t'"
        ):
            Scheduler(
                2, cost_model=MODEL, measure_compute=False, fault_plan=plan
            ).run(prog)

    def test_probability_zero_never_fires(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1)
            else:
                return (yield comm.recv(0, "t"))

        plan = FaultPlan(
            messages=(MessageFault(kind="drop", probability=0.0),)
        )
        sched = Scheduler(2, measure_compute=False, fault_plan=plan)
        assert sched.run(prog)[1] == 1
        assert sched.resilience.counts() == {}


# ---------------------------------------------------------------------------
# determinism of the injection itself
# ---------------------------------------------------------------------------
class TestInjectionDeterminism:
    def _lossy_pipeline(self, comm):
        """Each rank forwards an accumulating sum over a lossy link."""
        total = float(comm.rank)
        if comm.rank > 0:
            total += yield comm.recv(
                comm.rank - 1, "fwd", timeout=1.0, retries=2
            )
        if comm.rank < comm.size - 1:
            yield comm.send(comm.rank + 1, "fwd", total)
        return total

    def _plan(self):
        return FaultPlan(
            messages=(
                MessageFault(kind="drop", probability=0.5),
                MessageFault(kind="delay", delay=0.25, probability=0.5),
            ),
            seed=7,
        )

    def test_same_plan_same_injections_across_runs(self):
        runs = []
        for _ in range(2):
            sched = Scheduler(
                4, cost_model=MODEL, measure_compute=False,
                fault_plan=self._plan(),
            )
            results = sched.run(self._lossy_pipeline)
            runs.append(
                (freeze(results), tuple(sched.clocks),
                 tuple(sorted(sched.resilience.counts().items())))
            )
        assert runs[0] == runs[1]

    def test_injections_are_service_order_independent(self):
        """verify=True replays under the reversed order: injections must
        hit the same messages for results to stay byte-identical."""
        sched = Scheduler(
            4, cost_model=MODEL, measure_compute=False,
            fault_plan=self._plan(), verify=True,
        )
        sched.run(self._lossy_pipeline)  # raises VerificationError if not

    def test_seed_changes_selection(self):
        counts = []
        for seed in (7, 8):
            plan = FaultPlan(
                messages=(MessageFault(kind="drop", probability=0.5),),
                seed=seed,
            )
            sched = Scheduler(
                4, cost_model=MODEL, measure_compute=False, fault_plan=plan
            )
            sched.run(self._lossy_pipeline)
            counts.append(sched.resilience.counts().get("drop", 0))
        # not a strict requirement for every seed pair, but these differ
        assert counts[0] != counts[1]

    def test_fault_free_path_byte_identical_to_no_plan(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", np.arange(6, dtype=np.float64))
            else:
                return (yield comm.recv(0, "t"))

        bare = Scheduler(2, cost_model=MODEL, measure_compute=False)
        r0 = bare.run(prog)
        # a plan whose rules never match this traffic
        plan = FaultPlan(
            crashes=(RankCrash(rank=1, after_ops=10_000),),
            messages=(MessageFault(kind="drop", tag="other"),),
        )
        armed = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        r1 = armed.run(prog)
        assert freeze(r0) == freeze(r1)
        assert bare.clocks == armed.clocks
        assert armed.resilience.counts() == {}


# ---------------------------------------------------------------------------
# collectives over lossy links
# ---------------------------------------------------------------------------
class TestLossyCollectives:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 5])
    def test_bcast_survives_drops_with_retries(self, n_ranks):
        def prog(comm):
            value = 123 if comm.rank == 0 else None
            return (
                yield from bcast(
                    comm, value, root=0, timeout=0.5, retries=2
                )
            )

        plan = FaultPlan(
            messages=(MessageFault(kind="drop", occurrences=(0,)),)
        )
        sched = Scheduler(
            n_ranks, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        assert sched.run(prog) == [123] * n_ranks
        assert sched.resilience.counts()["retransmit"] >= 1


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------
class TestReport:
    def test_empty_summary(self):
        assert "no faults" in ResilienceReport().summary()

    def test_summary_lists_events_and_cost(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1.0)
            else:
                return (yield comm.recv(0, "t", timeout=0.5, retries=1))

        plan = FaultPlan(messages=(MessageFault(kind="drop"),))
        sched = Scheduler(
            2, cost_model=MODEL, measure_compute=False, fault_plan=plan
        )
        sched.run(prog)
        text = sched.resilience.summary()
        assert "injected" in text and "drop" in text and "retransmit" in text
        assert sched.resilience.recovery_cost > 0.0
