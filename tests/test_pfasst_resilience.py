"""Fault-tolerant PFASST: crash recovery policies and lossy-link runs.

The crash op counts below were chosen to land inside a V-cycle iteration
(or the predictor) — the protocol's recoverable window.  A crash landing
inside a recovery collective itself is fatal by design, mirroring a real
fault-tolerant MPI whose recovery collective fails.
"""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.parallel import CommCostModel
from repro.parallel.faults import FaultPlan, MessageFault, RankCrash, RankFailure
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec

TOL = 1e-11

#: (p_time, crashed rank, after_ops) triples landing in iteration k >= 1
ITER_CRASH = {2: (1, 24), 4: (2, 26)}


def _specs(problem):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


def _config(**kw):
    kw.setdefault("t0", 0.0)
    kw.setdefault("t_end", 1.0)
    kw.setdefault("n_steps", 4)
    kw.setdefault("iterations", 30)
    kw.setdefault("residual_tol", TOL)
    return PfasstConfig(**kw)


@pytest.fixture
def u0():
    return np.array([1.0, 2.0])


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            _config(recovery="reboot")

    def test_timeout_positive(self):
        with pytest.raises(ValueError, match="recovery_timeout"):
            _config(recovery_timeout=0.0)

    def test_retries_nonnegative(self):
        with pytest.raises(ValueError, match="recovery_retries"):
            _config(recovery_retries=-1)

    def test_max_restarts_positive(self):
        with pytest.raises(ValueError, match="max_restarts"):
            _config(max_restarts=0)


class TestFailPolicy:
    def test_crash_is_fatal_without_recovery(self, linear_problem, u0):
        rank, ops = ITER_CRASH[4]
        plan = FaultPlan(crashes=(RankCrash(rank=rank, after_ops=ops),))
        with pytest.raises(RankFailure, match=f"rank {rank} crashed"):
            run_pfasst(
                _config(), _specs(linear_problem), u0, p_time=4,
                fault_plan=plan,
            )

    def test_recovery_enabled_without_faults_matches_fail_numerics(
        self, linear_problem, u0
    ):
        """The protocol collectives must not change the numerics."""
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=4)
        for policy in ("cold-restart", "warm-restart"):
            res = run_pfasst(
                _config(recovery=policy), _specs(linear_problem), u0,
                p_time=4, verify=True,
            )
            assert freeze(res.u_end) == freeze(base.u_end)
            assert res.recoveries == []
            assert res.total_iterations == res.iterations_done


class TestCrashRecovery:
    @pytest.mark.parametrize("p_time", [2, 4])
    @pytest.mark.parametrize("policy", ["cold-restart", "warm-restart"])
    def test_single_crash_converges_to_fault_free_solution(
        self, linear_problem, u0, p_time, policy
    ):
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=p_time)
        rank, ops = ITER_CRASH[p_time]
        plan = FaultPlan(crashes=(RankCrash(rank=rank, after_ops=ops),))
        res = run_pfasst(
            _config(recovery=policy), _specs(linear_problem), u0,
            p_time=p_time, fault_plan=plan, verify=True,
        )
        # converged back to the fault-free solution within the residual tol
        assert np.abs(res.u_end - base.u_end).max() < 10 * TOL
        assert len(res.recoveries) == 1
        rec = res.recoveries[0]
        assert rec["policy"] == policy
        assert rec["failed_ranks"] == [rank]
        assert rec["phase"] == "iteration"
        # the scheduler saw the crash and the program absorbed it
        counts = res.resilience.counts()
        assert counts["crash"] == 1
        assert counts["crash-handled"] == 1
        # recovery costs extra iterations over the fault-free run
        assert res.recovery_iterations >= 1

    @pytest.mark.parametrize("p_time", [2, 4])
    def test_warm_restart_cheaper_than_cold(self, linear_problem, u0, p_time):
        rank, ops = ITER_CRASH[p_time]
        plan = FaultPlan(crashes=(RankCrash(rank=rank, after_ops=ops),))
        extra = {}
        for policy in ("cold-restart", "warm-restart"):
            res = run_pfasst(
                _config(recovery=policy), _specs(linear_problem), u0,
                p_time=p_time, fault_plan=plan,
            )
            extra[policy] = res.recovery_iterations
        assert extra["warm-restart"] < extra["cold-restart"]

    def test_predictor_crash_restarts_block(self, linear_problem, u0):
        # rank 2's ops 1-2 are predictor staircase receives
        plan = FaultPlan(crashes=(RankCrash(rank=2, after_ops=1),))
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=4)
        for policy in ("cold-restart", "warm-restart"):
            res = run_pfasst(
                _config(recovery=policy), _specs(linear_problem), u0,
                p_time=4, fault_plan=plan, verify=True,
            )
            assert np.abs(res.u_end - base.u_end).max() < 10 * TOL
            assert res.recoveries[0]["phase"] == "predictor"

    def test_crash_in_second_block_recovers(self, linear_problem, u0):
        cfg = _config(n_steps=4, recovery="warm-restart")
        base = run_pfasst(_config(n_steps=4), _specs(linear_problem), u0,
                          p_time=2)
        # past the first block's traffic on rank 1
        plan = FaultPlan(crashes=(RankCrash(rank=1, after_ops=64),))
        res = run_pfasst(
            cfg, _specs(linear_problem), u0, p_time=2, fault_plan=plan,
        )
        assert np.abs(res.u_end - base.u_end).max() < 10 * TOL
        assert res.recoveries[0]["block"] == 1
        # only the second block paid for the recovery
        assert res.total_iterations[0] == res.iterations_done[0]
        assert res.total_iterations[1] > res.iterations_done[1]

    def test_give_up_after_max_restarts(self, linear_problem, u0):
        rank, ops = ITER_CRASH[4]
        # two distinct crashes, budget of one restart
        plan = FaultPlan(crashes=(
            RankCrash(rank=rank, after_ops=ops),
            RankCrash(rank=rank, after_ops=ops + 12),
        ))
        with pytest.raises(
            (RuntimeError, RankFailure), match="crash|gave up"
        ):
            run_pfasst(
                _config(recovery="cold-restart", max_restarts=1),
                _specs(linear_problem), u0, p_time=4, fault_plan=plan,
            )


class TestLossyLinks:
    def test_delayed_messages_keep_numerics_bit_identical(
        self, linear_problem, u0
    ):
        """Satellite: delays shift clocks, never values."""
        model = CommCostModel(latency=1e-4, bandwidth=1e9, send_overhead=0.0)
        base = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=4,
            cost_model=model,
        )
        plan = FaultPlan(messages=(
            MessageFault(kind="delay", delay=0.01, probability=0.5),
        ))
        res = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=4,
            cost_model=model, fault_plan=plan, verify=True,
        )
        assert freeze(res.u_end) == freeze(base.u_end)
        assert freeze(res.residuals) == freeze(base.residuals)
        assert res.makespan > base.makespan
        assert res.resilience.counts()["delay"] >= 1

    def test_descending_service_order_bit_identical(self, linear_problem, u0):
        """Satellite: multi-block PFASST numerics are schedule-independent."""
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=2)
        res = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2,
            service_order="descending",
        )
        assert freeze(res.u_end) == freeze(base.u_end)
        assert freeze(res.residuals) == freeze(base.residuals)
        assert freeze(res.slice_end_values) == freeze(base.slice_end_values)

    def test_corruption_repaired_in_flight(self, linear_problem, u0):
        """A bit flip on a neighbour message is caught by the checksum at
        the receive boundary and repaired by retransmit — bit-identical
        numerics to the clean run."""
        base = run_pfasst(
            _config(recovery="warm-restart"), _specs(linear_problem), u0,
            p_time=4,
        )
        # exactly one message: the fine-level forward send at iteration 1
        plan = FaultPlan(messages=(
            MessageFault(
                kind="corrupt", source=1, dest=2, tag=("lvl", 0, 0, 0, 1),
            ),
        ))
        res = run_pfasst(
            _config(recovery="warm-restart"), _specs(linear_problem), u0,
            p_time=4, fault_plan=plan, verify=True,
        )
        assert freeze(res.u_end) == freeze(base.u_end)
        counts = res.resilience.counts()
        assert counts["corrupt"] == 1
        assert counts["corruption-detected"] == 1
        assert counts["retransmit"] == 1
        assert res.recoveries == []  # repaired below the algorithmic layer


class TestGridRecovery:
    """Grid-wide fault tolerance: recovery on the full P_T x P_S grid.

    World ranks on the 2x2 grid are ``t * p_space + s``: rank 3 is the
    space rank (t=1, s=1) — its loss must be detected by *every* column,
    not just its own, because the columns couple through the space-row
    collectives.
    """

    GRID_TOL = 10 * TOL

    def _grid(self, problem, u0, **kw):
        kw.setdefault("p_time", 2)
        kw.setdefault("p_space", 2)
        return run_pfasst(specs=_specs(problem), u0=u0, **kw)

    @pytest.mark.parametrize("policy", ["cold-restart", "warm-restart"])
    def test_space_rank_crash_recovers_to_fault_free_solution(
        self, linear_problem, u0, policy
    ):
        """Acceptance: a seeded RankCrash on a space rank of a 2x2 run
        recovers and converges back to the fault-free residuals."""
        base = self._grid(linear_problem, u0, config=_config())
        plan = FaultPlan(crashes=(RankCrash(rank=3, after_ops=20),))
        res = self._grid(
            linear_problem, u0,
            config=_config(recovery=policy, recovery_timeout=2e-4),
            fault_plan=plan,
        )
        assert np.abs(res.u_end - base.u_end).max() < self.GRID_TOL
        assert res.residuals[-1][-1] < TOL
        assert len(res.recoveries) == 1
        rec = res.recoveries[0]
        assert rec["policy"] == policy
        assert rec["failed_ranks"] == [3]
        assert rec["failed_time_ranks"] == [1]
        counts = res.resilience.counts()
        assert counts["crash"] == 1
        assert counts["crash-handled"] == 1

    def test_time_only_column_rank_crash_recovers(self, linear_problem, u0):
        """A crash in the s=0 column (the one whose results are reported)
        recovers the same way."""
        base = self._grid(linear_problem, u0, config=_config())
        plan = FaultPlan(crashes=(RankCrash(rank=2, after_ops=40),))
        res = self._grid(
            linear_problem, u0,
            config=_config(recovery="warm-restart", recovery_timeout=2e-4),
            fault_plan=plan,
        )
        assert np.abs(res.u_end - base.u_end).max() < self.GRID_TOL
        assert res.recoveries[0]["failed_ranks"] == [2]
        assert res.recoveries[0]["failed_time_ranks"] == [1]

    def test_predictor_phase_crash_recovers_on_grid(self, linear_problem, u0):
        base = self._grid(linear_problem, u0, config=_config())
        plan = FaultPlan(crashes=(RankCrash(rank=3, after_ops=5),))
        res = self._grid(
            linear_problem, u0,
            config=_config(recovery="cold-restart", recovery_timeout=2e-4),
            fault_plan=plan,
        )
        assert res.recoveries[0]["phase"] == "predictor"
        assert np.abs(res.u_end - base.u_end).max() < self.GRID_TOL

    def test_grid_recovery_is_replay_stable(self, linear_problem, u0):
        """verify=True re-runs under reversed service order: the injected
        crash, the row resync and the epoch-tagged space traffic must all
        replay to the same bytes."""
        plan = FaultPlan(crashes=(RankCrash(rank=3, after_ops=20),))
        res = self._grid(
            linear_problem, u0,
            config=_config(recovery="warm-restart", recovery_timeout=2e-4),
            fault_plan=plan, verify=True,
        )
        assert len(res.recoveries) == 1

    def test_fault_free_grid_with_policy_matches_plain_grid(
        self, linear_problem, u0
    ):
        """Turning recovery on (EpochComm wrap, world detection) without
        any faults must not change the numerics of a grid run."""
        base = self._grid(linear_problem, u0, config=_config())
        res = self._grid(
            linear_problem, u0,
            config=_config(recovery="warm-restart", recovery_timeout=2e-4),
        )
        assert freeze(res.u_end) == freeze(base.u_end)
        assert freeze(res.residuals) == freeze(base.residuals)
        assert res.recoveries == []

    def test_p_space1_recovery_unchanged_by_grid_support(
        self, linear_problem, u0
    ):
        """The grid extension leaves p_space=1 recovery byte-identical:
        same recoveries dict shape (no grid keys), same numerics."""
        rank, ops = ITER_CRASH[2]
        plan = FaultPlan(crashes=(RankCrash(rank=rank, after_ops=ops),))
        res = run_pfasst(
            _config(recovery="warm-restart"), _specs(linear_problem), u0,
            p_time=2, fault_plan=plan, verify=True,
        )
        assert "failed_time_ranks" not in res.recoveries[0]
        assert sorted(res.recoveries[0]) == [
            "attempt", "block", "failed_ranks", "k", "phase", "policy",
        ]
