"""Tests for the commgraph static layer: tag registry, skeleton
extraction, checks CG001-CG006, and the repro-comm CLI."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.commgraph import (
    check_skeletons,
    extract_paths,
    flatten,
    render_skeleton,
    roots_of,
    to_dot,
)
from repro.analysis.commgraph.cli import main
from repro.parallel import tags
from repro.parallel.tags import (
    REGISTRY,
    TagCollisionError,
    TagRegistry,
    attempt_of,
    family_of,
    tag_class,
    tag_head,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

COMM_MODULES = [
    str(SRC / "repro/pfasst/controller.py"),
    str(SRC / "repro/parallel/collectives.py"),
    str(SRC / "repro/parallel/simmpi.py"),
    str(SRC / "repro/tree/parallel.py"),
]


# ---------------------------------------------------------------------------
# tag registry
# ---------------------------------------------------------------------------
class TestTagRegistry:
    def test_duplicate_head_collides(self):
        reg = TagRegistry()
        reg.register("x", "a")
        with pytest.raises(TagCollisionError):
            reg.register("x", "b")

    def test_historical_values_preserved(self):
        # the migration must keep message streams byte-identical
        assert tags.PRED == "pred"
        assert tags.FTSYNC == "ftsync"
        assert tags.SPACE_DIGEST == "space:digest"
        assert tags.SPLIT == "_split"
        assert tags.SUBCOMM == "sub"
        assert tags.BCAST == "_bcast"

    def test_family_lookup(self):
        fam = family_of((tags.PRED, 0, 1, 2))
        assert fam is not None and fam.subsystem == "pfasst"
        assert fam.arity == 3
        assert family_of(("nope", 1)) is None

    def test_tag_class_plain(self):
        assert tag_class("space:brx") == "space:brx"
        assert tag_class((tags.LVL, 0, 0, 1, 2)) == "lvl"

    def test_tag_class_unwraps_subcomm(self):
        wrapped = ((tags.SUBCOMM, 0, 1), (tags.PRED, 0, 0, 1))
        assert tag_class(wrapped) == "pred"

    def test_tag_class_unwraps_nested_subcomm(self):
        # the (comm_id, (comm_id, tag)) path of a split-of-a-split
        inner = ((tags.SUBCOMM, 1, 0), (tags.PRED, 2, 0, 1))
        nested = ((tags.SUBCOMM, 0, 1), inner)
        assert tag_class(nested) == "pred"
        assert attempt_of(nested) == 0

    def test_tag_class_split_protocol(self):
        # split tags are ((SPLIT, seq), src): a tuple *head*
        assert tag_class(((tags.SPLIT, 0), 3)) == tags.SPLIT
        assert tag_class(((tags.SPLIT, 1), "b", 2)) == tags.SPLIT

    def test_derived_collective_tags_classify(self):
        base = (tags.FTSYNC, 0, 1, 2)
        assert tag_class((base, 1)) == "ftsync"       # butterfly mask
        assert tag_class((base, "r")) == "ftsync"     # reduce half
        assert attempt_of((base, "r")) == 1

    def test_tag_head(self):
        assert tag_head((tags.RTOL, 1, 2, 3)) == "rtol"
        assert tag_head("plain") == "plain"
        assert tag_head(42) == 42  # bare non-tuple tags pass through


# ---------------------------------------------------------------------------
# extraction over the real modules
# ---------------------------------------------------------------------------
class TestExtraction:
    @pytest.fixture(scope="class")
    def skeletons(self):
        return extract_paths(COMM_MODULES)

    def test_real_programs_extracted(self, skeletons):
        names = {sk.name for sk in skeletons}
        assert "pfasst_rank_program" in names
        assert "_grid_rank_program" in names
        assert "VirtualComm.split" in names
        assert "SpaceParallelTreeEvaluator.field_program" in names
        assert {"bcast", "allreduce", "allgather", "barrier"} <= names

    def test_grid_program_is_root(self, skeletons):
        roots = {sk.name for sk in roots_of(skeletons)}
        assert "_grid_rank_program" in roots
        # closures inlined by the controller are not roots
        assert "_predictor" not in roots
        assert "_iteration" not in roots

    def test_flatten_resolves_every_head(self, skeletons):
        grid = next(sk for sk in skeletons
                    if sk.name == "_grid_rank_program")
        heads = set()
        for op in flatten(grid, skeletons):
            if op.kind in ("send", "recv", "collective") and op.tag:
                assert op.tag.head is not None, op
                heads.add(op.tag.head)
        assert {"pred", "lvl", "ftsync", "ftpred", "ftub", "ftwarm",
                "rtol", "blockend", "space:digest"} <= heads

    def test_split_skeleton_has_both_phases(self, skeletons):
        split = next(sk for sk in skeletons
                     if sk.name == "VirtualComm.split")
        kinds = [(op.kind, op.tag.head if op.tag else None)
                 for op in split.comm_ops()]
        assert ("send", tags.SPLIT) in kinds
        assert ("recv", tags.SPLIT) in kinds

    def test_render_and_dot(self, skeletons):
        grid = next(sk for sk in skeletons
                    if sk.name == "_grid_rank_program")
        text = render_skeleton(grid)
        assert "space:digest" in text
        dot = to_dot(skeletons)
        assert dot.startswith("digraph") and "pfasst_rank_program" in dot

    def test_nested_subcomm_split_extracted(self, tmp_path):
        # a split of a split: the extractor sees both split ops and the
        # send on the innermost subcomm with a registry tag
        src = textwrap.dedent("""
            from repro.parallel import tags

            def prog(comm):
                row = yield from comm.split(comm.rank % 2, comm.rank // 2)
                cell = yield from row.split(row.rank % 2, 0)
                yield cell.send(0, (tags.PRED, 0, 0, 0), 1.0)
                x = yield cell.recv(0, (tags.PRED, 0, 0, 0))
                return x
        """)
        path = tmp_path / "nested.py"
        path.write_text(src)
        [sk] = extract_paths([str(path)])
        splits = [op for op in sk.ops if op.kind == "split"]
        assert len(splits) == 2
        assert [op.comm for op in splits] == ["comm", "row"]
        sends = [op for op in sk.ops if op.kind == "send"]
        assert sends and sends[0].tag.head == "pred"
        assert sends[0].comm == "cell"


# ---------------------------------------------------------------------------
# checks: the clean tree and one seeded mutation per rule
# ---------------------------------------------------------------------------
def _check_snippet(tmp_path, source, name="mod.py", subdir="pfasst"):
    d = tmp_path / subdir
    d.mkdir(exist_ok=True)
    p = d / name
    p.write_text(textwrap.dedent(source))
    return check_skeletons(extract_paths([str(p)]))


class TestChecks:
    def test_repository_is_clean(self):
        findings = check_skeletons(extract_paths(COMM_MODULES))
        assert findings == []

    def test_cg001_unregistered_head(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            def prog(comm, rank):
                yield comm.send(rank + 1, ("bogus", 0), 1.0)
                x = yield comm.recv(rank - 1, ("bogus", 0))
        """)
        assert {f.code for f in fs} == {"CG001"}
        assert all(f.severity == "error" for f in fs)

    def test_cg002_cross_subsystem_literal(self, tmp_path):
        # a pfasst module re-spelling the space subsystem's head
        fs = _check_snippet(tmp_path, """
            def prog(comm, rank):
                yield comm.send(rank + 1, ("space:brx", 0), 1.0)
                x = yield comm.recv(rank - 1, ("space:brx", 0))
        """)
        assert "CG002" in {f.code for f in fs}

    def test_registry_constant_crosses_subsystems_cleanly(self, tmp_path):
        # importing another subsystem's *constant* is intentional reuse
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank):
                yield comm.send(rank + 1, (tags.SPACE_BRX, 0), 1.0)
                x = yield comm.recv(rank - 1, (tags.SPACE_BRX, 0))
        """)
        assert "CG002" not in {f.code for f in fs}

    def test_cg003_arity_mismatch(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank):
                yield comm.send(rank + 1, (tags.PRED, 0), 1.0)
                x = yield comm.recv(rank - 1, (tags.PRED, 0))
        """)
        assert {f.code for f in fs} == {"CG003"}

    def test_cg004_dangling_recv_is_error(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank):
                x = yield comm.recv(rank - 1, (tags.FTUB, 0, 1))
        """)
        assert [(f.code, f.severity) for f in fs] == [("CG004", "error")]
        assert "dangling recv" in fs[0].message

    def test_cg004_orphan_prone_send_is_warning(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank):
                yield comm.send(rank + 1, (tags.FTUB, 0, 1), 1.0)
        """)
        assert [(f.code, f.severity) for f in fs] == [("CG004", "warning")]

    def test_cg005_divergent_collective_sequence(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags
            from repro.parallel.collectives import allreduce, barrier

            def prog(comm, rank):
                if rank == 0:
                    total = yield from allreduce(
                        comm, 1.0, tag=(tags.RTOL, 0, 0, 0))
                else:
                    yield from barrier(comm)
        """)
        assert "CG005" in {f.code for f in fs}

    def test_cg005_symmetric_branches_clean(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags
            from repro.parallel.collectives import bcast

            def prog(comm, rank):
                if comm.rank == 0:
                    v = yield from bcast(comm, 1.0, 0,
                                         (tags.BLOCKEND, 0, 0))
                else:
                    v = yield from bcast(comm, None, 0,
                                         (tags.BLOCKEND, 0, 0))
        """)
        assert "CG005" not in {f.code for f in fs}

    def test_cg006_ring_wait_cycle(self, tmp_path):
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank, size):
                x = yield comm.recv((rank - 1) % size,
                                    (tags.PRED, 0, 0, 0))
                yield comm.send((rank + 1) % size,
                                (tags.PRED, 0, 0, 0), 1.0)
        """)
        cg6 = [f for f in fs if f.code == "CG006"]
        assert cg6 and "cycle" in cg6[0].message
        assert "wait-for graph" in cg6[0].message

    def test_cg006_eager_pipeline_clean(self, tmp_path):
        # send-before-recv pipelines are fine under eager semantics
        fs = _check_snippet(tmp_path, """
            from repro.parallel import tags

            def prog(comm, rank, size):
                if rank + 1 < size:
                    yield comm.send(rank + 1, (tags.PRED, 0, 0, 0), 1.0)
                if rank > 0:
                    x = yield comm.recv(rank - 1, (tags.PRED, 0, 0, 0))
        """)
        assert "CG006" not in {f.code for f in fs}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_check_clean_exit_zero(self, capsys):
        assert main(["check", *COMM_MODULES]) == 0
        assert "0 error(s)" in capsys.readouterr().err

    def test_check_seeded_mutation_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "pfasst"
        bad.mkdir()
        (bad / "bad.py").write_text(textwrap.dedent("""
            def prog(comm, rank):
                x = yield comm.recv(rank - 1, ("bogus", 0))
        """))
        assert main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "CG001" in out and "CG004" in out

    def test_graph_ascii(self, capsys):
        assert main(["graph", COMM_MODULES[0],
                     "--root", "_grid_rank_program"]) == 0
        assert "space:digest" in capsys.readouterr().out

    def test_graph_dot(self, capsys):
        assert main(["graph", COMM_MODULES[3], "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_graph_unknown_root(self, capsys):
        assert main(["graph", COMM_MODULES[0], "--root", "nope"]) == 2
