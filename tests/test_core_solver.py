"""Tests for the SpaceTimeSolver facade."""

import numpy as np
import pytest

from repro.core import SolverConfig, SpaceConfig, SpaceTimeSolver, TimeConfig
from repro.vortex import SheetConfig, spherical_vortex_sheet


@pytest.fixture(scope="module")
def sheet():
    cfg = SheetConfig(n=200)
    return spherical_vortex_sheet(cfg), cfg


class TestConfigValidation:
    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            TimeConfig(method="leapfrog")

    def test_bad_evaluator(self):
        with pytest.raises(ValueError, match="evaluator"):
            SpaceConfig(evaluator="fmm")

    def test_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            TimeConfig(dt=-0.5)

    def test_n_steps(self):
        assert TimeConfig(t_end=4.0, dt=0.5).n_steps == 8

    def test_n_steps_non_divisible(self):
        with pytest.raises(ValueError, match="integer multiple"):
            TimeConfig(t_end=1.0, dt=0.3).n_steps

    def test_negative_theta(self):
        with pytest.raises(ValueError, match="theta"):
            SpaceConfig(theta=-1.0)


class TestRuns:
    def test_rk_run(self, sheet):
        ps, cfg = sheet
        config = SolverConfig(
            space=SpaceConfig(evaluator="direct"),
            time=TimeConfig(method="rk2", t_end=1.0, dt=0.5),
        )
        res = SpaceTimeSolver(ps, cfg.sigma, config).run()
        assert res.final.n == ps.n
        assert res.fine_evals == 4  # 2 steps x 2 stages
        assert res.coarse_evals == 0

    def test_sdc_run(self, sheet):
        ps, cfg = sheet
        config = SolverConfig(
            space=SpaceConfig(evaluator="direct"),
            time=TimeConfig(method="sdc", t_end=1.0, dt=0.5, sweeps=3),
        )
        res = SpaceTimeSolver(ps, cfg.sigma, config).run()
        assert res.fine_evals > 0
        assert res.alpha_measured is None

    def test_pfasst_run_records_alpha(self, sheet):
        ps, cfg = sheet
        config = SolverConfig(
            space=SpaceConfig(evaluator="tree", theta=0.3, theta_coarse=0.6,
                              leaf_size=24),
            time=TimeConfig(method="pfasst", t_end=1.0, dt=0.25,
                            iterations=2, coarse_sweeps=2, p_time=4),
        )
        res = SpaceTimeSolver(ps, cfg.sigma, config).run()
        assert res.coarse_evals > 0
        assert res.alpha_measured is not None
        assert res.alpha_measured > 0
        assert len(res.residuals) == 4

    def test_methods_agree_on_final_state(self, sheet):
        """All integrators must land on (approximately) the same flow."""
        ps, cfg = sheet
        results = {}
        for method, extra in [
            ("rk4", {}),
            ("sdc", {"sweeps": 4}),
            ("pfasst", {"iterations": 3, "coarse_sweeps": 2, "p_time": 2}),
        ]:
            config = SolverConfig(
                space=SpaceConfig(evaluator="direct"),
                time=TimeConfig(method=method, t_end=1.0, dt=0.5, **extra),
            )
            res = SpaceTimeSolver(ps, cfg.sigma, config).run()
            results[method] = res.final.positions
        scale = np.max(np.abs(results["rk4"]))
        assert np.max(np.abs(results["sdc"] - results["rk4"])) < 1e-4 * scale
        assert np.max(np.abs(results["pfasst"] - results["sdc"])) < 1e-4 * scale

    def test_callback_receives_states(self, sheet):
        ps, cfg = sheet
        config = SolverConfig(
            space=SpaceConfig(evaluator="direct"),
            time=TimeConfig(method="euler", t_end=1.0, dt=0.5),
        )
        seen = []
        SpaceTimeSolver(ps, cfg.sigma, config).run(
            callback=lambda t, u: seen.append(t)
        )
        assert seen == pytest.approx([0.0, 0.5, 1.0])

    def test_tree_and_direct_agree(self, sheet):
        ps, cfg = sheet
        base = TimeConfig(method="rk2", t_end=0.5, dt=0.5)
        r_direct = SpaceTimeSolver(
            ps, cfg.sigma,
            SolverConfig(space=SpaceConfig(evaluator="direct"), time=base),
        ).run()
        r_tree = SpaceTimeSolver(
            ps, cfg.sigma,
            SolverConfig(space=SpaceConfig(evaluator="tree", theta=0.2,
                                           leaf_size=24), time=base),
        ).run()
        scale = np.max(np.abs(r_direct.final.positions))
        diff = np.max(np.abs(r_tree.final.positions -
                             r_direct.final.positions))
        assert diff < 1e-4 * scale
