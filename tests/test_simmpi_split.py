"""Tests for ``VirtualComm.split`` and tag-translating sub-communicators."""

import numpy as np
import pytest

from repro.parallel import Scheduler, SubComm, allgather, allreduce
from repro.parallel.topology import SpaceTimeGrid


def run(n_ranks, program, **kwargs):
    return Scheduler(n_ranks, **kwargs).run(program)


class TestSplit:
    def test_row_column_split_of_grid(self):
        """One world of 2x3 ranks splits into row and column comms."""
        grid = SpaceTimeGrid(2, 3)

        def program(comm):
            t, s = grid.coords(comm.rank)
            space = yield from comm.split(color=t, key=s)
            tcomm = yield from comm.split(color=s, key=t)
            return {
                "space": (space.rank, space.size, space.members),
                "time": (tcomm.rank, tcomm.size, tcomm.members),
            }

        results = run(6, program)
        for world, res in enumerate(results):
            t, s = grid.coords(world)
            assert res["space"] == (s, 3, grid.space_comm(world))
            assert res["time"] == (t, 2, grid.time_comm(world))

    def test_key_orders_sub_ranks(self):
        def program(comm):
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank, sub.members

        results = run(4, program)
        # descending keys reverse the rank order
        assert [r[0] for r in results] == [3, 2, 1, 0]
        assert results[0][1] == [3, 2, 1, 0]

    def test_none_color_excludes_rank(self):
        def program(comm):
            sub = yield from comm.split(color=None if comm.rank == 1 else 0)
            if sub is None:
                return None
            return sub.size, sub.members

        results = run(3, program)
        assert results[1] is None
        assert results[0] == (2, [0, 2])
        assert results[2] == (2, [0, 2])

    def test_point_to_point_over_subcomm(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                yield sub.send(1, "t", comm.rank * 10)
                return None
            return (yield sub.recv(0, "t"))

        results = run(4, program)
        # odd group is ranks [1, 3]: world 3 receives 10 from world 1
        assert results[2] == 0 and results[3] == 10

    def test_collectives_over_subcomm(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank // 2, key=comm.rank)
            total = yield from allreduce(sub, comm.rank + 1, op=lambda a, b: a + b)
            gathered = yield from allgather(sub, comm.rank)
            return total, gathered

        results = run(4, program)
        assert results[0] == (1 + 2, [0, 1])
        assert results[3] == (3 + 4, [2, 3])

    def test_nested_split(self):
        """Splitting a SubComm wraps tags recursively."""

        def program(comm):
            half = yield from comm.split(color=comm.rank // 2, key=comm.rank)
            solo = yield from half.split(color=half.rank, key=0)
            assert isinstance(solo, SubComm)
            val = yield from allgather(solo, comm.rank)
            return solo.size, solo.world_rank, val

        results = run(4, program)
        for world, (size, wr, val) in enumerate(results):
            assert size == 1 and wr == world and val == [world]

    def test_translate_and_world_rank(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            return (
                sub.world_rank,
                [sub.translate(r) for r in range(sub.size)],
            )

        results = run(4, program)
        assert results[1] == (1, [1, 3])
        assert results[2] == (2, [0, 2])

    def test_metrics_shared_with_scheduler(self):
        sched = Scheduler(2)

        def program(comm):
            sub = yield from comm.split(color=0, key=comm.rank)
            assert sub.metrics is comm.metrics
            if sub.rank == 0:
                yield sub.send(1, "x", b"abc")
            else:
                yield sub.recv(0, "x")
            return None

        sched.run(program)
        assert sched.metrics.counter("mpi.messages").value > 0

    def test_out_of_range_peer_raises(self):
        def program(comm):
            sub = yield from comm.split(color=0, key=comm.rank)
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    sub.send(sub.size, "t", 1)
                with pytest.raises(ValueError):
                    sub.recv(-1, "t")
                with pytest.raises(ValueError):
                    sub.translate(sub.size)
            yield from allgather(sub, None)
            return True

        assert all(run(3, program))

    def test_self_send_rejected(self):
        def program(comm):
            sub = yield from comm.split(color=0, key=comm.rank)
            if comm.rank == 1:
                with pytest.raises(ValueError):
                    sub.send(sub.rank, "t", 1)
            yield from allgather(sub, None)
            return True

        assert all(run(2, program))

    def test_split_deterministic_under_verify_replay(self):
        """Sub-comm construction must be replay-stable (verify mode)."""

        def program(comm):
            space = yield from comm.split(color=comm.rank // 2, key=comm.rank)
            vals = yield from allgather(space, float(comm.rank))
            return np.asarray(vals)

        results = Scheduler(4, verify=True).run(program)
        np.testing.assert_array_equal(results[0], [0.0, 1.0])
        np.testing.assert_array_equal(results[3], [2.0, 3.0])
