"""Tests for the speedup/efficiency theory (paper Eqs. 21-25)."""

import numpy as np
import pytest

from repro.pfasst.theory import (
    PfasstCostModel,
    alpha_from_measurements,
    efficiency_two_level,
    multi_level_speedup,
    parareal_speedup,
    speedup_bound,
    speedup_two_level,
)


class TestAlpha:
    def test_paper_small_setup(self):
        """Eq. 26: alpha_small = 2 / (2.65 * 3)."""
        a = alpha_from_measurements(2, 3, 2.65)
        assert a == pytest.approx(2.0 / (2.65 * 3.0))

    def test_paper_large_setup(self):
        a = alpha_from_measurements(2, 3, 3.23)
        assert a == pytest.approx(2.0 / (3.23 * 3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_from_measurements(0, 3, 2.0)
        with pytest.raises(ValueError):
            alpha_from_measurements(2, 3, 0.0)


class TestTwoLevelSpeedup:
    def test_bound_eq25_holds_everywhere(self):
        """S(P_T; alpha) <= Ks/Kp * P_T for any alpha (Eq. 25)."""
        p = np.array([1, 2, 4, 8, 16, 32, 64])
        for alpha in (0.05, 0.25, 1.0):
            s = speedup_two_level(p, alpha, ks=4, kp=2, n_coarse=2)
            assert np.all(s <= speedup_bound(p, 4, 2) + 1e-12)

    def test_smaller_alpha_is_faster(self):
        s_fast = speedup_two_level(16, 0.1, ks=4, kp=2, n_coarse=2)
        s_slow = speedup_two_level(16, 0.5, ks=4, kp=2, n_coarse=2)
        assert s_fast > s_slow

    def test_monotone_in_p(self):
        p = np.arange(1, 65)
        s = speedup_two_level(p, 0.25, ks=4, kp=2, n_coarse=2)
        assert np.all(np.diff(s) > 0)

    def test_asymptote(self):
        """S -> Ks / (nL alpha) as P_T -> infinity."""
        s = speedup_two_level(10**9, 0.25, ks=4, kp=2, n_coarse=2)
        assert s == pytest.approx(4.0 / (2 * 0.25), rel=1e-5)

    def test_beta_overhead_reduces_speedup(self):
        s0 = speedup_two_level(16, 0.25, 4, 2, 2, beta=0.0)
        s1 = speedup_two_level(16, 0.25, 4, 2, 2, beta=0.5)
        assert s1 < s0

    def test_efficiency_below_ks_over_kp(self):
        p = np.array([2, 8, 32])
        e = efficiency_two_level(p, 0.2, ks=4, kp=2, n_coarse=2)
        assert np.all(e <= 4 / 2 + 1e-12)
        assert np.all(e > 0)

    def test_paper_fig8_magnitudes(self):
        """Paper: ~5x (small) and ~7x (large) at P_T = 32."""
        alpha_small = alpha_from_measurements(2, 3, 2.65)
        alpha_large = alpha_from_measurements(2, 3, 3.23)
        s_small = speedup_two_level(32, alpha_small, ks=4, kp=2, n_coarse=2)
        s_large = speedup_two_level(32, alpha_large, ks=4, kp=2, n_coarse=2)
        assert 4.0 < s_small < 7.5
        assert 5.0 < s_large < 8.5
        assert s_large > s_small


class TestPararealContrast:
    def test_parareal_efficiency_bounded_by_inverse_k(self):
        p = np.array([4, 16, 64, 256])
        for k in (2, 3, 4):
            eff = parareal_speedup(p, 0.0, k) / p
            assert np.all(eff <= 1.0 / k + 1e-12)

    def test_pfasst_beats_parareal_bound(self):
        """With Ks=4, Kp=2 PFASST can exceed parareal's P/K ceiling."""
        p = 64
        pfasst = speedup_two_level(p, 0.05, ks=4, kp=2, n_coarse=2)
        parareal_ceiling = p / 2
        # PFASST's ceiling is Ks/Kp * P = 2P; check it exceeds P/K here
        assert speedup_bound(p, 4, 2) > parareal_ceiling


class TestCostModel:
    def test_serial_cost_eq21(self):
        m = PfasstCostModel(ks=4, kp=2, n_sweeps=[1, 2],
                            upsilon=[1.0, 0.2], gamma=[0.0, 0.0])
        assert m.serial_cost(8) == 8 * 4 * 1.0

    def test_parallel_cost_eq22(self):
        m = PfasstCostModel(ks=4, kp=2, n_sweeps=[1, 2],
                            upsilon=[1.0, 0.2], gamma=[0.1, 0.05])
        expected = 8 * 2 * 0.2 + 2 * (1 * (1.0 + 0.1) + 2 * (0.2 + 0.05))
        assert m.parallel_cost(8) == pytest.approx(expected)

    def test_speedup_consistency_with_closed_form(self):
        """Eq. 23 with gamma=0 reduces to Eq. 24."""
        alpha = 0.25
        m = PfasstCostModel(ks=4, kp=2, n_sweeps=[1, 2],
                            upsilon=[1.0, alpha], gamma=[0.0, 0.0])
        for p in (2, 8, 32):
            closed = speedup_two_level(p, alpha, 4, 2, 2)
            assert m.speedup(p) == pytest.approx(float(closed))

    def test_multi_level_speedup_matches_cost_model(self):
        n_sweeps, upsilon = [1, 1, 2], [1.0, 0.4, 0.1]
        m = PfasstCostModel(ks=4, kp=2, n_sweeps=n_sweeps,
                            upsilon=upsilon, gamma=[0.0] * 3)
        s = multi_level_speedup(16, 4, 2, n_sweeps, upsilon)
        assert float(s) == pytest.approx(m.speedup(16))

    def test_validation(self):
        with pytest.raises(ValueError, match="equal lengths"):
            PfasstCostModel(ks=4, kp=2, n_sweeps=[1], upsilon=[1.0, 0.2],
                            gamma=[0.0, 0.0])
        with pytest.raises(ValueError, match=">= 1"):
            PfasstCostModel(ks=0, kp=2, n_sweeps=[1], upsilon=[1.0],
                            gamma=[0.0])
