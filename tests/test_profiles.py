"""Tests for the multipole radial derivative chains."""

import numpy as np
import pytest

from repro.tree.profiles import (
    RationalProfile,
    potential_profile,
    radial_chain,
    supports_multipoles,
)
from repro.vortex.kernels import (
    GaussianKernel,
    SingularKernel,
    get_kernel,
)
from fractions import Fraction

ALGEBRAIC = ["algebraic2", "algebraic4", "algebraic6"]


class TestRationalProfile:
    def test_evaluation(self):
        p = RationalProfile(coeffs=(1.0, 2.0), k=Fraction(1, 2))
        t = np.array([0.0, 3.0])
        assert np.allclose(p(t), (1 + 2 * t) / np.sqrt(t + 1))

    def test_diff_matches_finite_difference(self):
        p = RationalProfile(coeffs=(1.0, -2.0, 0.5), k=Fraction(5, 2))
        dp = p.diff()
        t = np.linspace(0.1, 5, 50)
        eps = 1e-7
        fd = (p(t + eps) - p(t - eps)) / (2 * eps)
        assert np.allclose(dp(t), fd, rtol=1e-5)

    def test_diff_of_constant(self):
        p = RationalProfile(coeffs=(2.0,), k=Fraction(0))
        dp = p.diff()
        assert np.allclose(dp(np.array([1.0, 2.0])), 0.0)


class TestSupports:
    def test_algebraic_supported(self):
        for name in ALGEBRAIC:
            assert supports_multipoles(get_kernel(name))

    def test_singular_supported(self):
        assert supports_multipoles(SingularKernel())

    def test_gaussian_not_supported(self):
        assert not supports_multipoles(GaussianKernel())
        with pytest.raises(NotImplementedError):
            radial_chain(GaussianKernel(), np.array([1.0]), 1.0, 2)


class TestChain:
    @pytest.mark.parametrize("name", ALGEBRAIC)
    def test_d1_equals_minus_f_over_fourpi(self, name):
        """D1 = -(1/4pi) q(rho)/r^3 by construction."""
        k = get_kernel(name)
        sigma = 0.6
        r = np.linspace(0.05, 4, 50)
        (d1,) = radial_chain(k, r**2, sigma, 1)
        expected = -k.f_radial(r, sigma) / (4 * np.pi)
        assert np.allclose(d1, expected, rtol=1e-12)

    @pytest.mark.parametrize("name", ALGEBRAIC + ["singular"])
    def test_chain_recurrence_numerically(self, name):
        """D_{n+1}(r) = D_n'(r) / r, verified by finite differences."""
        k = get_kernel(name) if name != "singular" else SingularKernel()
        sigma = 0.6
        r = np.linspace(0.3, 3, 30)
        chain = radial_chain(k, r**2, sigma, 4)
        eps = 1e-6
        for n in range(3):
            up = radial_chain(k, (r + eps) ** 2, sigma, 4)[n]
            dn = radial_chain(k, (r - eps) ** 2, sigma, 4)[n]
            deriv = (up - dn) / (2 * eps)
            assert np.allclose(chain[n + 1], deriv / r, rtol=1e-4,
                               atol=1e-10), f"chain order {n + 1}"

    def test_singular_matches_classic_tensors(self):
        """D1 = -(1/4pi)/r^3, D2 = 3/(4pi r^5)."""
        k = SingularKernel()
        r = np.array([0.5, 1.0, 2.0])
        d1, d2 = radial_chain(k, r**2, 1.0, 2)
        assert np.allclose(d1, -1 / (4 * np.pi * r**3))
        assert np.allclose(d2, 3 / (4 * np.pi * r**5))

    @pytest.mark.parametrize("name", ALGEBRAIC)
    def test_far_field_approaches_singular(self, name):
        k = get_kernel(name)
        sing = SingularKernel()
        r = np.array([50.0])
        sigma = 0.5
        for a, b in zip(radial_chain(k, r**2, sigma, 3),
                        radial_chain(sing, r**2, 1.0, 3)):
            assert np.allclose(a, b, rtol=1e-3)

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="max_order"):
            radial_chain(SingularKernel(), np.array([1.0]), 1.0, 0)


class TestPotentialProfile:
    @pytest.mark.parametrize("name", ALGEBRAIC)
    def test_derivative_consistent_with_d1(self, name):
        """G'(r) = D1 * r (the chain's defining relation)."""
        k = get_kernel(name)
        sigma = 0.7
        r = np.linspace(0.2, 4, 40)
        eps = 1e-6
        g_plus = potential_profile(k, (r + eps) ** 2, sigma)
        g_minus = potential_profile(k, (r - eps) ** 2, sigma)
        deriv = (g_plus - g_minus) / (2 * eps)
        (d1,) = radial_chain(k, r**2, sigma, 1)
        assert np.allclose(deriv, d1 * r, rtol=1e-5, atol=1e-9)

    @pytest.mark.parametrize("name", ALGEBRAIC)
    def test_far_field_is_coulomb(self, name):
        k = get_kernel(name)
        r2 = np.array([900.0])
        g = potential_profile(k, r2, 0.5)
        assert g[0] == pytest.approx(1 / (4 * np.pi * 30.0), rel=1e-3)

    def test_plummer_for_second_order(self):
        """algebraic2's potential is exactly the Plummer potential."""
        k = get_kernel("algebraic2")
        sigma = 0.8
        r = np.linspace(0.0, 5, 30)
        g = potential_profile(k, r**2, sigma)
        assert np.allclose(g, 1 / (4 * np.pi * np.sqrt(r**2 + sigma**2)))

    def test_singular_potential(self):
        g = potential_profile(SingularKernel(), np.array([4.0]), 1.0)
        assert g[0] == pytest.approx(1 / (8 * np.pi))

    def test_gaussian_unsupported(self):
        with pytest.raises(NotImplementedError):
            potential_profile(GaussianKernel(), np.array([1.0]), 1.0)
