"""Tests for SFC domain decomposition and branch nodes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tree.domain import (
    branch_counts,
    cover_key_range,
    partition_box_surface,
    sfc_partition,
)


class TestPartition:
    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    def test_balanced_counts(self, rng, curve):
        pos = rng.random((1000, 3))
        d = sfc_partition(pos, 7, curve=curve)
        assert d.counts.sum() == 1000
        assert d.counts.max() - d.counts.min() <= 1
        assert d.imbalance < 1.01

    def test_rank_of_consistent_with_slices(self, rng):
        pos = rng.random((300, 3))
        d = sfc_partition(pos, 4)
        for r in range(4):
            idx = d.order[d.rank_start[r]:d.rank_end[r]]
            assert np.all(d.rank_of[idx] == r)

    def test_contiguous_key_ranges(self, rng):
        """Rank key intervals are disjoint and ordered."""
        pos = rng.random((500, 3))
        d = sfc_partition(pos, 5)
        for r in range(4):
            last = d.keys_sorted[d.rank_end[r] - 1]
            first_next = d.keys_sorted[d.rank_start[r + 1]]
            assert last <= first_next

    def test_single_rank(self, rng):
        pos = rng.random((50, 3))
        d = sfc_partition(pos, 1)
        assert d.counts[0] == 50

    def test_too_few_particles(self, rng):
        with pytest.raises(ValueError, match="cannot split"):
            sfc_partition(rng.random((3, 3)), 5)

    def test_unknown_curve(self, rng):
        with pytest.raises(ValueError, match="curve"):
            sfc_partition(rng.random((10, 3)), 2, curve="peano")

    def test_hilbert_surface_not_worse_than_morton(self, rng):
        """The SFC-quality ablation claim (on a uniform cloud)."""
        pos = rng.random((4000, 3))
        sm = partition_box_surface(pos, sfc_partition(pos, 16, "morton"))
        sh = partition_box_surface(pos, sfc_partition(pos, 16, "hilbert"))
        assert sh <= sm * 1.1


class TestCoverKeyRange:
    def test_single_key(self):
        cells = cover_key_range(5, 5, depth=4)
        assert cells == [(5, 4)]

    def test_full_domain(self):
        cells = cover_key_range(0, 8**4 - 1, depth=4)
        assert cells == [(0, 0)]

    def test_aligned_octant(self):
        size = 8**3
        cells = cover_key_range(size, 2 * size - 1, depth=4)
        assert cells == [(size, 1)]

    def test_cover_is_exact_partition(self):
        lo, hi = 13, 997
        cells = cover_key_range(lo, hi, depth=4)
        covered = []
        for start, level in cells:
            span = 8 ** (4 - level)
            assert start % span == 0, "cells must be aligned"
            covered.extend(range(start, start + span))
        assert covered == list(range(lo, hi + 1))

    def test_minimality(self):
        """No two sibling cells of the cover can be merged."""
        cells = cover_key_range(13, 997, depth=4)
        keys = {(s, l) for s, l in cells}
        for start, level in cells:
            if level == 0:
                continue
            span = 8 ** (4 - level)
            parent_span = span * 8
            parent_start = (start // parent_span) * parent_span
            siblings = {
                (parent_start + i * span, level) for i in range(8)
            }
            assert not siblings <= keys, "mergeable siblings found"

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            cover_key_range(5, 4)

    def test_out_of_bounds(self):
        with pytest.raises(ValueError, match="key space"):
            cover_key_range(0, 8**4, depth=4)

    @settings(max_examples=40, deadline=None)
    @given(
        lo=st.integers(0, 8**4 - 1),
        span=st.integers(0, 2000),
    )
    def test_cover_property(self, lo, span):
        hi = min(lo + span, 8**4 - 1)
        cells = cover_key_range(lo, hi, depth=4)
        total = sum(8 ** (4 - level) for _, level in cells)
        assert total == hi - lo + 1


class TestBranchCounts:
    def test_counts_positive(self, rng):
        pos = rng.random((600, 3))
        d = sfc_partition(pos, 8)
        counts = branch_counts(d)
        assert np.all(counts >= 1)

    def test_single_rank_has_few_branches(self, rng):
        pos = rng.random((600, 3))
        d = sfc_partition(pos, 1)
        counts = branch_counts(d)
        # one rank covering its own key interval: O(depth) cells,
        # roughly bounded by 2 * 7 * depth = 294 at depth 21
        assert counts[0] < 300

    def test_total_branches_grow_with_ranks(self, rng):
        """The Fig. 5 saturation driver: more ranks => more branch
        nodes to exchange in total."""
        pos = rng.random((2000, 3))
        totals = [branch_counts(sfc_partition(pos, p)).sum()
                  for p in (2, 8, 32)]
        assert totals[0] < totals[1] < totals[2]


class TestBranchesVersusCover:
    """branch_counts must agree, rank by rank, with a direct
    cover_key_range over each rank's occupied key interval — and the
    cover cells must tile exactly that rank's particles."""

    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    @pytest.mark.parametrize("n_ranks", [3, 8])
    def test_per_rank_counts_match_direct_cover(self, rng, curve, n_ranks):
        pos = rng.random((900, 3))
        d = sfc_partition(pos, n_ranks, curve=curve)
        counts = branch_counts(d)
        assert counts.shape == (n_ranks,)
        for r in range(n_ranks):
            s, e = int(d.rank_start[r]), int(d.rank_end[r])
            cells = cover_key_range(
                int(d.keys_sorted[s]), int(d.keys_sorted[e - 1])
            )
            assert counts[r] == len(cells)

    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    def test_cover_cells_tile_each_ranks_particles(self, rng, curve):
        from repro.tree.morton import MAX_DEPTH

        pos = rng.random((700, 3))
        d = sfc_partition(pos, 5, curve=curve)
        keys = d.keys_sorted
        for r in range(d.n_ranks):
            s, e = int(d.rank_start[r]), int(d.rank_end[r])
            seg = keys[s:e]
            total = 0
            prev_end = None
            for key, level in cover_key_range(int(seg[0]), int(seg[-1])):
                span = 1 << (3 * (MAX_DEPTH - level))
                assert key % span == 0  # cell-aligned
                if prev_end is not None:
                    assert key == prev_end  # contiguous, disjoint
                prev_end = key + span
                lo = np.searchsorted(seg, np.uint64(key), side="left")
                hi = np.searchsorted(seg, np.uint64(key + span), side="left")
                total += int(hi - lo)
            assert total == e - s

    def test_curves_disagree_on_layout_not_totals(self, rng):
        """Hilbert and Morton order particles differently but both tile
        all particles over the ranks."""
        pos = rng.random((800, 3))
        dm = sfc_partition(pos, 6, curve="morton")
        dh = sfc_partition(pos, 6, curve="hilbert")
        assert dm.counts.sum() == dh.counts.sum() == 800
        assert np.all(branch_counts(dm) >= 1)
        assert np.all(branch_counts(dh) >= 1)
