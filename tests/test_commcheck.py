"""Tests for the simulated-MPI protocol verifier (repro.analysis.commcheck)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.commcheck import (
    OrphanMessage,
    VerificationError,
    WaitForGraph,
    compare_replays,
    find_orphans,
    freeze,
)
from repro.parallel import (
    DeadlockError,
    OrphanMessageWarning,
    Scheduler,
)
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.pfasst.controller import pfasst_rank_program
from repro.vortex.problem import ODEProblem


class _ScalarODE(ODEProblem):
    """Nonlinear scalar test problem u' = -u^2 + sin(3t)."""

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return -u * u + np.sin(3.0 * t)


# ---------------------------------------------------------------------------
# wait-for graph
# ---------------------------------------------------------------------------
class TestWaitForGraph:
    def test_two_cycle(self):
        g = WaitForGraph({0: (1, "a"), 1: (0, "b")})
        assert g.cycles() == [[0, 1, 0]]

    def test_three_cycle(self):
        g = WaitForGraph({0: (1, "t"), 1: (2, "t"), 2: (0, "t")})
        assert g.cycles() == [[0, 1, 2, 0]]

    def test_tail_into_cycle(self):
        """A rank waiting on a deadlocked pair is not itself in the cycle."""
        g = WaitForGraph({0: (1, "t"), 1: (2, "t"), 2: (1, "t")})
        assert g.cycles() == [[1, 2, 1]]

    def test_no_cycle_when_waiting_on_finished_rank(self):
        g = WaitForGraph({0: (1, "t")})  # rank 1 finished
        assert g.cycles() == []
        text = g.render()
        assert "source already finished" in text
        assert "no cycle" in text

    def test_render_names_edges_and_cycle(self):
        text = WaitForGraph({0: (1, "x"), 1: (0, "y")}).render()
        assert "rank 0 -> rank 1" in text
        assert "tag='x'" in text
        assert "cycle: rank 0 -> rank 1 -> rank 0" in text


class TestDeadlockDiagnostic:
    def test_deadlocked_two_rank_program_names_the_cycle(self):
        """Acceptance: the deadlock fixture's wait-for graph names the cycle."""
        def prog(comm):
            # both ranks receive before sending: classic head-to-head deadlock
            other = (comm.rank + 1) % comm.size
            _ = yield comm.recv(other, "swap")
            yield comm.send(other, "swap", comm.rank)

        with pytest.raises(DeadlockError) as exc_info:
            Scheduler(2, measure_compute=False).run(prog)
        msg = str(exc_info.value)
        assert "wait-for graph" in msg
        assert "rank 0 -> rank 1" in msg
        assert "rank 1 -> rank 0" in msg
        assert "cycle: rank 0 -> rank 1 -> rank 0" in msg

    def test_waiting_on_finished_rank_reported(self):
        def prog(comm):
            if comm.rank == 1:
                _ = yield comm.recv(0, "never")

        with pytest.raises(DeadlockError, match="source already finished"):
            Scheduler(2, measure_compute=False).run(prog)


# ---------------------------------------------------------------------------
# orphaned messages
# ---------------------------------------------------------------------------
class TestOrphans:
    def test_orphan_reported_at_exit(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "lost", np.arange(4))
                yield comm.send(1, "lost", np.arange(4))
            else:
                yield comm.work(0.0)

        s = Scheduler(2, measure_compute=False)
        with pytest.warns(OrphanMessageWarning, match="never received"):
            s.run(prog)
        assert s.orphans == [
            OrphanMessage(source=0, dest=1, tag="lost", count=2)
        ]

    def test_clean_program_has_no_orphans(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", 1)
            else:
                _ = yield comm.recv(0, "t")

        s = Scheduler(2, measure_compute=False)
        s.run(prog)
        assert s.orphans == []

    def test_warning_suppressible(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "lost", 1)
            else:
                yield comm.work(0.0)

        import warnings

        s = Scheduler(2, measure_compute=False, warn_orphans=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            s.run(prog)
        assert len(s.orphans) == 1

    def test_find_orphans_ignores_empty_channels(self):
        assert find_orphans({(0, 1, "t"): []}) == []


# ---------------------------------------------------------------------------
# freeze / byte identity
# ---------------------------------------------------------------------------
class TestFreeze:
    def test_identical_arrays_freeze_identically(self):
        a = np.linspace(0.0, 1.0, 7)
        assert freeze([a, {"k": a}]) == freeze([a.copy(), {"k": a.copy()}])

    def test_one_ulp_difference_detected(self):
        a = np.array([1.0])
        b = np.nextafter(a, 2.0)
        assert freeze(a) != freeze(b)

    def test_dtype_matters(self):
        a = np.zeros(3, dtype=np.float64)
        assert freeze(a) != freeze(a.astype(np.float32))

    def test_shape_matters(self):
        a = np.zeros(6)
        assert freeze(a) != freeze(a.reshape(2, 3))

    def test_compare_replays_names_differing_ranks(self):
        with pytest.raises(VerificationError, match=r"differing ranks: \[1\]"):
            compare_replays([1, np.array([2.0])], [1, np.array([3.0])])


# ---------------------------------------------------------------------------
# verify-mode replay
# ---------------------------------------------------------------------------
class TestVerifyReplay:
    def test_deterministic_program_passes(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", np.arange(3.0))
                return 0.0
            v = yield comm.recv(0, "t")
            return float(v.sum())

        res = Scheduler(2, measure_compute=False, verify=True).run(prog)
        assert res == [0.0, 3.0]

    def test_schedule_dependent_program_caught(self):
        """Shared mutable state across ranks is the race verify must catch."""
        shared = []

        def prog(comm):
            # order in which ranks append depends on the service order:
            # a genuine race in an event-driven runtime
            shared.append(comm.rank)
            yield comm.work(0.0)
            return tuple(shared)

        with pytest.raises(VerificationError, match="reversed rank-service"):
            Scheduler(3, measure_compute=False, verify=True).run(prog)

    def test_invalid_service_order_rejected(self):
        with pytest.raises(ValueError, match="service_order"):
            Scheduler(2, service_order="sideways")

    def test_descending_order_same_results(self):
        def prog(comm):
            if comm.rank > 0:
                v = yield comm.recv(comm.rank - 1, "x")
            else:
                v = 100
            if comm.rank < comm.size - 1:
                yield comm.send(comm.rank + 1, "x", v + 1)
            return v

        asc = Scheduler(4, measure_compute=False).run(prog)
        desc = Scheduler(
            4, measure_compute=False, service_order="descending"
        ).run(prog)
        assert asc == desc == [100, 101, 102, 103]


@settings(max_examples=6, deadline=None)
@given(p_time=st.sampled_from([2, 3, 4]))
def test_pfasst_controller_verifies_under_replay(p_time):
    """Acceptance: Scheduler(verify=True) reproduces byte-identical PFASST
    results under the reversed rank-service order for P_T in {2, 3, 4}."""
    u0 = np.array([1.0])
    cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=p_time, iterations=2)
    specs = [
        LevelSpec(_ScalarODE(), 3, 1),
        LevelSpec(_ScalarODE(), 2, 2),
    ]
    scheduler = Scheduler(p_time, measure_compute=False, verify=True)
    results = scheduler.run(
        pfasst_rank_program, args=(cfg, specs, u0, None)
    )
    assert len(results) == p_time
    assert scheduler.orphans == []


def test_run_pfasst_verify_passthrough(scalar_problem):
    u0 = np.array([1.0])
    cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2)
    specs = [
        LevelSpec(scalar_problem, 3, 1),
        LevelSpec(scalar_problem, 2, 2),
    ]
    verified = run_pfasst(cfg, specs, u0, p_time=2, verify=True)
    plain = run_pfasst(cfg, specs, u0, p_time=2)
    assert np.array_equal(verified.u_end, plain.u_end)


class TestOrphanDedup:
    def test_exact_tags_collapse_per_family(self):
        from collections import deque

        from repro.parallel.simmpi import _Message

        channels = {
            (0, 1, ("pred", 0, 0, 1)): deque([_Message(1.0, 0.0, sent=0.5)]),
            (0, 1, ("pred", 1, 2, 1)): deque([_Message(2.0, 0.0, sent=1.5)]),
        }
        [orphan] = find_orphans(channels)
        assert orphan.tag == "pred" and orphan.count == 2
        assert orphan.variants == 2
        assert orphan.attempts == (0, 2)
        assert orphan.first_sent == 0.5 and orphan.last_sent == 1.5
        assert "2 distinct tags" in orphan.render()
        assert "attempts 0, 2" in orphan.render()

    def test_single_channel_keeps_exact_tag(self):
        from collections import deque

        from repro.parallel.simmpi import _Message

        channels = {
            (0, 1, "lost"): deque([_Message(0, 0, sent=0.1),
                                   _Message(0, 0, sent=0.2)]),
        }
        assert find_orphans(channels) == [
            OrphanMessage(source=0, dest=1, tag="lost", count=2)
        ]

    def test_extras_excluded_from_equality(self):
        a = OrphanMessage(source=0, dest=1, tag="x", count=1,
                          variants=3, attempts=(1,), first_sent=1.0)
        b = OrphanMessage(source=0, dest=1, tag="x", count=1)
        assert a == b

    def test_scheduler_report_carries_send_times(self):
        def prog(comm):
            if comm.rank == 0:
                for block in range(3):
                    yield comm.send(1, ("pred", block, 0, 1), float(block))
            return None

        sched = Scheduler(2, warn_orphans=False)
        sched.run(prog)
        [orphan] = sched.orphans
        assert orphan.tag == "pred" and orphan.count == 3
        assert orphan.variants == 3
        assert orphan.last_sent >= orphan.first_sent >= 0.0


class TestNestedSubCommDiagnostics:
    """The (comm_id, (comm_id, tag)) translation path in diagnostics."""

    def test_nested_split_deadlock_renders_translated_tags(self):
        from repro.parallel import tags

        def prog(comm):
            # 4 ranks -> two rows of 2 -> nested singleton-pair split;
            # then each nested pair deadlocks on a circular wait
            row = yield from comm.split(comm.rank % 2, comm.rank // 2)
            cell = yield from row.split(0, row.rank)
            peer = 1 - cell.rank
            v = yield cell.recv(peer, (tags.PRED, 0, 0, 0))
            yield cell.send(peer, (tags.PRED, 0, 0, 0), v)
            return v

        sched = Scheduler(4)
        with pytest.raises(DeadlockError) as err:
            sched.run(prog)
        msg = str(err.value)
        assert "wait-for graph" in msg and "cycle:" in msg
        # the rendered tag shows the full nested SubComm wrapping
        assert msg.count("'sub'") >= 2
        assert "'pred'" in msg

    def test_nested_split_orphan_report_unwraps_tag_class(self):
        from repro.parallel import tags
        from repro.parallel.tags import tag_class

        def prog(comm):
            row = yield from comm.split(comm.rank % 2, comm.rank // 2)
            cell = yield from row.split(0, row.rank)
            if cell.rank == 0:
                yield cell.send(1, (tags.PRED, 0, 0, 1), 1.0)
            return None

        sched = Scheduler(4, warn_orphans=False)
        sched.run(prog)
        assert sched.orphans
        for orphan in sched.orphans:
            assert tag_class(orphan.tag) == "pred"
