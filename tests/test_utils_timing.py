"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer, TimingRegistry, timed


class TestTimer:
    def test_accumulates_elapsed(self):
        t = Timer(name="x")
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005
        assert t.count == 1

    def test_multiple_activations_accumulate(self):
        t = Timer(name="x")
        for _ in range(3):
            with t:
                pass
        assert t.count == 3
        assert t.mean == pytest.approx(t.elapsed / 3)

    def test_double_start_raises(self):
        t = Timer(name="x")
        t.start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer(name="x").stop()

    def test_reset_clears_state(self):
        t = Timer(name="x")
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.count == 0

    def test_mean_zero_when_never_run(self):
        assert Timer(name="x").mean == 0.0

    def test_stop_returns_duration(self):
        t = Timer(name="x")
        t.start()
        dt = t.stop()
        assert dt >= 0.0
        assert dt == pytest.approx(t.elapsed)


class TestTimingRegistry:
    def test_timer_is_cached_by_name(self):
        reg = TimingRegistry()
        assert reg.timer("a") is reg.timer("a")

    def test_phase_context_accumulates(self):
        reg = TimingRegistry()
        with reg.phase("build"):
            pass
        with reg.phase("build"):
            pass
        assert reg.timer("build").count == 2

    def test_elapsed_of_unknown_phase_is_zero(self):
        assert TimingRegistry().elapsed("nope") == 0.0

    def test_report_contains_phase_names(self):
        reg = TimingRegistry()
        with reg.phase("traverse"):
            pass
        assert "traverse" in reg.report()

    def test_as_dict(self):
        reg = TimingRegistry()
        with reg.phase("a"):
            pass
        d = reg.as_dict()
        assert set(d) == {"a"}
        assert d["a"] >= 0.0

    def test_reset(self):
        reg = TimingRegistry()
        with reg.phase("a"):
            time.sleep(0.002)
        reg.reset()
        assert reg.elapsed("a") == 0.0


def test_timed_block():
    with timed() as t:
        time.sleep(0.005)
    assert t.elapsed >= 0.002
