"""Durable checkpoint/restart: containers, resume byte-identity, corruption.

The contract pinned here is the strongest one the controller offers: a
run killed mid-iteration and resumed via ``resume_from=`` produces final
u-blocks and residual histories *byte-identical* to an uninterrupted
run — attaching a checkpointer costs zero scheduler ops, and resuming
replays exactly the iterations the uninterrupted run would have
executed.
"""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.io import CheckpointCorruptionError
from repro.parallel.faults import FaultPlan, RankCrash, RankFailure
from repro.pfasst.checkpoint import (
    RunCheckpoint,
    RunCheckpointer,
    adopt_levels,
    snapshot_levels,
)
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec

TOL = 1e-11


def _specs(problem):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


def _config(**kw):
    kw.setdefault("t0", 0.0)
    kw.setdefault("t_end", 1.0)
    kw.setdefault("n_steps", 4)
    kw.setdefault("iterations", 8)
    return PfasstConfig(**kw)


@pytest.fixture
def u0():
    return np.array([1.0, 2.0])


def _frozen(res):
    return (
        freeze(res.u_end),
        tuple(freeze(v) for v in res.slice_end_values),
        tuple(tuple(r) for r in res.residuals),
        tuple(res.clocks),
        tuple(res.iterations_done),
    )


class TestCheckpointWriting:
    def test_fault_free_run_is_byte_identical_with_checkpointing(
        self, linear_problem, u0, tmp_path
    ):
        """Attaching a checkpointer adds zero ops: frozen bytes equal."""
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=2)
        ck = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2,
            checkpoint=tmp_path / "run.ckpt",
        )
        assert _frozen(ck) == _frozen(base)
        assert (tmp_path / "run.ckpt").exists()

    def test_final_checkpoint_covers_last_block(
        self, linear_problem, u0, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        res = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2, checkpoint=path
        )
        ckpt = RunCheckpoint.load(path)
        assert ckpt.block == _config().n_steps // 2 - 1
        assert ckpt.k == len(res.residuals[0]) - 1
        assert ckpt.p_time == 2

    def test_interval_thins_writes(self, linear_problem, u0, tmp_path):
        """interval=k writes only every k-th iteration's state."""
        counts = {}
        for interval in (1, 4):
            path = tmp_path / f"run{interval}.ckpt"
            run_pfasst(
                _config(), _specs(linear_problem), u0, p_time=2,
                checkpoint=path, checkpoint_interval=interval,
            )
            ckpt = RunCheckpoint.load(path)
            counts[interval] = ckpt.k
            assert (ckpt.k + 1) % interval == 0
        assert counts[1] == _config().iterations - 1

    def test_interval_validation(self, linear_problem, u0, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            run_pfasst(
                _config(), _specs(linear_problem), u0, p_time=2,
                checkpoint=tmp_path / "x.ckpt", checkpoint_interval=0,
            )
        with pytest.raises(ValueError, match="interval"):
            RunCheckpointer(tmp_path / "y.ckpt", p_time=2, interval=0)

    def test_wants_follows_interval(self, tmp_path):
        cp = RunCheckpointer(tmp_path / "z.ckpt", p_time=2, interval=3)
        assert [cp.wants(k) for k in range(6)] == [
            False, False, True, False, False, True
        ]


class TestRoundTrip:
    def test_save_load_round_trip(self, linear_problem, u0, tmp_path):
        path = tmp_path / "run.ckpt"
        run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2, checkpoint=path
        )
        ckpt = RunCheckpoint.load(path)
        path2 = tmp_path / "copy.ckpt"
        ckpt.save(path2)
        again = RunCheckpoint.load(path2)
        assert again.config_digest == ckpt.config_digest
        assert again.block == ckpt.block and again.k == ckpt.k
        assert np.array_equal(again.u_block, ckpt.u_block)
        assert again.residuals == ckpt.residuals
        for rank in ckpt.levels:
            for a, b in zip(again.levels[rank], ckpt.levels[rank]):
                assert a["u0_dirty"] == b["u0_dirty"]
                for name in ("U", "F", "tau", "u0"):
                    if b[name] is None:
                        assert a[name] is None
                    else:
                        assert np.array_equal(a[name], b[name])

    def test_snapshot_adopt_levels_round_trip(self, linear_problem):
        from repro.pfasst.controller import _build_levels

        levels, _ = _build_levels(_specs(linear_problem), None)
        levels[0].U = np.ones((3, 2))
        levels[0].F = np.zeros((3, 2))
        levels[0].u0 = np.array([1.0, 2.0])
        blob = snapshot_levels(levels)
        levels[0].U[...] = 7.0
        adopt_levels(levels, blob)
        assert np.array_equal(levels[0].U, np.ones((3, 2)))
        with pytest.raises(ValueError, match="level"):
            adopt_levels(levels[:1], blob)

    def test_newer_version_rejected(self, linear_problem, u0, tmp_path):
        path = tmp_path / "run.ckpt"
        run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2, checkpoint=path
        )
        ckpt = RunCheckpoint.load(path)
        ckpt.version = 99
        ckpt.save(path)
        with pytest.raises(ValueError, match="version"):
            RunCheckpoint.load(path)


class TestKillAndResume:
    def _killed_checkpoint(self, problem, u0, path, **cfg_kw):
        """Run with checkpointing and a mid-run crash under the default
        ``recovery="fail"`` policy — the simulated analogue of kill -9."""
        plan = FaultPlan(crashes=(RankCrash(rank=1, after_ops=20),))
        with pytest.raises(RankFailure):
            run_pfasst(
                _config(**cfg_kw), _specs(problem), u0, p_time=2,
                fault_plan=plan, checkpoint=path,
            )
        assert path.exists()

    def test_resume_reaches_byte_identical_state(
        self, linear_problem, u0, tmp_path
    ):
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=2)
        path = tmp_path / "killed.ckpt"
        self._killed_checkpoint(linear_problem, u0, path)
        ckpt = RunCheckpoint.load(path)
        resumed = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2,
            resume_from=path,
        )
        # the resume really did skip work
        assert (ckpt.block, ckpt.k) > (0, -1)
        # ...and still lands on the uninterrupted run's bytes
        assert np.array_equal(resumed.u_end, base.u_end)
        assert all(
            np.array_equal(a, b) for a, b in
            zip(resumed.slice_end_values, base.slice_end_values)
        )
        assert resumed.residuals == base.residuals
        assert resumed.iterations_done == base.iterations_done

    def test_resume_accepts_loaded_checkpoint_object(
        self, linear_problem, u0, tmp_path
    ):
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=2)
        path = tmp_path / "killed.ckpt"
        self._killed_checkpoint(linear_problem, u0, path)
        resumed = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2,
            resume_from=RunCheckpoint.load(path),
        )
        assert np.array_equal(resumed.u_end, base.u_end)

    def test_resume_with_residual_tol(self, linear_problem, u0, tmp_path):
        cfg_kw = dict(iterations=30, residual_tol=TOL)
        base = run_pfasst(
            _config(**cfg_kw), _specs(linear_problem), u0, p_time=2
        )
        path = tmp_path / "killed.ckpt"
        self._killed_checkpoint(linear_problem, u0, path, **cfg_kw)
        resumed = run_pfasst(
            _config(**cfg_kw), _specs(linear_problem), u0, p_time=2,
            resume_from=path,
        )
        assert np.array_equal(resumed.u_end, base.u_end)
        assert resumed.residuals == base.residuals

    def test_grid_resume_byte_identical(self, linear_problem, u0, tmp_path):
        """Checkpoint/resume on the 2x2 grid (s=0 column contributes)."""
        base = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2, p_space=2
        )
        path = tmp_path / "grid.ckpt"
        plan = FaultPlan(crashes=(RankCrash(rank=2, after_ops=40),))
        with pytest.raises(RankFailure):
            run_pfasst(
                _config(), _specs(linear_problem), u0, p_time=2, p_space=2,
                fault_plan=plan, checkpoint=path,
            )
        assert path.exists()
        resumed = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=2, p_space=2,
            resume_from=path,
        )
        assert np.array_equal(resumed.u_end, base.u_end)
        assert resumed.residuals == base.residuals


class TestResumeValidation:
    def _checkpoint(self, problem, u0, path, **kw):
        run_pfasst(_config(**kw), _specs(problem), u0, p_time=2,
                   checkpoint=path)

    def test_p_time_mismatch_rejected(self, linear_problem, u0, tmp_path):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        with pytest.raises(ValueError, match="p_time"):
            run_pfasst(_config(), _specs(linear_problem), u0, p_time=4,
                       resume_from=path)

    def test_config_digest_mismatch_rejected(
        self, linear_problem, u0, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        with pytest.raises(ValueError, match="digest"):
            run_pfasst(
                _config(iterations=9), _specs(linear_problem), u0,
                p_time=2, resume_from=path,
            )

    def test_certify_with_resume_not_implemented(
        self, linear_problem, u0, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        with pytest.raises(NotImplementedError, match="certif"):
            run_pfasst(_config(), _specs(linear_problem), u0, p_time=2,
                       resume_from=path, certify=True)


class TestCorruption:
    def _checkpoint(self, problem, u0, path):
        run_pfasst(_config(), _specs(problem), u0, p_time=2,
                   checkpoint=path)

    def test_truncated_file_reports_corruption(
        self, linear_problem, u0, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        path.write_bytes(path.read_bytes()[:8])
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            RunCheckpoint.load(path)

    def test_bit_flip_fails_crc(self, linear_problem, u0, tmp_path):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptionError, match="CRC"):
            RunCheckpoint.load(path)

    def test_wrong_magic_reports_corruption(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 32)
        with pytest.raises(CheckpointCorruptionError, match="container"):
            RunCheckpoint.load(path)

    def test_no_temp_files_left_behind(self, linear_problem, u0, tmp_path):
        path = tmp_path / "run.ckpt"
        self._checkpoint(linear_problem, u0, path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []
