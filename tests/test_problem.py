"""Tests for VortexProblem and the evaluator interface."""

import numpy as np
import pytest

from repro.vortex import (
    DirectEvaluator,
    VortexProblem,
    get_kernel,
    pack_state,
    unpack_state,
)
from repro.vortex.rhs import stretching_rhs


class TestDirectEvaluator:
    def test_counts_calls_and_time(self, small_sheet):
        ps, cfg = small_sheet
        ev = DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        ev.field(ps.positions, ps.charges)
        ev.field(ps.positions, ps.charges)
        assert ev.calls == 2
        assert ev.timer.elapsed > 0
        assert ev.mean_cost > 0

    def test_reset_stats(self, small_sheet):
        ps, cfg = small_sheet
        ev = DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        ev.field(ps.positions, ps.charges)
        ev.reset_stats()
        assert ev.calls == 0
        assert ev.timer.elapsed == 0.0

    def test_kernel_by_name(self):
        ev = DirectEvaluator("algebraic2", 0.5)
        assert ev.kernel.name == "algebraic2"

    def test_invalid_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            DirectEvaluator("algebraic6", 0.0)


class TestVortexProblem:
    def test_rhs_matches_stretching_rhs(self, small_sheet):
        ps, cfg = small_sheet
        kernel = get_kernel("algebraic6")
        prob = VortexProblem(ps.volumes, DirectEvaluator(kernel, cfg.sigma))
        u = ps.state()
        out = prob.rhs(0.0, u)
        expected = stretching_rhs(
            ps.positions, ps.vorticity, ps.volumes, kernel, cfg.sigma
        )
        assert np.allclose(out, expected)

    def test_rhs_shape_mismatch_raises(self, small_sheet):
        ps, cfg = small_sheet
        prob = VortexProblem(
            ps.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        )
        with pytest.raises(ValueError, match="particles"):
            prob.rhs(0.0, np.zeros((2, ps.n + 1, 3)))

    def test_with_evaluator_shares_volumes(self, small_sheet):
        ps, cfg = small_sheet
        kernel = get_kernel("algebraic6")
        fine = DirectEvaluator(kernel, cfg.sigma)
        coarse = DirectEvaluator(kernel, cfg.sigma)
        prob = VortexProblem(ps.volumes, fine)
        prob2 = prob.with_evaluator(coarse)
        assert prob2.evaluator is coarse
        assert prob2.volumes is prob.volumes
        assert prob2.scheme == prob.scheme

    def test_norm_is_max_abs(self, small_sheet):
        ps, cfg = small_sheet
        prob = VortexProblem(
            ps.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        )
        u = np.zeros((2, 3, 3))
        u[1, 2, 0] = -7.0
        assert prob.norm(u) == 7.0

    def test_classical_scheme_differs(self, small_sheet):
        ps, cfg = small_sheet
        kernel = get_kernel("algebraic6")
        ev = DirectEvaluator(kernel, cfg.sigma)
        p_t = VortexProblem(ps.volumes, ev, "transpose")
        p_c = VortexProblem(ps.volumes, ev, "classical")
        u = ps.state()
        rt = p_t.rhs(0.0, u)
        rc = p_c.rhs(0.0, u)
        # positions evolve identically; vorticity RHS differs
        assert np.allclose(rt[0], rc[0])
        assert not np.allclose(rt[1], rc[1])
