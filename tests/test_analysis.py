"""Tests for linear stability / convergence analysis."""

import numpy as np
import pytest

from repro.integrators import rk2_midpoint, rk3_ssp, rk4_classic, forward_euler
from repro.pfasst.analysis import (
    parareal_convergence_factor,
    parareal_error_matrix,
    rk_stability,
    sdc_stability,
)


class TestRKStability:
    def test_euler(self):
        assert rk_stability(forward_euler, -0.5) == pytest.approx(0.5)

    def test_rk4_polynomial(self):
        """RK4: R(z) = 1 + z + z^2/2 + z^3/6 + z^4/24."""
        z = -0.8 + 0.3j
        expected = 1 + z + z**2 / 2 + z**3 / 6 + z**4 / 24
        assert rk_stability(rk4_classic, z) == pytest.approx(expected)

    @pytest.mark.parametrize("tableau,order", [
        (forward_euler, 1), (rk2_midpoint, 2), (rk3_ssp, 3),
        (rk4_classic, 4),
    ])
    def test_matches_exponential_to_order(self, tableau, order):
        z = 0.01 * (1 + 1j)
        err = abs(rk_stability(tableau, z) - np.exp(z))
        assert err < 10 * abs(z) ** (order + 1)

    def test_rk4_imaginary_axis_stability(self):
        """RK4 is stable on the imaginary axis up to |y| ~ 2.83."""
        assert abs(rk_stability(rk4_classic, 2.7j)) <= 1.0
        assert abs(rk_stability(rk4_classic, 3.0j)) > 1.0

    def test_vectorised(self):
        z = np.array([-0.1, -0.5 + 0.2j])
        out = rk_stability(rk2_midpoint, z)
        assert out.shape == (2,)


class TestSDCStability:
    @pytest.mark.parametrize("sweeps", [1, 2, 3, 4])
    def test_matches_exponential_to_sweep_order(self, sweeps):
        z = 0.05 * (1 - 0.5j)
        r = sdc_stability(3, sweeps, z)
        err = abs(r - np.exp(z))
        assert err < 50 * abs(z) ** (sweeps + 1)

    def test_one_sweep_is_forward_euler_like_order(self):
        """One sweep of the first-order corrector is first order."""
        errs = []
        for z in (0.2, 0.1):
            errs.append(abs(sdc_stability(3, 1, z) - np.exp(z)))
        assert errs[0] / errs[1] == pytest.approx(4.0, rel=0.5)  # O(z^2) err

    def test_converged_sweeps_give_collocation(self):
        """Many sweeps converge to the exact collocation stability value
        ``[(I - z Q)^{-1} 1]_M`` (a Pade-like rational approximation)."""
        from repro.sdc import make_rule

        z = -0.5
        r = sdc_stability(3, 40, z)
        rule = make_rule(3)
        u = np.linalg.solve(np.eye(3) - z * rule.Q, np.ones(3))
        assert abs(r - u[-1]) < 1e-13
        # and the collocation value itself is 4th-order close to exp(z)
        assert abs(u[-1] - np.exp(z)) < 1e-4

    def test_matches_time_stepper(self, scalar_problem):
        """The matrix form agrees with the actual sweeper on u' = z u."""
        from repro.sdc import SDCStepper
        from repro.vortex.problem import ODEProblem

        z = -0.7

        class Dahl(ODEProblem):
            def rhs(self, t, u):
                return z * u

        stepper = SDCStepper(Dahl(), num_nodes=3, sweeps=3)
        u = stepper.run(np.array([1.0]), 0.0, 1.0, 1.0)
        r = sdc_stability(3, 3, z)
        assert u[0] == pytest.approx(np.real(r), abs=1e-12)

    def test_explicit_sdc_stability_limited(self):
        """Explicit sweeps are conditionally stable: big negative z
        amplifies."""
        assert abs(sdc_stability(3, 4, -20.0)) > 1.0
        assert abs(sdc_stability(3, 4, -1.0)) < 1.0


class TestPararealFactor:
    def test_identical_propagators_converge_instantly(self):
        e = parareal_error_matrix(0.9, 0.9, 6)
        assert np.allclose(e, 0.0)
        assert parareal_convergence_factor(0.9, 0.9, 6) == 0.0

    def test_factor_below_one_for_good_coarse(self):
        r_f = np.exp(-0.5)
        r_g = 1.0 / (1.0 + 0.5)  # backward Euler
        factor = parareal_convergence_factor(r_f, r_g, 8)
        assert 0 < factor < 1

    def test_factor_grows_with_coarse_error(self):
        r_f = np.exp(-0.5)
        good = parareal_convergence_factor(r_f, np.exp(-0.45), 8)
        bad = parareal_convergence_factor(r_f, np.exp(-0.1), 8)
        assert bad > good

    def test_nilpotent_after_n_iterations(self):
        """Parareal is exact after N iterations: E^N = 0."""
        e = parareal_error_matrix(0.8, 0.5, 5)
        assert np.allclose(np.linalg.matrix_power(e, 5), 0.0, atol=1e-12)

    def test_strictly_lower_triangular(self):
        e = parareal_error_matrix(0.8, 0.5, 5)
        assert np.allclose(np.triu(e), 0.0)

    def test_invalid_slices(self):
        with pytest.raises(ValueError, match="n_slices"):
            parareal_error_matrix(0.5, 0.4, 0)

    def test_iterated_factor_decreases(self):
        r_f, r_g = np.exp(-0.3), 1 / 1.3
        f1 = parareal_convergence_factor(r_f, r_g, 10, iterations=1)
        f2 = parareal_convergence_factor(r_f, r_g, 10, iterations=2)
        assert f2 < f1

    def test_factor_predicts_measured_parareal_convergence(self):
        """The linear theory matches the actual algorithm on u' = z u."""
        from repro.pfasst.parareal import PararealConfig, parareal_serial

        z = -1.0
        dt = 0.25
        n = 8

        def fine(t, dt_, u):
            # exact propagator
            return u * np.exp(z * dt_)

        def coarse(t, dt_, u):
            return u / (1.0 - z * dt_)  # backward Euler

        cfg = PararealConfig(0.0, n * dt, n, 3)
        res = parareal_serial(cfg, coarse, fine, np.array([1.0]))
        measured_ratio = res.increments[2] / res.increments[1]
        r_f, r_g = np.exp(z * dt), 1 / (1 - z * dt)
        e = parareal_error_matrix(r_f, r_g, n)
        rho = np.max(np.abs(np.linalg.eigvals(e)))
        # nilpotent matrix: compare transient norms instead of rho
        f2 = parareal_convergence_factor(r_f, r_g, n, 2)
        f1 = parareal_convergence_factor(r_f, r_g, n, 1)
        assert measured_ratio < 1.0
        assert f2 / f1 < 1.0
