"""Tests for the ``repro-trace`` CLI (repro.obs.cli) and its forwarding
entry point ``python -m repro trace``."""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer, save_trace
from repro.obs.cli import main as trace_main
from repro.obs.gantt import span_family


def _sample_tracer() -> Tracer:
    """A tiny hand-built two-rank schedule."""
    tracer = Tracer(meta={"sample": "cli"})
    tracer.vspan("predict:0", 0.0, 1.0, track="rank0", cat="phase")
    tracer.vspan("predict:0", 1.0, 2.0, track="rank1", cat="phase")
    tracer.vspan("sweep:L0:k0", 1.0, 3.0, track="rank0", cat="phase")
    tracer.vspan("sweep:L0:k0", 2.0, 4.0, track="rank1", cat="phase")
    tracer.vspan("wait:recv", 0.0, 1.0, track="rank1", cat="comm")
    tracer.instant("send", t=1.0, track="rank0", cat="comm",
                   args={"dest": 1})
    return tracer


@pytest.fixture
def trace_file(tmp_path):
    metrics = MetricsRegistry()
    metrics.counter("mpi.messages").inc(1)
    metrics.histogram("h").observe(2.0)
    return save_trace(_sample_tracer(), tmp_path / "trace.json",
                      metrics=metrics)


class TestSpanFamily:
    @pytest.mark.parametrize("name,family", [
        ("sweep:L0:k2", "sweep:L0"),
        ("predict:3", "predict"),
        ("wait:recv", "wait:recv"),
        ("tree_build", "tree_build"),
        ("restrict:L0:k1", "restrict:L0"),
    ])
    def test_counter_tails_are_stripped(self, name, family):
        assert span_family(name) == family


class TestSummarize:
    def test_reports_tracks_families_and_metrics(self, trace_file, capsys):
        assert trace_main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "spans: 5 (5 virtual, 0 wall)" in out
        assert "virtual makespan: 4s" in out
        assert "sample=cli" in out
        assert "rank0" in out and "rank1" in out
        assert "sweep:L0" in out
        assert "mpi.messages" in out

    def test_summarize_rejects_chrome_json(self, tmp_path, capsys):
        bad = tmp_path / "chrome.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="not a repro-trace file"):
            trace_main(["summarize", str(bad)])


class TestExport:
    def test_chrome(self, trace_file, tmp_path, capsys):
        out = tmp_path / "out.chrome.json"
        assert trace_main(["export", str(trace_file), "-o", str(out),
                           "--format", "chrome"]) == 0
        loaded = json.loads(out.read_text())
        assert any(ev.get("ph") == "X" for ev in loaded["traceEvents"])

    def test_csv(self, trace_file, tmp_path):
        out = tmp_path / "spans.csv"
        assert trace_main(["export", str(trace_file), "-o", str(out),
                           "--format", "csv"]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("track,name,")
        assert len(lines) == 6  # header + 5 spans

    def test_metrics_formats(self, trace_file, tmp_path):
        as_json = tmp_path / "m.json"
        as_csv = tmp_path / "m.csv"
        assert trace_main(["export", str(trace_file), "-o", str(as_json),
                           "--format", "metrics-json"]) == 0
        assert json.loads(as_json.read_text())["counters"][
            "mpi.messages"] == 1
        assert trace_main(["export", str(trace_file), "-o", str(as_csv),
                           "--format", "metrics-csv"]) == 0
        assert "counter,mpi.messages,value,1" in as_csv.read_text()


class TestGantt:
    def test_ascii_rows_per_rank(self, trace_file, capsys):
        assert trace_main(["gantt", str(trace_file), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "rank0 |" in out and "rank1 |" in out
        assert "F = sweep:L0" in out  # legend

    def test_svg_output(self, trace_file, tmp_path, capsys):
        svg = tmp_path / "sched.svg"
        assert trace_main(["gantt", str(trace_file), "--svg", str(svg),
                           "--cats", "phase,comm"]) == 0
        text = svg.read_text()
        assert text.startswith("<svg")
        assert "sweep:L0:k0" in text  # hover title survives


class TestDiff:
    def test_self_diff_is_flat(self, trace_file, capsys):
        assert trace_main(["diff", str(trace_file),
                           str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "virtual makespan" in out
        assert "+0.0%" in out
        assert "new" not in out.split()


class TestReproCliForwarding:
    def test_python_m_repro_trace_forwards(self, trace_file, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["trace", "summarize", str(trace_file)]) == 0
        assert "virtual makespan" in capsys.readouterr().out


class TestSvgEscaping:
    """Regression: span/track names with XML metacharacters used to be
    interpolated raw into the SVG, producing unparseable documents."""

    HOSTILE = 'sweep<script>&"x"</script>'

    def _hostile_tracer(self):
        tracer = Tracer()
        tracer.vspan(self.HOSTILE, 0.0, 1.0, track='rank<0>&"',
                     cat="phase")
        tracer.vspan("wait:recv", 0.5, 1.0, track='rank<0>&"',
                     cat="comm")
        return tracer

    def test_hostile_names_parse_as_xml(self):
        import xml.etree.ElementTree as ET

        from repro.obs.gantt import render_svg

        svg = render_svg(self._hostile_tracer().spans)
        root = ET.fromstring(svg)  # raises ParseError on raw < & "
        text = "".join(root.itertext())
        # the hostile names survive escaping verbatim
        assert self.HOSTILE in text
        assert 'rank<0>&"' in text

    def test_legend_families_escaped(self):
        import xml.etree.ElementTree as ET

        from repro.obs.gantt import render_svg, span_family

        svg = render_svg(self._hostile_tracer().spans)
        root = ET.fromstring(svg)
        fam = span_family(self.HOSTILE)
        assert fam in "".join(root.itertext())
