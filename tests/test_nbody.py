"""Tests for the direct Coulomb/gravity solvers."""

import numpy as np
import pytest

from repro.nbody import coulomb_direct, gravity_direct
from repro.vortex.kernels import SingularKernel, get_kernel


class TestCoulombDirect:
    def test_single_charge_potential(self):
        src = np.array([[0.0, 0.0, 0.0]])
        q = np.array([4 * np.pi])
        tgt = np.array([[2.0, 0.0, 0.0]])
        phi, e = coulomb_direct(tgt, src, q)
        assert phi[0] == pytest.approx(0.5)
        # E = q r / (4 pi r^3), repulsive for positive charge
        assert np.allclose(e[0], [np.pi / 4 / np.pi, 0, 0])

    def test_field_points_away_from_positive_charge(self, rng):
        src = np.zeros((1, 3))
        q = np.array([1.0])
        tgt = rng.normal(size=(10, 3))
        _, e = coulomb_direct(tgt, src, q)
        dots = np.einsum("ni,ni->n", e, tgt)
        assert np.all(dots > 0)

    def test_self_interaction_excluded(self, rng):
        pos = rng.normal(size=(5, 3))
        q = rng.normal(size=5)
        phi, e = coulomb_direct(pos, pos, q)
        assert np.all(np.isfinite(phi))
        assert np.all(np.isfinite(e))

    def test_superposition(self, rng):
        src = rng.normal(size=(10, 3))
        q = rng.normal(size=10)
        tgt = rng.normal(size=(4, 3)) + 5
        phi, e = coulomb_direct(tgt, src, q)
        phi_a, e_a = coulomb_direct(tgt, src[:5], q[:5])
        phi_b, e_b = coulomb_direct(tgt, src[5:], q[5:])
        assert np.allclose(phi, phi_a + phi_b)
        assert np.allclose(e, e_a + e_b)

    def test_regularized_kernel_finite_at_origin(self):
        k = get_kernel("algebraic6")
        src = np.zeros((1, 3))
        q = np.array([1.0])
        phi, e = coulomb_direct(src, src, q, kernel=k, sigma=0.5,
                                exclude_zero=False)
        assert np.isfinite(phi[0])
        assert phi[0] > 0

    def test_chunking_invariance(self, rng):
        src = rng.normal(size=(40, 3))
        q = rng.normal(size=40)
        tgt = rng.normal(size=(23, 3))
        a = coulomb_direct(tgt, src, q, chunk=5)
        b = coulomb_direct(tgt, src, q, chunk=1000)
        assert np.allclose(a[0], b[0])
        assert np.allclose(a[1], b[1])

    def test_empty(self):
        phi, e = coulomb_direct(np.zeros((0, 3)), np.zeros((2, 3)),
                                np.ones(2))
        assert phi.shape == (0,)


class TestGravityDirect:
    def test_two_body_attraction(self):
        src = np.array([[0.0, 0.0, 0.0]])
        m = np.array([1.0])
        tgt = np.array([[1.0, 0.0, 0.0]])
        phi, a = gravity_direct(tgt, src, m, g_constant=1.0)
        assert phi[0] == pytest.approx(-1.0)  # -G m / r
        assert a[0, 0] == pytest.approx(-1.0)  # toward the source
        assert np.allclose(a[0, 1:], 0.0)

    def test_inverse_square_law(self):
        src = np.zeros((1, 3))
        m = np.array([1.0])
        a1 = gravity_direct(np.array([[1.0, 0, 0]]), src, m)[1][0, 0]
        a2 = gravity_direct(np.array([[2.0, 0, 0]]), src, m)[1][0, 0]
        assert a1 / a2 == pytest.approx(4.0)

    def test_softening_caps_force(self):
        src = np.zeros((1, 3))
        m = np.array([1.0])
        tgt = np.array([[1e-6, 0, 0]])
        _, a_soft = gravity_direct(tgt, src, m, softening=0.1)
        assert np.all(np.isfinite(a_soft))
        assert np.abs(a_soft[0, 0]) < 1.0 / 0.1**2 * 1.01

    def test_circular_orbit_velocity(self):
        """v^2 = G M / r for a circular orbit: integrate one step and
        check the acceleration is centripetal with the right magnitude."""
        src = np.zeros((1, 3))
        m = np.array([4.0])
        r = 2.0
        tgt = np.array([[r, 0.0, 0.0]])
        _, a = gravity_direct(tgt, src, m, g_constant=1.0)
        assert np.linalg.norm(a[0]) == pytest.approx(4.0 / r**2)
        assert a[0, 0] < 0  # pointing inward
