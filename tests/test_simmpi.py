"""Tests for the deterministic simulated MPI."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    CommCostModel,
    DeadlockError,
    Scheduler,
    allreduce,
    barrier,
    bcast,
    gather,
    payload_bytes,
    reduce,
    scatter,
)


class TestPointToPoint:
    def test_simple_message(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", {"x": 42})
            else:
                msg = yield comm.recv(0, "t")
                return msg["x"]

        assert Scheduler(2, measure_compute=False).run(prog) == [None, 42]

    def test_fifo_ordering_same_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield comm.send(1, "seq", i)
            else:
                got = []
                for _ in range(5):
                    got.append((yield comm.recv(0, "seq")))
                return got

        res = Scheduler(2, measure_compute=False).run(prog)
        assert res[1] == [0, 1, 2, 3, 4]

    def test_out_of_order_tags(self):
        """Receives by tag, independent of send order."""
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "a", "first")
                yield comm.send(1, "b", "second")
            else:
                b = yield comm.recv(0, "b")
                a = yield comm.recv(0, "a")
                return (a, b)

        res = Scheduler(2, measure_compute=False).run(prog)
        assert res[1] == ("first", "second")

    def test_deadlock_detection(self):
        def prog(comm):
            _ = yield comm.recv((comm.rank + 1) % comm.size, "never")

        with pytest.raises(DeadlockError, match="blocked ranks"):
            Scheduler(2, measure_compute=False).run(prog)

    def test_self_send_rejected(self):
        def prog(comm):
            yield comm.send(comm.rank, "t", 1)

        with pytest.raises(ValueError, match="self-sends"):
            Scheduler(1, measure_compute=False).run(prog)

    def test_out_of_range_dest(self):
        def prog(comm):
            yield comm.send(99, "t", 1)

        with pytest.raises(ValueError, match="out of range"):
            Scheduler(2, measure_compute=False).run(prog)

    def test_non_generator_program_rejected(self):
        with pytest.raises(TypeError, match="generator"):
            Scheduler(1).run(lambda comm: 42)

    def test_return_values_by_rank(self):
        def prog(comm):
            return comm.rank * 10
            yield  # pragma: no cover

        assert Scheduler(3, measure_compute=False).run(prog) == [0, 10, 20]


class TestVirtualTime:
    def test_work_advances_clock(self):
        def prog(comm):
            yield comm.work(2.5)

        s = Scheduler(2, measure_compute=False)
        s.run(prog)
        assert s.clocks == [2.5, 2.5]

    def test_pipeline_staircase(self):
        """Serialised pipeline: rank n finishes at ~ (n+1) units."""
        def prog(comm):
            if comm.rank > 0:
                yield comm.recv(comm.rank - 1, "x")
            yield comm.work(1.0)
            if comm.rank < comm.size - 1:
                yield comm.send(comm.rank + 1, "x", 0)

        s = Scheduler(4, measure_compute=False, cost_model=CommCostModel(
            latency=0.0, bandwidth=1e30, send_overhead=0.0))
        s.run(prog)
        assert s.clocks == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_recv_waits_for_arrival_time(self):
        model = CommCostModel(latency=5.0, bandwidth=1e30, send_overhead=0.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "x", 1)
            else:
                _ = yield comm.recv(0, "x")

        s = Scheduler(2, cost_model=model, measure_compute=False)
        s.run(prog)
        assert s.clocks[1] == pytest.approx(5.0)
        assert s.clocks[0] == pytest.approx(0.0)

    def test_eager_send_does_not_block_sender(self):
        model = CommCostModel(latency=100.0, bandwidth=1e30, send_overhead=0.1)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "x", 1)
                yield comm.work(1.0)
            else:
                _ = yield comm.recv(0, "x")

        s = Scheduler(2, cost_model=model, measure_compute=False)
        s.run(prog)
        assert s.clocks[0] == pytest.approx(1.1)

    def test_bandwidth_term(self):
        model = CommCostModel(latency=0.0, bandwidth=100.0, send_overhead=0.0)
        payload = np.zeros(125, dtype=np.float64)  # 1000 bytes -> 10 s

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "x", payload)
            else:
                _ = yield comm.recv(0, "x")

        s = Scheduler(2, cost_model=model, measure_compute=False)
        s.run(prog)
        assert s.clocks[1] == pytest.approx(10.0)

    def test_measured_compute_adds_time(self):
        def prog(comm):
            total = 0.0
            for i in range(200_000):
                total += i * 0.5
            yield comm.work(0.0)
            return total

        s = Scheduler(1, measure_compute=True)
        s.run(prog)
        assert s.clocks[0] > 0.0

    def test_message_stats(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "x", np.zeros(10))
            else:
                _ = yield comm.recv(0, "x")

        s = Scheduler(2, measure_compute=False)
        s.run(prog)
        assert s.stats_messages == 1
        assert s.stats_bytes == 80

    def test_negative_work_rejected(self):
        def prog(comm):
            yield comm.work(-1.0)

        with pytest.raises(ValueError, match="work seconds"):
            Scheduler(1, measure_compute=False).run(prog)


class TestPayloadBytes:
    def test_ndarray(self):
        assert payload_bytes(np.zeros((2, 3))) == 48

    def test_scalars(self):
        assert payload_bytes(1) == 8
        assert payload_bytes(2.5) == 8
        assert payload_bytes(None) == 8

    def test_bytes(self):
        assert payload_bytes(b"abcd") == 4

    def test_pickled_object(self):
        assert payload_bytes({"a": 1}) > 8


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7, 8])
class TestCollectives:
    def test_bcast(self, n_ranks):
        def prog(comm):
            value = "payload" if comm.rank == 0 else None
            return (yield from bcast(comm, value, root=0))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res == ["payload"] * n_ranks

    def test_bcast_nonzero_root(self, n_ranks):
        root = n_ranks - 1

        def prog(comm):
            value = 123 if comm.rank == root else None
            return (yield from bcast(comm, value, root=root))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res == [123] * n_ranks

    def test_reduce_sum(self, n_ranks):
        def prog(comm):
            return (yield from reduce(comm, comm.rank + 1, op=operator.add))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res[0] == n_ranks * (n_ranks + 1) // 2
        assert all(r is None for r in res[1:])

    def test_allreduce_max(self, n_ranks):
        def prog(comm):
            return (yield from allreduce(comm, comm.rank, op=max))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res == [n_ranks - 1] * n_ranks

    def test_gather(self, n_ranks):
        def prog(comm):
            return (yield from gather(comm, comm.rank**2, root=0))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res[0] == [r**2 for r in range(n_ranks)]

    def test_scatter(self, n_ranks):
        def prog(comm):
            values = list(range(100, 100 + comm.size)) if comm.rank == 0 else None
            return (yield from scatter(comm, values, root=0))

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res == [100 + r for r in range(n_ranks)]

    def test_barrier_completes(self, n_ranks):
        def prog(comm):
            yield from barrier(comm)
            return "done"

        res = Scheduler(n_ranks, measure_compute=False).run(prog)
        assert res == ["done"] * n_ranks


def test_scatter_wrong_length():
    def prog(comm):
        return (yield from scatter(comm, [1], root=0))

    with pytest.raises(ValueError, match="exactly"):
        Scheduler(2, measure_compute=False).run(prog)


@settings(max_examples=25, deadline=None)
@given(
    n_ranks=st.integers(1, 9),
    values=st.lists(st.integers(-100, 100), min_size=9, max_size=9),
)
def test_allreduce_equals_serial_sum(n_ranks, values):
    def prog(comm):
        return (yield from allreduce(comm, values[comm.rank]))

    res = Scheduler(n_ranks, measure_compute=False).run(prog)
    assert res == [sum(values[:n_ranks])] * n_ranks


class TestCostModelValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            CommCostModel(latency=-1.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            CommCostModel(bandwidth=0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="send_overhead"):
            CommCostModel(send_overhead=-0.1)

    def test_nonpositive_compute_scale_rejected(self):
        with pytest.raises(ValueError, match="compute_scale"):
            CommCostModel(compute_scale=0.0)


def test_unpicklable_payload_warns_with_type_name():
    with pytest.warns(UserWarning, match="unpicklable"):
        size = payload_bytes(lambda: None)
    assert size == 64
    with pytest.warns(UserWarning, match="function"):
        payload_bytes(lambda: None)


class TestSchedulerReuse:
    """A Scheduler instance must be reusable: per-run state resets."""

    def _prog(self, comm):
        if comm.rank == 0:
            yield comm.send(1, "t", np.arange(4.0))
            yield comm.annotate("sent")
        else:
            v = yield comm.recv(0, "t")
            return float(v.sum())

    def test_second_run_matches_first(self):
        model = CommCostModel(latency=0.5, bandwidth=1e6, send_overhead=0.1)
        s = Scheduler(2, cost_model=model, measure_compute=False)
        first = (
            s.run(self._prog), tuple(s.clocks), s.stats_messages,
            s.stats_bytes, len(s.trace),
        )
        second = (
            s.run(self._prog), tuple(s.clocks), s.stats_messages,
            s.stats_bytes, len(s.trace),
        )
        assert first == second

    def test_stats_do_not_accumulate_across_runs(self):
        s = Scheduler(2, measure_compute=False)
        s.run(self._prog)
        msgs = s.stats_messages
        s.run(self._prog)
        assert s.stats_messages == msgs  # not doubled
