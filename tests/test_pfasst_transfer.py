"""Tests for PFASST transfer operators."""

import numpy as np
import pytest

from repro.pfasst.transfer import IdentitySpatialTransfer, TimeSpaceTransfer
from repro.sdc.quadrature import make_rule


@pytest.fixture
def transfer():
    return TimeSpaceTransfer(make_rule(3, "lobatto"), make_rule(2, "lobatto"))


class TestTimeMatrices:
    def test_restriction_is_injection_for_nested_nodes(self, transfer):
        """2-pt Lobatto {0,1} is a subset of 3-pt {0,.5,1}: injection."""
        R = transfer.R_time
        expected = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        assert np.allclose(R, expected, atol=1e-13)

    def test_interpolation_exact_for_linear(self, transfer):
        coarse_vals = np.array([1.0, 3.0])  # linear in t
        fine = transfer.P_time @ coarse_vals
        assert np.allclose(fine, [1.0, 2.0, 3.0])

    def test_restriction_exact_for_quadratic(self, transfer):
        tau_f = make_rule(3).nodes
        vals = 2 * tau_f**2 - tau_f + 1
        coarse = transfer.R_time @ vals
        tau_c = make_rule(2).nodes
        assert np.allclose(coarse, 2 * tau_c**2 - tau_c + 1)

    def test_five_to_three_nodes(self):
        tr = TimeSpaceTransfer(make_rule(5), make_rule(3))
        tau_f, tau_c = make_rule(5).nodes, make_rule(3).nodes
        vals = tau_f**4 - 2 * tau_f**2
        assert np.allclose(tr.R_time @ vals, tau_c**4 - 2 * tau_c**2)

    def test_restrict_then_interpolate_roundtrip_for_coarse_poly(self, transfer):
        """P R is identity on functions representable at the coarse level."""
        tau_f = make_rule(3).nodes
        vals = 3 * tau_f + 2  # linear: exactly representable on 2 nodes
        roundtrip = transfer.P_time @ (transfer.R_time @ vals)
        assert np.allclose(roundtrip, vals)


class TestNodeArrays:
    def test_restrict_nodes_shape(self, transfer, rng):
        vals = rng.normal(size=(3, 4, 3))
        out = transfer.restrict_nodes(vals)
        assert out.shape == (2, 4, 3)

    def test_interpolate_nodes_shape(self, transfer, rng):
        vals = rng.normal(size=(2, 4, 3))
        assert transfer.interpolate_nodes(vals).shape == (3, 4, 3)

    def test_identity_spatial_passthrough(self, rng):
        sp = IdentitySpatialTransfer()
        u = rng.normal(size=(5, 3))
        assert sp.restrict(u) is u
        assert sp.interpolate(u) is u

    def test_custom_spatial_transfer_applied(self, rng):
        class Halver:
            def restrict(self, u):
                return 0.5 * u

            def interpolate(self, u):
                return 2.0 * u

        tr = TimeSpaceTransfer(make_rule(3), make_rule(2), spatial=Halver())
        u = rng.normal(size=(3, 4))
        restricted = tr.restrict_nodes(u)
        # time injection then halving
        assert np.allclose(restricted[0], 0.5 * u[0])
        assert np.allclose(restricted[1], 0.5 * u[2])

    def test_state_transfer(self, transfer, rng):
        u = rng.normal(size=(7, 3))
        assert np.allclose(transfer.restrict_state(u), u)
        assert np.allclose(transfer.interpolate_state(u), u)


class TestFamilyPairing:
    """Level pairs must agree on whether node 0 is the left endpoint."""

    def test_mixed_left_endpoint_families_rejected(self):
        with pytest.raises(ValueError, match="unsupported level pairing"):
            TimeSpaceTransfer(make_rule(3, "lobatto"),
                              make_rule(2, "radau-right"))

    def test_error_names_both_families(self):
        with pytest.raises(ValueError, match="radau-right.*lobatto"):
            TimeSpaceTransfer(make_rule(3, "radau-right"),
                              make_rule(2, "lobatto"))

    def test_matching_non_left_families_accepted(self):
        tr = TimeSpaceTransfer(make_rule(3, "radau-right"),
                               make_rule(2, "radau-right"))
        assert tr.R_time.shape == (2, 3)

    def test_legendre_radau_pair_accepted(self):
        """Both exclude the left endpoint — a legal (if unusual) pairing."""
        tr = TimeSpaceTransfer(make_rule(3, "legendre"),
                               make_rule(2, "radau-right"))
        assert tr.P_time.shape == (3, 2)
