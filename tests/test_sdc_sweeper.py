"""Tests for the explicit SDC sweeper."""

import numpy as np
import pytest

from repro.sdc.quadrature import make_rule
from repro.sdc.sweeper import ExplicitSDCSweeper


class TestConstruction:
    def test_non_left_family_accepted(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3, "radau-right"))
        assert sw.num_nodes == 3
        assert sw.needs_u0  # node 0 is a genuine unknown

    def test_non_left_sweep_requires_u0(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3, "radau-right"))
        U, F = sw.initialize(0.0, 0.1, np.array([1.0]))
        with pytest.raises(ValueError, match="u0"):
            sw.sweep(0.0, 0.1, U, F)

    def test_lobatto_does_not_need_u0(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        assert not sw.needs_u0

    def test_lobatto_accepted(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        assert sw.num_nodes == 3

    def test_node_times(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        assert np.allclose(sw.node_times(1.0, 0.5), [1.0, 1.25, 1.5])


class TestInitialize:
    def test_spread_copies_u0(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        u0 = np.array([2.0])
        U, F = sw.initialize(0.0, 0.1, u0, "spread")
        assert np.allclose(U, 2.0)
        assert np.allclose(F, F[0])

    def test_spread_costs_one_eval(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        scalar_problem.evals = 0
        sw.initialize(0.0, 0.1, np.array([1.0]), "spread")
        assert scalar_problem.evals == 1

    def test_euler_initialization_marches(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        u0 = np.array([1.0])
        U, F = sw.initialize(0.0, 0.2, u0, "euler")
        # node 1 = u0 + dt/2 * f(0, u0)
        expected = u0 + 0.1 * scalar_problem.rhs(0.0, u0)
        assert np.allclose(U[1], expected)

    def test_unknown_strategy(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        with pytest.raises(ValueError, match="strategy"):
            sw.initialize(0.0, 0.1, np.array([1.0]), "magic")


class TestSweepFixedPoint:
    def test_collocation_solution_is_fixed_point(self, linear_problem):
        """Once converged, further sweeps do not change the solution."""
        sw = ExplicitSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.0])
        U, F = sw.initialize(0.0, 0.2, u0)
        for _ in range(60):
            U, F = sw.sweep(0.0, 0.2, U, F)
        U2, F2 = sw.sweep(0.0, 0.2, U, F)
        assert np.allclose(U2, U, atol=1e-12)

    def test_residual_vanishes_at_fixed_point(self, linear_problem):
        sw = ExplicitSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.0])
        U, F = sw.initialize(0.0, 0.2, u0)
        for _ in range(60):
            U, F = sw.sweep(0.0, 0.2, U, F)
        assert sw.residual(0.2, U, F, u0) < 1e-12

    def test_collocation_solution_matches_exact_linear(self, linear_problem):
        """3-pt Lobatto collocation is 4th order; tiny dt => near exact."""
        sw = ExplicitSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.5])
        dt = 0.05
        U, F = sw.initialize(0.0, dt, u0)
        for _ in range(40):
            U, F = sw.sweep(0.0, dt, U, F)
        exact = linear_problem.exact(dt, u0)
        assert np.allclose(sw.end_value(dt, U, F, u0), exact, atol=1e-9)

    def test_residual_decreases_monotonically_initially(self, linear_problem):
        sw = ExplicitSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.0])
        dt = 0.2
        U, F = sw.initialize(0.0, dt, u0)
        residuals = []
        for _ in range(6):
            U, F = sw.sweep(0.0, dt, U, F)
            residuals.append(sw.residual(dt, U, F, u0))
        assert residuals[-1] < residuals[0] * 1e-3


class TestSweepMechanics:
    def test_sweep_does_not_mutate_inputs(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        U, F = sw.initialize(0.0, 0.1, np.array([1.0]))
        U_copy, F_copy = U.copy(), F.copy()
        sw.sweep(0.0, 0.1, U, F)
        assert np.array_equal(U, U_copy)
        assert np.array_equal(F, F_copy)

    def test_new_u0_is_adopted(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        U, F = sw.initialize(0.0, 0.1, np.array([1.0]))
        new_u0 = np.array([3.0])
        U2, _ = sw.sweep(0.0, 0.1, U, F, u0=new_u0)
        assert U2[0] == pytest.approx(3.0)

    def test_u0_none_reuses_node0(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        U, F = sw.initialize(0.0, 0.1, np.array([1.0]))
        scalar_problem.evals = 0
        sw.sweep(0.0, 0.1, U, F)
        # only M = 2 new evaluations (nodes 1, 2), node 0 reused
        assert scalar_problem.evals == 2

    def test_tau_shifts_the_fixed_point(self, linear_problem):
        """A FAS tau enters the equation: the fixed point solves
        U = u0 + dt QF + cumsum(tau)."""
        rule = make_rule(3)
        sw = ExplicitSDCSweeper(linear_problem, rule)
        u0 = np.array([1.0, 0.0])
        dt = 0.1
        tau = np.zeros((3, 2))
        tau[1] = [0.01, -0.02]
        tau[2] = [0.005, 0.0]
        U, F = sw.initialize(0.0, dt, u0)
        for _ in range(60):
            U, F = sw.sweep(0.0, dt, U, F, tau=tau)
        assert sw.residual(dt, U, F, u0, tau=tau) < 1e-12
        # without tau in the residual the equation does NOT hold
        assert sw.residual(dt, U, F, u0) > 1e-3

    def test_end_value_right_endpoint(self, scalar_problem):
        sw = ExplicitSDCSweeper(scalar_problem, make_rule(3))
        U, F = sw.initialize(0.0, 0.1, np.array([1.0]))
        assert sw.end_value(0.1, U, F, U[0]) == pytest.approx(U[-1])


class TestOrderPerSweep:
    @pytest.mark.parametrize("sweeps,expected", [(1, 1), (2, 2), (3, 3)])
    def test_order_increases_with_sweeps(self, linear_problem, sweeps, expected):
        sw = ExplicitSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.5])
        t_end = 0.8
        errors = []
        for n_steps in (8, 16):
            dt = t_end / n_steps
            u = u0.copy()
            for k in range(n_steps):
                U, F = sw.initialize(k * dt, dt, u)
                for _ in range(sweeps):
                    U, F = sw.sweep(k * dt, dt, U, F)
                u = sw.end_value(dt, U, F, u)
            errors.append(np.max(np.abs(u - linear_problem.exact(t_end, u0))))
        rate = np.log2(errors[0] / errors[1])
        assert rate > expected - 0.5
