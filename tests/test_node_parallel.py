"""Tests for the third parallel dimension: P_T x P_S x P_N runs.

The node dimension shards collocation-node RHS evaluations across a
per-node sub-communicator and ring-allgathers the rows back, so every
rank ends each round with the full F array bit-for-bit equal to the
serial evaluation — node parallelism must never change numerics, only
the cost model.
"""

import numpy as np
import pytest

from repro.parallel.chaos import ChaosODE
from repro.parallel.executor import ProcessExecutor, SerialExecutor
from repro.parallel.faults import FaultPlan, RankCrash
from repro.parallel.topology import SpaceTimeGrid, SpaceTimeNodeGrid
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec
from repro.tree.parallel import SpaceParallelTreeEvaluator
from repro.vortex.particles import pack_state
from repro.vortex.problem import VortexProblem


class TestSpaceTimeNodeGrid:
    def test_world_size(self):
        assert SpaceTimeNodeGrid(3, 2, 4).world_size == 24

    def test_coords_world_rank_roundtrip(self):
        grid = SpaceTimeNodeGrid(2, 3, 2)
        for r in range(grid.world_size):
            t, s, n = grid.coords(r)
            assert grid.world_rank(t, s, n) == r

    def test_node_dimension_is_innermost(self):
        """Node ranks of one (t, s) cell are contiguous world ranks, so
        the node ring is the tightest loop — mirroring how node sweeps
        nest inside space exchanges inside the time ring."""
        grid = SpaceTimeNodeGrid(2, 2, 3)
        assert grid.node_comm(0) == [0, 1, 2]
        assert grid.node_comm(4) == [3, 4, 5]

    def test_comms_partition_the_world(self):
        grid = SpaceTimeNodeGrid(2, 2, 2)
        for comm_of in (grid.space_comm, grid.time_comm, grid.node_comm):
            seen = sorted(
                r for lead in range(grid.world_size)
                for r in comm_of(lead) if lead in comm_of(lead)
            )
            # every rank appears in exactly one comm of each flavour,
            # and that comm contains it
            assert sorted(set(seen)) == list(range(grid.world_size))

    def test_comm_members_share_the_other_coords(self):
        grid = SpaceTimeNodeGrid(2, 3, 2)
        r = grid.world_rank(1, 2, 1)
        t, s, n = grid.coords(r)
        assert all(grid.coords(m)[0] == t and grid.coords(m)[2] == n
                   for m in grid.space_comm(r))
        assert all(grid.coords(m)[1] == s and grid.coords(m)[2] == n
                   for m in grid.time_comm(r))
        assert all(grid.coords(m)[0] == t and grid.coords(m)[1] == s
                   for m in grid.node_comm(r))

    def test_time_row_collects_all_space_and_node_ranks(self):
        grid = SpaceTimeNodeGrid(2, 2, 2)
        row = grid.time_row(1)
        assert row == [r for r in range(8) if grid.coords(r)[0] == 1]
        assert len(row) == 4

    def test_p_nodes_one_matches_2d_numbering(self):
        g2 = SpaceTimeGrid(3, 2)
        g3 = SpaceTimeNodeGrid(3, 2, 1)
        for r in range(g2.world_size):
            t, s = g2.coords(r)
            assert g3.coords(r) == (t, s, 0)
            assert g3.space_comm(r) == g2.space_comm(r)
            assert g3.time_comm(r) == g2.time_comm(r)
            assert g3.time_row(t) == g2.time_row(t)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceTimeNodeGrid(0, 1, 1)
        with pytest.raises(ValueError):
            SpaceTimeNodeGrid(1, 1, -1)
        grid = SpaceTimeNodeGrid(2, 2, 2)
        with pytest.raises(ValueError):
            grid.coords(8)
        with pytest.raises(ValueError):
            grid.world_rank(0, 0, 2)


def _vortex_setup(n=80, seed=5):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    vorticity = rng.normal(size=(n, 3)) * 0.2
    volumes = np.full(n, 1.0 / n)
    return pack_state(positions, vorticity), volumes


def _vortex_specs(volumes, sweeper="gauss-seidel"):
    ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.1, theta=0.3,
                                    leaf_size=16)
    fine = VortexProblem(volumes, ev)
    coarse = fine.coarsened(0.6)
    return [
        LevelSpec(fine, 3, sweeps=1, sweeper=sweeper),
        LevelSpec(coarse, 2, sweeps=1, sweeper=sweeper),
    ]


def _linear_specs(problem, sweeper="gauss-seidel", node_type="lobatto"):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1, sweeper=sweeper,
                  node_type=node_type),
        LevelSpec(problem, num_nodes=2, sweeps=2, sweeper=sweeper,
                  node_type=node_type),
    ]


class TestNodeParallelRuns:
    def test_p_nodes_validation(self, linear_problem):
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=2)
        with pytest.raises(ValueError, match="p_nodes"):
            run_pfasst(cfg, _linear_specs(linear_problem),
                       np.array([1.0, 0.0]), p_time=2, p_nodes=0)

    def test_p_nodes_two_bitwise_matches_serial_nodes(self, linear_problem):
        """Gauss-Seidel on P_N=2: node sharding changes not a single
        bit of the trajectory."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=4)
        ref = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2)
        res = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2,
                         p_nodes=2)
        assert np.array_equal(res.u_end, ref.u_end)
        assert res.residuals == ref.residuals
        assert len(res.slice_end_values) == 2
        assert len(res.clocks) == 4  # one virtual clock per world rank

    def test_diagonal_p_nodes_matches_p_nodes_one(self, linear_problem):
        """The PFASST-ER diagonal sweeper across P_N=3 node ranks."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=4)
        specs = lambda: _linear_specs(linear_problem, sweeper="diagonal")
        ref = run_pfasst(cfg, specs(), u0, p_time=2, p_nodes=1)
        res = run_pfasst(cfg, specs(), u0, p_time=2, p_nodes=3)
        np.testing.assert_allclose(res.u_end, ref.u_end, rtol=1e-12,
                                   atol=0.0)
        assert res.residuals == ref.residuals

    def test_diagonal_agrees_with_gauss_seidel_at_convergence(
        self, linear_problem
    ):
        """Both sweepers contract to the same collocation fixed point."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=10)
        gs = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2)
        dg = run_pfasst(
            cfg, _linear_specs(linear_problem, sweeper="diagonal"), u0,
            p_time=2, p_nodes=2,
        )
        np.testing.assert_allclose(dg.u_end, gs.u_end, atol=1e-10)

    def test_radau_grid_run_converges(self, linear_problem):
        """Non-left node family on the 3D grid (exercises the u0
        threading that the node-family fixes made correct)."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=8)
        specs = _linear_specs(linear_problem, sweeper="diagonal",
                              node_type="radau-right")
        res = run_pfasst(cfg, specs, u0, p_time=2, p_nodes=2)
        assert max(r[-1] for r in res.residuals) < 1e-5
        exact = linear_problem.exact(0.4, u0)
        assert np.allclose(res.u_end, exact, atol=1e-4)

    def test_node_rhs_counters_per_rank(self, linear_problem):
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=2)
        res = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2,
                         p_nodes=2)
        counters = res.metrics["counters"]
        assert counters.get("node.rhs_bytes", 0) > 0
        per_rank = [k for k in counters if k.startswith("node.rhs_bytes{")]
        assert len(per_rank) == 4  # every world rank ships node rows
        assert all(counters[k] > 0 for k in per_rank)


class TestFullGrid:
    """P_T=2 x P_S=2 x P_N=2: all three dimensions at once."""

    def test_2x2x2_bitwise_matches_2x2x1_gauss_seidel(self):
        u0, volumes = _vortex_setup()
        cfg = PfasstConfig(t0=0.0, t_end=0.04, n_steps=2, iterations=2)
        ref = run_pfasst(cfg, _vortex_specs(volumes), u0, p_time=2,
                         p_space=2)
        res = run_pfasst(cfg, _vortex_specs(volumes), u0, p_time=2,
                         p_space=2, p_nodes=2)
        assert np.array_equal(res.u_end, ref.u_end)
        assert res.residuals == ref.residuals
        assert len(res.slice_end_values) == 2  # one per time rank
        assert len(res.clocks) == 8  # one per world rank

    def test_2x2x2_diagonal_close_to_node_serial(self):
        u0, volumes = _vortex_setup()
        cfg = PfasstConfig(t0=0.0, t_end=0.04, n_steps=2, iterations=2)
        specs = lambda: _vortex_specs(volumes, sweeper="diagonal")
        ref = run_pfasst(cfg, specs(), u0, p_time=2, p_space=2)
        res = run_pfasst(cfg, specs(), u0, p_time=2, p_space=2, p_nodes=2)
        np.testing.assert_allclose(res.u_end, ref.u_end, rtol=1e-12,
                                   atol=0.0)

    def test_grid_run_verifies_and_certifies(self, linear_problem):
        """verify=True replays the schedule; certify=True builds the
        happens-before certificate — both must accept the 3D grid."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=2)
        res = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2,
                         p_nodes=2, verify=True, certify=True)
        assert res.certificate is not None
        assert res.certificate.race_free
        assert res.certificate.n_ranks == 4


class TestExecutorDeterminism:
    def test_certificate_identical_across_executors(self):
        """Moving compute payloads onto worker processes must not
        reorder a single message of the node-parallel schedule."""
        # ChaosODE, not the conftest LinearODE: the process backend
        # pickles the problem by qualified name, which a conftest-local
        # class cannot provide when several conftests are collected
        problem = ChaosODE()
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=2)
        serial = run_pfasst(
            cfg, _linear_specs(problem), u0, p_time=2, p_nodes=2,
            executor=SerialExecutor(), certify=True,
        )
        with ProcessExecutor(max_workers=2) as ex:
            proc = run_pfasst(
                cfg, _linear_specs(problem), u0, p_time=2,
                p_nodes=2, executor=ex, certify=True,
            )
        assert serial.certificate.digest == proc.certificate.digest
        assert serial.certificate.channels == proc.certificate.channels
        assert np.array_equal(serial.u_end, proc.u_end)
        assert serial.clocks == proc.clocks


class TestNodeParallelRecovery:
    def test_warm_restart_survives_node_rank_crash(self, linear_problem):
        """A crash on a node rank of a P_T=2 x P_N=2 run is absorbed by
        the recovery plane and the run still converges."""
        u0 = np.array([1.0, 0.0])
        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=4,
                           recovery="warm-restart", recovery_timeout=2e-4)
        ref = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2,
                         p_nodes=2)
        plan = FaultPlan(crashes=(RankCrash(rank=1, after_ops=40),))
        res = run_pfasst(cfg, _linear_specs(linear_problem), u0, p_time=2,
                         p_nodes=2, fault_plan=plan)
        assert np.allclose(res.u_end, ref.u_end, atol=1e-6)
