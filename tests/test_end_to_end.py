"""End-to-end integration tests crossing all subsystems."""

import numpy as np
import pytest

from repro import (
    LevelSpec,
    PfasstConfig,
    SDCStepper,
    TreeEvaluator,
    run_pfasst,
    spherical_vortex_sheet,
)
from repro.integrators import get_integrator
from repro.vortex import (
    DirectEvaluator,
    VortexProblem,
    get_kernel,
)
from repro.vortex.diagnostics import linear_impulse, total_vorticity
from repro.vortex.particles import ParticleSystem
from repro.vortex.sheet import SheetConfig


@pytest.fixture(scope="module")
def setup():
    cfg = SheetConfig(n=250, sigma_over_h=4.0)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    return ps, cfg, kernel


class TestFullStack:
    def test_pfasst_tree_vs_sdc_direct(self, setup):
        """The paper's full pipeline vs the exact serial reference."""
        ps, cfg, kernel = setup
        u0 = ps.state()
        t_end, dt = 1.0, 0.5

        direct = VortexProblem(ps.volumes,
                               DirectEvaluator(kernel, cfg.sigma))
        ref = SDCStepper(direct, num_nodes=3, sweeps=8).run(
            u0, 0.0, t_end, dt
        )

        fine = VortexProblem(
            ps.volumes, TreeEvaluator(kernel, cfg.sigma, theta=0.3,
                                      leaf_size=32),
        )
        coarse = fine.with_evaluator(
            TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=32)
        )
        pf = PfasstConfig(t0=0.0, t_end=t_end, n_steps=2, iterations=3)
        specs = [LevelSpec(fine, 3, 1), LevelSpec(coarse, 2, 2)]
        res = run_pfasst(pf, specs, u0, p_time=2)
        rel = np.max(np.abs(res.u_end[0] - ref[0])) / np.max(np.abs(ref[0]))
        assert rel < 5e-4  # tree-code approximation + finite iterations

    def test_pfasst_preserves_invariants(self, setup):
        ps, cfg, kernel = setup
        fine = VortexProblem(ps.volumes,
                             DirectEvaluator(kernel, cfg.sigma))
        pf = PfasstConfig(t0=0.0, t_end=2.0, n_steps=4, iterations=3)
        specs = [LevelSpec(fine, 3, 1), LevelSpec(fine, 2, 2)]
        res = run_pfasst(pf, specs, ps.state(), p_time=4)
        after = ps.with_state(res.u_end)
        drift_omega = np.linalg.norm(
            total_vorticity(after) - total_vorticity(ps)
        )
        assert drift_omega < 1e-8 * np.abs(ps.charges).sum()
        imp_before = linear_impulse(ps)
        imp_after = linear_impulse(after)
        assert np.linalg.norm(imp_after - imp_before) < \
            2e-3 * np.linalg.norm(imp_before)

    def test_tree_pfasst_multiblock_matches_singleblock(self, setup):
        """Blocks (P_T < n_steps) and one big block must agree once
        converged."""
        ps, cfg, kernel = setup
        fine = VortexProblem(ps.volumes,
                             DirectEvaluator(kernel, cfg.sigma))
        specs = [LevelSpec(fine, 3, 1), LevelSpec(fine, 2, 2)]
        pf = PfasstConfig(t0=0.0, t_end=2.0, n_steps=4, iterations=8)
        res_multi = run_pfasst(pf, specs, ps.state(), p_time=2)
        res_single = run_pfasst(pf, specs, ps.state(), p_time=4)
        assert np.allclose(res_multi.u_end, res_single.u_end, atol=1e-7)

    def test_rk_and_pfasst_same_flow(self, setup):
        ps, cfg, kernel = setup
        fine = VortexProblem(ps.volumes,
                             DirectEvaluator(kernel, cfg.sigma))
        rk4 = get_integrator("rk4")
        u_rk = rk4.run(fine, ps.state(), 0.0, 1.0, 0.125)
        pf = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=4)
        specs = [LevelSpec(fine, 3, 1), LevelSpec(fine, 2, 2)]
        res = run_pfasst(pf, specs, ps.state(), p_time=4)
        rel = np.max(np.abs(res.u_end[0] - u_rk[0])) / np.max(np.abs(u_rk[0]))
        assert rel < 1e-4

    def test_remesh_then_continue(self, setup):
        """Remesh mid-run and keep integrating — states stay sane and the
        total charge is carried across the remesh exactly."""
        from repro.vortex.remesh import remesh

        ps, cfg, kernel = setup
        prob = VortexProblem(ps.volumes,
                             DirectEvaluator(kernel, cfg.sigma))
        rk2 = get_integrator("rk2")
        u_mid = rk2.run(prob, ps.state(), 0.0, 1.0, 0.5)
        mid = ps.with_state(u_mid)
        result = remesh(mid, spacing=cfg.h, prune_below=1e-9)
        new = result.particles
        assert np.allclose(
            new.charges.sum(axis=0), mid.charges.sum(axis=0), atol=1e-10
        )
        prob2 = VortexProblem(new.volumes,
                              DirectEvaluator(kernel, cfg.sigma))
        u_end = rk2.run(prob2, new.state(), 1.0, 2.0, 0.5)
        assert np.all(np.isfinite(u_end))

    def test_coulomb_and_vortex_trees_share_structure(self, setup, rng):
        """One particle set, both interaction types, same tree shape."""
        from repro.tree import TreeCoulombSolver, build_octree

        ps, cfg, kernel = setup
        vortex = TreeEvaluator(kernel, cfg.sigma, theta=0.5, leaf_size=32)
        vortex.field(ps.positions, ps.charges)
        coulomb = TreeCoulombSolver(theta=0.5, leaf_size=32)
        coulomb.compute(ps.positions, rng.normal(size=ps.n))
        assert vortex.last_stats.n_nodes == coulomb.last_stats.n_nodes
        assert vortex.last_stats.n_groups == coulomb.last_stats.n_groups
