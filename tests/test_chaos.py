"""Seeded chaos campaigns: determinism, soak correctness, CLI."""

import json

import pytest

from repro.parallel.chaos import (
    CampaignConfig,
    CampaignReport,
    TrialResult,
    main,
    run_campaign,
)


def _small(**kw):
    kw.setdefault("seed", 3)
    kw.setdefault("trials", 4)
    return CampaignConfig(**kw)


class TestCampaignDeterminism:
    def test_same_seed_replays_identically(self):
        a = run_campaign(_small())
        b = run_campaign(_small())
        assert [t.to_dict() for t in a.trials] == [
            t.to_dict() for t in b.trials
        ]

    def test_different_seed_changes_fault_sites(self):
        a = run_campaign(_small(seed=3))
        b = run_campaign(_small(seed=4))
        sites_a = [(t.crash_rank, t.after_ops) for t in a.trials]
        sites_b = [(t.crash_rank, t.after_ops) for t in b.trials]
        assert sites_a != sites_b


class TestCampaignSoak:
    def test_small_campaign_is_ok(self):
        """No correctness bug across a short randomized soak: every
        trial either recovers to the baseline or aborts in one of the
        documented-fatal windows."""
        report = run_campaign(_small(trials=6))
        assert report.ok, report.summary()
        counts = report.counts()
        assert counts.get("converged-differs", 0) == 0
        assert counts.get("error", 0) == 0
        assert counts.get("recovered", 0) >= 1

    def test_kill_resume_trials_present(self):
        report = run_campaign(_small(trials=4, kill_resume_every=2))
        kinds = [t.kind for t in report.trials]
        assert "kill-resume" in kinds and "crash" in kinds

    def test_report_round_trips_through_json(self):
        report = run_campaign(_small(trials=2))
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["ok"] == report.ok
        assert len(blob["trials"]) == 2
        assert blob["trials"][0]["outcome"] == report.trials[0].outcome


class TestCampaignConfigValidation:
    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            CampaignConfig(trials=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            CampaignConfig(executors=("serial", "threads"))

    def test_negative_kill_resume_rejected(self):
        with pytest.raises(ValueError, match="kill_resume_every"):
            CampaignConfig(kill_resume_every=-1)


class TestReportSummary:
    def _fake(self, outcome):
        report = CampaignReport(config=dict(seed=0, p_time=2, p_space=2))
        report.trials.append(TrialResult(
            trial=0, executor="serial", kind="crash", policy="cold-restart",
            crash_rank=1, after_ops=9, outcome=outcome,
        ))
        return report

    def test_ok_verdict(self):
        report = self._fake("recovered")
        assert report.ok
        assert "verdict: OK" in report.summary()

    def test_failure_listed_in_summary(self):
        report = self._fake("converged-differs")
        assert not report.ok
        text = report.summary()
        assert "verdict: FAILED" in text
        assert "FAIL trial 0" in text


class TestCli:
    def test_cli_returns_zero_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = main([
            "--seed", "3", "--trials", "2", "--json", str(out),
        ])
        assert rc == 0
        blob = json.loads(out.read_text())
        assert blob["ok"] is True
        assert len(blob["trials"]) == 2
        assert "chaos campaign" in capsys.readouterr().out
