"""Tests for the serial SDC time stepper."""

import numpy as np
import pytest

from repro.sdc import SDCStepper


class TestValidation:
    def test_zero_sweeps_rejected(self, scalar_problem):
        with pytest.raises(ValueError, match="sweep"):
            SDCStepper(scalar_problem, sweeps=0)

    def test_bad_interval(self, scalar_problem):
        s = SDCStepper(scalar_problem)
        with pytest.raises(ValueError, match="integer multiple"):
            s.run(np.array([1.0]), 0.0, 1.0, 0.3)

    def test_negative_dt(self, scalar_problem):
        s = SDCStepper(scalar_problem)
        with pytest.raises(ValueError, match="dt"):
            s.run(np.array([1.0]), 0.0, 1.0, -0.5)


class TestAccuracy:
    def test_matches_exact_linear_solution(self, linear_problem):
        s = SDCStepper(linear_problem, num_nodes=3, sweeps=4)
        u0 = np.array([1.0, 0.0])
        u = s.run(u0, 0.0, 1.0, 0.05)
        exact = linear_problem.exact(1.0, u0)
        assert np.allclose(u, exact, atol=1e-7)

    @pytest.mark.parametrize("sweeps,order", [(2, 2), (3, 3), (4, 4)])
    def test_convergence_order(self, linear_problem, sweeps, order):
        """Paper Fig. 7a: SDC(K) converges at order K on 3 Lobatto nodes."""
        u0 = np.array([1.0, 0.5])
        exact = linear_problem.exact(1.0, u0)
        errors = []
        for dt in (0.25, 0.125):
            s = SDCStepper(linear_problem, num_nodes=3, sweeps=sweeps)
            u = s.run(u0, 0.0, 1.0, dt)
            errors.append(np.max(np.abs(u - exact)))
        rate = np.log2(errors[0] / errors[1])
        assert rate > order - 0.6

    def test_more_nodes_reach_higher_order(self, linear_problem):
        """SDC(8) on 5 Lobatto nodes is the paper's reference integrator."""
        u0 = np.array([1.0, 0.5])
        exact = linear_problem.exact(1.0, u0)
        s = SDCStepper(linear_problem, num_nodes=5, sweeps=8)
        u = s.run(u0, 0.0, 1.0, 0.125)
        assert np.max(np.abs(u - exact)) < 1e-10


class TestStats:
    def test_counts(self, linear_problem):
        s = SDCStepper(linear_problem, num_nodes=3, sweeps=3)
        s.run(np.array([1.0, 0.0]), 0.0, 1.0, 0.25)
        assert s.stats.steps == 4
        assert s.stats.sweeps == 12
        assert len(s.stats.residuals) == 4

    def test_residual_tolerance_early_exit(self, linear_problem):
        s = SDCStepper(
            linear_problem, num_nodes=3, sweeps=50, residual_tol=1e-10
        )
        s.run(np.array([1.0, 0.0]), 0.0, 0.2, 0.2)
        assert s.stats.sweeps < 50
        assert s.stats.final_residual <= 1e-10

    def test_final_residual_nan_when_unused(self, linear_problem):
        s = SDCStepper(linear_problem)
        assert np.isnan(s.stats.final_residual)

    def test_callback_invoked(self, linear_problem):
        s = SDCStepper(linear_problem, sweeps=2)
        seen = []
        s.run(np.array([1.0, 0.0]), 0.0, 0.5, 0.25,
              callback=lambda t, u: seen.append(t))
        assert seen == pytest.approx([0.0, 0.25, 0.5])
