"""Tests for the space-parallel tree evaluator and the P_T x P_S grid."""

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from repro.parallel import Scheduler
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec
from repro.tree.evaluator import TreeEvaluator
from repro.tree.parallel import (
    SpaceConsistencyError,
    SpaceParallelTreeEvaluator,
    assemble_root,
    branch_payload,
    compute_shard,
)
from repro.vortex.particles import pack_state
from repro.vortex.problem import VortexProblem


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(42)
    n = 400
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    charges = rng.normal(size=(n, 3)) * 0.1
    return positions, charges


def _parallel_field(evaluator, p_space, positions, charges):
    def program(comm):
        f = yield from evaluator.field_program(
            comm, positions, charges, gradient=True
        )
        return f

    sched = Scheduler(p_space)
    return sched.run(program), sched


class TestFieldEquivalence:
    @pytest.mark.parametrize("theta", [0.3, 0.6])
    @pytest.mark.parametrize("p_space", [2, 3])
    def test_matches_serial_evaluator(self, cloud, theta, p_space):
        positions, charges = cloud
        serial = TreeEvaluator("algebraic2", sigma=0.05, theta=theta,
                               leaf_size=16)
        ref = serial.field(positions, charges, gradient=True)
        par = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                         theta=theta, leaf_size=16)
        fields, _ = _parallel_field(par, p_space, positions, charges)
        for f in fields:
            np.testing.assert_allclose(
                f.velocity, ref.velocity, rtol=1e-12, atol=1e-15
            )
            np.testing.assert_allclose(
                f.gradient, ref.gradient, rtol=1e-12, atol=1e-15
            )

    def test_size_one_comm_bitwise_matches_serial(self, cloud):
        positions, charges = cloud
        par = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                         theta=0.4, leaf_size=16)
        ref = par.field(positions, charges, gradient=True)
        fields, _ = _parallel_field(par, 1, positions, charges)
        np.testing.assert_array_equal(fields[0].velocity, ref.velocity)
        np.testing.assert_array_equal(fields[0].gradient, ref.gradient)

    def test_branch_byte_counters_recorded(self, cloud):
        positions, charges = cloud
        par = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                         theta=0.4, leaf_size=16)
        _, sched = _parallel_field(par, 3, positions, charges)
        counters = sched.metrics.as_dict()["counters"]
        per_rank = [counters[f"space.branch_bytes{{rank={r}}}"]
                    for r in range(3)]
        assert all(v > 0 for v in per_rank)
        assert counters["space.branch_bytes"] == sum(per_rank)
        assert all(counters[f"space.branch_cells{{rank={r}}}"] > 0
                   for r in range(3))
        assert all(counters[f"space.rhs_bytes{{rank={r}}}"] > 0
                   for r in range(3))

    def test_coarsened_shares_cache_and_matches(self, cloud):
        positions, charges = cloud
        fine = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                          theta=0.3, leaf_size=16)
        coarse = fine.coarsened(0.6)
        assert isinstance(coarse, SpaceParallelTreeEvaluator)
        assert coarse.cache is fine.cache
        ref = TreeEvaluator("algebraic2", sigma=0.05, theta=0.6,
                            leaf_size=16).field(positions, charges)
        fields, _ = _parallel_field(coarse, 2, positions, charges)
        np.testing.assert_allclose(
            fields[0].velocity, ref.velocity, rtol=1e-12, atol=1e-15
        )


class TestShardAndBranches:
    def test_shard_segments_partition_particles(self, cloud):
        positions, charges = cloud
        ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                        leaf_size=16)
        state, _ = ev.cache.state(positions, ev.leaf_size, ev.phases)
        for p in (2, 3, 5):
            shard = compute_shard(state, p)
            assert shard.bounds[0] == 0
            assert shard.bounds[-1] == positions.shape[0]
            assert np.all(np.diff(shard.bounds) > 0)
            # leaf-aligned: every boundary is some group's slot start
            starts = set(state.tree.node_start[state.groups].tolist())
            for b in shard.bounds[1:-1]:
                assert int(b) in starts
            # group masks partition the groups
            total = sum(shard.group_mask(r, len(state.groups)).sum()
                        for r in range(p))
            assert total == len(state.groups)

    def test_shard_cached_per_state(self, cloud):
        positions, _ = cloud
        ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                        leaf_size=16)
        state, _ = ev.cache.state(positions, ev.leaf_size, ev.phases)
        assert compute_shard(state, 2) is compute_shard(state, 2)

    def test_too_many_ranks_raises(self, cloud):
        positions, _ = cloud
        ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                        leaf_size=16)
        state, _ = ev.cache.state(positions, ev.leaf_size, ev.phases)
        with pytest.raises(ValueError, match="leaf groups"):
            compute_shard(state, 10_000)

    def test_exchanged_branches_rebuild_root_moments(self, cloud):
        positions, charges = cloud
        ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                        leaf_size=16)
        state, _ = ev.cache.state(positions, ev.leaf_size, ev.phases)
        moments, _ = state.vortex_moments(charges, ev.phases)
        tree = state.tree
        p = 4
        shard = compute_shard(state, p)
        charges_sorted = charges[tree.order]
        branches = [branch_payload(tree, shard, charges_sorted, r)
                    for r in range(p)]
        count, m0, m1, m2 = assemble_root(tree, branches)
        assert count == tree.n_particles
        np.testing.assert_allclose(m0, moments.m0[0], rtol=1e-9, atol=1e-13)
        np.testing.assert_allclose(m1, moments.m1[0], rtol=1e-9, atol=1e-13)
        np.testing.assert_allclose(m2, moments.m2[0], rtol=1e-9, atol=1e-13)

    def test_tampered_branch_fails_verification(self, cloud):
        """A corrupted exchange must be caught, not silently accepted."""
        positions, charges = cloud
        ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.05,
                                        leaf_size=16)

        def program(comm):
            if comm.rank == 1:
                charges_bad = charges * 1.5  # inconsistent source data
                f = yield from ev.field_program(comm, positions, charges_bad)
            else:
                f = yield from ev.field_program(comm, positions, charges)
            return f

        with pytest.raises(SpaceConsistencyError):
            Scheduler(2).run(program)


def _vortex_setup(n=120, seed=3):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    vorticity = rng.normal(size=(n, 3)) * 0.2
    volumes = np.full(n, 1.0 / n)
    return pack_state(positions, vorticity), volumes


def _specs(volumes):
    ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.1, theta=0.3,
                                    leaf_size=16)
    fine = VortexProblem(volumes, ev)
    coarse = fine.coarsened(0.6)
    return [LevelSpec(fine, 3, sweeps=1), LevelSpec(coarse, 2, sweeps=1)]


class TestGridPfasst:
    def test_grid_run_matches_time_only_run(self):
        u0, volumes = _vortex_setup()
        cfg = PfasstConfig(t0=0.0, t_end=0.05, n_steps=2, iterations=3)
        ref = run_pfasst(cfg, _specs(volumes), u0, p_time=2, p_space=1)
        res = run_pfasst(cfg, _specs(volumes), u0, p_time=2, p_space=2)
        np.testing.assert_allclose(res.u_end, ref.u_end, rtol=1e-12)
        assert res.residuals == ref.residuals
        assert len(res.slice_end_values) == 2  # one per *time* rank
        assert len(res.clocks) == 4  # one per world rank

    def test_grid_trace_has_space_spans_and_counters(self):
        u0, volumes = _vortex_setup()
        cfg = PfasstConfig(t0=0.0, t_end=0.05, n_steps=2, iterations=2,
                           trace=True)
        tracer = Tracer()
        res = run_pfasst(cfg, _specs(volumes), u0, p_time=2, p_space=2,
                         tracer=tracer)
        names = {s.name for s in tracer.spans}
        assert "space:branch-exchange" in names
        assert "space:compute" in names
        assert "space:rhs-allgather" in names
        # per-space-rank spans live on each world rank's track
        tracks = {s.track for s in tracer.spans
                  if s.name == "space:branch-exchange"}
        assert tracks == {f"rank{r}" for r in range(4)}
        assert any("branch_bytes{" in k
                   for k in res.metrics["counters"])

    def test_grid_fault_plan_fail_policy_propagates(self):
        """Fault plans now compose with the grid; ``recovery="fail"``
        (the default) still lets the injected crash kill the run."""
        from repro.parallel import FaultPlan, RankCrash, RankFailure

        u0, volumes = _vortex_setup()
        cfg = PfasstConfig(t0=0.0, t_end=0.05, n_steps=2, iterations=2)
        plan = FaultPlan(crashes=(RankCrash(rank=0, after_ops=5),))
        with pytest.raises(RankFailure):
            run_pfasst(cfg, _specs(volumes), u0, p_time=2, p_space=2,
                       fault_plan=plan)
