"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_sheet_defaults(self):
        args = build_parser().parse_args(["sheet"])
        assert args.n == 400
        assert args.method == "sdc"

    def test_sheet_custom(self):
        args = build_parser().parse_args(
            ["sheet", "-n", "100", "--method", "pfasst", "--p-time", "2"]
        )
        assert args.n == 100
        assert args.method == "pfasst"
        assert args.p_time == 2

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sheet", "--method", "leapfrog"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "algebraic6" in out
        assert "pfasst" in out

    def test_sheet_rk2_direct(self, capsys):
        code = main(["sheet", "-n", "80", "--method", "rk2",
                     "--evaluator", "direct", "--t-end", "0.5",
                     "--dt", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fine RHS evaluations: 2" in out
        assert "enstrophy" in out

    def test_sheet_pfasst_reports_alpha(self, capsys):
        code = main(["sheet", "-n", "80", "--method", "pfasst",
                     "--t-end", "1.0", "--dt", "0.5", "--p-time", "2"])
        assert code == 0
        assert "measured alpha" in capsys.readouterr().out

    def test_sheet_save(self, tmp_path, capsys):
        target = tmp_path / "final.npz"
        code = main(["sheet", "-n", "60", "--method", "euler",
                     "--evaluator", "direct", "--t-end", "0.5",
                     "--dt", "0.5", "--save", str(target)])
        assert code == 0
        from repro.io import load_particles

        ps, time, _ = load_particles(target)
        assert ps.n == 60
        assert time == 0.5

    def test_speedup_small(self, capsys):
        code = main(["speedup", "-n", "100", "--steps", "2",
                     "--p-times", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "theory" in out
