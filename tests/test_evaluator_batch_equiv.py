"""Equivalence of the batched engine with direct and per-group paths.

The batched engine (``repro.tree.engine``) must reproduce

* the O(N^2) direct references within the established theta tolerances,
  across MAC variants, multipole orders and gradient modes; and
* the pre-batching per-group implementation (``repro.tree.reference``)
  to summation-reordering accuracy: both walk the *same* interaction
  lists and evaluate the *same* expansion formulas, so any discrepancy
  beyond float addition order is an engine indexing bug.

The direct-comparison grids run once per *usable* kernel backend
(``repro.backends.usable_backends``): CPU backends must hold the exact
same tolerances as the serial NumPy reference, because their batch
decomposition is write-disjoint and each batch is evaluated with the
identical serial arithmetic.  Backends whose optional dependency is
missing (e.g. CuPy without a GPU) simply do not appear in the grid.
"""

import numpy as np
import pytest

from repro.backends import usable_backends
from repro.nbody import coulomb_direct
from repro.tree import TreeCoulombSolver, TreeEvaluator
from repro.tree.reference import (
    reference_coulomb_fields,
    reference_vortex_field,
)
from repro.vortex import DirectEvaluator, get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig

THETA_TOL = {0.0: 1e-12, 0.3: 2e-3, 0.6: 2e-2}

#: every backend whose dependencies are importable on this machine
BACKENDS = list(usable_backends())


@pytest.fixture(scope="module")
def sheet():
    cfg = SheetConfig(n=400)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    ref = DirectEvaluator(kernel, cfg.sigma).field(ps.positions, ps.charges)
    return ps, cfg, kernel, ref


def _rel_err(a, b):
    return np.max(np.abs(a - b)) / np.max(np.abs(b))


class TestVortexAgainstDirect:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.6])
    @pytest.mark.parametrize("variant", ["bh", "bmax"])
    def test_velocity_within_theta_tolerance(self, sheet, theta, variant,
                                             backend):
        ps, cfg, kernel, ref = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=theta, leaf_size=24,
                           mac_variant=variant, backend=backend)
        out = ev.field(ps.positions, ps.charges)
        if theta == 0.0:
            assert np.allclose(out.velocity, ref.velocity,
                               rtol=1e-12, atol=1e-14)
            assert np.allclose(out.gradient, ref.gradient,
                               rtol=1e-12, atol=1e-14)
        else:
            assert _rel_err(out.velocity, ref.velocity) < THETA_TOL[theta]
            assert _rel_err(out.gradient, ref.gradient) < 10 * THETA_TOL[theta]

    @pytest.mark.parametrize("gradient", [True, False])
    def test_gradient_toggle(self, sheet, gradient):
        ps, cfg, kernel, _ = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=24)
        out = ev.field(ps.positions, ps.charges, gradient=gradient)
        assert (out.gradient is not None) == gradient
        assert np.all(np.isfinite(out.velocity))


class TestVortexAgainstReference:
    """Batched engine vs the preserved per-group path, bitwise-close."""

    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.6])
    @pytest.mark.parametrize("variant", ["bh", "bmax"])
    def test_theta_and_variant_grid(self, sheet, theta, variant):
        ps, cfg, kernel, _ = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=theta, leaf_size=24,
                           mac_variant=variant)
        out = ev.field(ps.positions, ps.charges)
        ref = reference_vortex_field(
            ps.positions, ps.charges, kernel, cfg.sigma, theta=theta,
            leaf_size=24, mac_variant=variant,
        )
        scale = np.max(np.abs(ref.velocity))
        assert np.allclose(out.velocity, ref.velocity, atol=1e-12 * scale)
        gscale = np.max(np.abs(ref.gradient))
        assert np.allclose(out.gradient, ref.gradient, atol=1e-12 * gscale)

    @pytest.mark.parametrize("order", [0, 1, 2])
    @pytest.mark.parametrize("gradient", [True, False])
    def test_order_and_gradient_grid(self, sheet, order, gradient):
        ps, cfg, kernel, _ = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.5, order=order,
                           leaf_size=24)
        out = ev.field(ps.positions, ps.charges, gradient=gradient)
        ref = reference_vortex_field(
            ps.positions, ps.charges, kernel, cfg.sigma, theta=0.5,
            order=order, leaf_size=24, gradient=gradient,
        )
        scale = np.max(np.abs(ref.velocity))
        assert np.allclose(out.velocity, ref.velocity, atol=1e-12 * scale)
        if gradient:
            gscale = np.max(np.abs(ref.gradient))
            assert np.allclose(out.gradient, ref.gradient,
                               atol=1e-12 * gscale)

    def test_tiny_system_single_group(self, rng):
        """N < leaf_size: one group, all-near traversal, no far pairs."""
        pos = rng.normal(size=(10, 3))
        ch = rng.normal(size=(10, 3))
        kernel = get_kernel("algebraic6")
        ev = TreeEvaluator(kernel, 0.5, theta=0.3, leaf_size=24)
        out = ev.field(pos, ch)
        ref = reference_vortex_field(pos, ch, kernel, 0.5, theta=0.3,
                                     leaf_size=24)
        assert np.allclose(out.velocity, ref.velocity, atol=1e-13)
        assert ev.last_stats.far_pairs == 0


class TestCoulombEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.6])
    def test_against_direct(self, rng, theta, backend):
        pos = rng.normal(size=(400, 3))
        q = rng.normal(size=400)
        phi_ref, e_ref = coulomb_direct(pos, pos, q)
        phi, e = TreeCoulombSolver(theta=theta, leaf_size=24,
                                   backend=backend).compute(pos, q)
        if theta == 0.0:
            assert np.allclose(phi, phi_ref, atol=1e-12)
            assert np.allclose(e, e_ref, atol=1e-12)
        else:
            assert _rel_err(phi, phi_ref) < THETA_TOL[theta]
            assert _rel_err(e, e_ref) < 2 * THETA_TOL[theta]

    @pytest.mark.parametrize("theta", [0.0, 0.4, 0.6])
    @pytest.mark.parametrize("variant", ["bh", "bmax"])
    def test_against_reference(self, rng, theta, variant):
        pos = rng.normal(size=(300, 3))
        q = rng.normal(size=300)
        solver = TreeCoulombSolver(theta=theta, leaf_size=24,
                                   mac_variant=variant)
        phi, e = solver.compute(pos, q)
        phi_ref, e_ref = reference_coulomb_fields(
            pos, q, theta=theta, leaf_size=24, mac_variant=variant
        )
        assert np.allclose(phi, phi_ref, atol=1e-12 * np.max(np.abs(phi_ref)))
        assert np.allclose(e, e_ref, atol=1e-12 * np.max(np.abs(e_ref)))

    def test_softened_coincident_pairs(self, rng):
        """Softening keeps coincident pairs (at 1/eps), matching the seed
        semantics: only the unsoftened kernel excludes them."""
        pos = rng.normal(size=(60, 3))
        pos[13] = pos[42]  # exact coincidence
        q = rng.normal(size=60)
        solver = TreeCoulombSolver(theta=0.0, leaf_size=16, softening=0.1)
        phi, e = solver.compute(pos, q)
        phi_ref, e_ref = reference_coulomb_fields(
            pos, q, theta=0.0, leaf_size=16, softening=0.1
        )
        assert np.allclose(phi, phi_ref, atol=1e-12 * np.max(np.abs(phi_ref)))
        assert np.allclose(e, e_ref, atol=1e-12 * np.max(np.abs(e_ref)))
        # unsoftened: the coincident pair is excluded, results stay finite
        phi0, e0 = TreeCoulombSolver(theta=0.0, leaf_size=16).compute(pos, q)
        assert np.all(np.isfinite(phi0)) and np.all(np.isfinite(e0))


class TestEngineBudget:
    def test_tiny_budget_matches_default(self, sheet):
        """Chunking must not change results — exercise many small chunks."""
        ps, cfg, kernel, _ = sheet
        ev_default = TreeEvaluator(kernel, cfg.sigma, theta=0.4, leaf_size=24)
        ev_tiny = TreeEvaluator(kernel, cfg.sigma, theta=0.4, leaf_size=24,
                                batch_budget_bytes=1)
        out_d = ev_default.field(ps.positions, ps.charges)
        out_t = ev_tiny.field(ps.positions, ps.charges)
        assert np.allclose(out_t.velocity, out_d.velocity,
                           atol=1e-13 * np.max(np.abs(out_d.velocity)))
        assert np.allclose(out_t.gradient, out_d.gradient,
                           atol=1e-13 * np.max(np.abs(out_d.gradient)))
