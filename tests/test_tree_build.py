"""Tests for oct-tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tree.build import build_octree


class TestStructure:
    def test_root_covers_everything(self, rng):
        pts = rng.random((500, 3))
        tree = build_octree(pts, leaf_size=16)
        assert tree.node_start[0] == 0
        assert tree.node_end[0] == 500

    def test_validate_passes(self, rng):
        tree = build_octree(rng.random((800, 3)), leaf_size=8)
        tree.validate()

    def test_leaves_partition_particles(self, rng):
        tree = build_octree(rng.random((700, 3)), leaf_size=10)
        leaves = tree.leaves()
        counts = tree.node_count(leaves)
        assert counts.sum() == 700
        # leaf ranges must be disjoint
        starts = np.sort(tree.node_start[leaves])
        ends = np.sort(tree.node_end[leaves])
        assert np.all(starts[1:] >= ends[:-1])

    def test_leaf_size_respected(self, rng):
        tree = build_octree(rng.random((1000, 3)), leaf_size=20)
        assert tree.node_count(tree.leaves()).max() <= 20

    def test_single_particle(self):
        tree = build_octree(np.array([[0.5, 0.5, 0.5]]))
        assert tree.n_nodes == 1
        assert tree.is_leaf(0)

    def test_zero_particles_rejected(self):
        with pytest.raises(ValueError, match="zero particles"):
            build_octree(np.zeros((0, 3)))

    def test_bad_leaf_size(self, rng):
        with pytest.raises(ValueError, match="leaf_size"):
            build_octree(rng.random((5, 3)), leaf_size=0)

    def test_order_is_permutation(self, rng):
        tree = build_octree(rng.random((321, 3)))
        assert np.array_equal(np.sort(tree.order), np.arange(321))

    def test_positions_are_reordered_originals(self, rng):
        pts = rng.random((100, 3))
        tree = build_octree(pts)
        assert np.allclose(tree.positions, pts[tree.order])

    def test_particles_of_leaf(self, rng):
        pts = rng.random((100, 3))
        tree = build_octree(pts, leaf_size=8)
        leaf = tree.leaves()[0]
        idx = tree.particles_of(leaf)
        c = tree.node_center[leaf]
        s = tree.node_size[leaf]
        assert np.all(np.abs(pts[idx] - c) <= s / 2 + 1e-9)

    def test_levels_contiguous(self, rng):
        tree = build_octree(rng.random((500, 3)), leaf_size=8)
        for lvl in range(tree.n_levels):
            lo, hi = tree.level_offsets[lvl], tree.level_offsets[lvl + 1]
            assert np.all(tree.node_level[lo:hi] == lvl)

    def test_children_geometry_nested(self, rng):
        tree = build_octree(rng.random((500, 3)), leaf_size=8)
        for node in range(tree.n_nodes):
            for kid in tree.children(node):
                assert tree.node_size[kid] == pytest.approx(
                    tree.node_size[node] / 2
                )
                # child center inside parent cell
                assert np.all(
                    np.abs(tree.node_center[kid] - tree.node_center[node])
                    <= tree.node_size[node] / 2
                )


class TestDegenerateInputs:
    def test_all_identical_points(self):
        pts = np.tile([[0.3, 0.3, 0.3]], (50, 1))
        tree = build_octree(pts, leaf_size=4)
        tree.validate()
        # cannot split identical keys: one leaf holds everything
        assert tree.node_count(tree.leaves()).max() == 50

    def test_two_tight_clusters(self, rng):
        pts = np.concatenate([
            rng.normal(0.0, 1e-6, (100, 3)),
            rng.normal(1.0, 1e-6, (100, 3)),
        ])
        tree = build_octree(pts, leaf_size=8)
        tree.validate()
        assert tree.node_count(tree.leaves()).sum() == 200

    def test_collinear_points(self):
        x = np.linspace(0, 1, 200)
        pts = np.column_stack([x, np.zeros(200), np.zeros(200)])
        tree = build_octree(pts, leaf_size=10)
        tree.validate()

    def test_large_coordinates(self, rng):
        pts = rng.random((100, 3)) * 1e8 + 1e9
        tree = build_octree(pts, leaf_size=8)
        tree.validate()


@settings(max_examples=25, deadline=None)
@given(
    pts=arrays(
        np.float64, st.tuples(st.integers(1, 300), st.just(3)),
        elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    ),
    leaf_size=st.integers(1, 32),
)
def test_build_invariants_property(pts, leaf_size):
    tree = build_octree(pts, leaf_size=leaf_size)
    tree.validate()
    leaves = tree.leaves()
    assert tree.node_count(leaves).sum() == pts.shape[0]
    assert np.array_equal(np.sort(tree.order), np.arange(pts.shape[0]))
