"""Tests for repro.obs.metrics — instruments, label series, export and
the null fast path."""

import gc
import sys

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        m.counter("mpi.messages").inc()
        m.counter("mpi.messages").inc(3)
        assert m.counter("mpi.messages").value == 4

    def test_counter_rejects_decrease(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            m.counter("c").inc(-1)

    def test_gauge_overwrites(self):
        m = MetricsRegistry()
        m.gauge("alpha").set(0.25)
        m.gauge("alpha").set(0.5)
        assert m.gauge("alpha").value == 0.5

    def test_histogram_summary(self):
        m = MetricsRegistry()
        h = m.histogram("ilist")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.summary() == {"count": 3, "total": 12.0, "min": 2.0,
                               "max": 6.0, "mean": 4.0}

    def test_empty_histogram_summary_is_zeros(self):
        assert MetricsRegistry().histogram("h").summary()["count"] == 0

    def test_instruments_are_reused_per_series(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.counter("x", a=1) is not m.counter("x", a=2)


class TestLabels:
    def test_label_series_key_is_sorted(self):
        m = MetricsRegistry()
        m.counter("mpi.bytes", src=0, dest=1).inc(10)
        m.counter("mpi.bytes", dest=1, src=0).inc(5)  # same series
        assert m.as_dict()["counters"] == {"mpi.bytes{dest=1,src=0}": 15}

    def test_unlabelled_and_labelled_are_distinct(self):
        m = MetricsRegistry()
        m.counter("msgs").inc()
        m.counter("msgs", src=0).inc()
        counters = m.as_dict()["counters"]
        assert set(counters) == {"msgs", "msgs{src=0}"}


class TestExport:
    def test_as_dict_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(1.5)
        m.histogram("h").observe(2.0)
        snap = m.as_dict()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_to_csv_rows(self):
        m = MetricsRegistry()
        m.counter("c").inc(2)
        m.histogram("h").observe(1.0)
        lines = m.to_csv().strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,c,value,2" in lines
        assert sum(1 for l in lines if l.startswith("histogram,h,")) == 5

    def test_merge_registry_and_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(1.0)
        b.counter("c").inc(2)
        b.gauge("g").set(2.0)
        b.histogram("h").observe(3.0)
        a.merge(b)                      # live registry
        a.merge(b.as_dict())            # plain snapshot dict
        snap = a.as_dict()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.0          # gauges overwrite
        assert snap["histograms"]["h"] == {
            "count": 3, "total": 7.0, "min": 1.0, "max": 3.0,
            "mean": pytest.approx(7.0 / 3.0)}

    def test_merge_skips_empty_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h")  # registered but never observed
        a.merge(b)
        assert a.as_dict()["histograms"] == {}


class TestNullFastPath:
    def test_default_registry_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not NULL_METRICS.enabled

    def test_null_factories_share_one_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
        NULL_METRICS.counter("a").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.as_dict() == {"counters": {}, "gauges": {},
                                          "histograms": {}}

    def test_disabled_counter_loop_allocates_nothing(self):
        def hot_loop(n):
            m = get_metrics()
            for i in range(n):
                if m.enabled:
                    m.counter("tree.mac_tests").inc()

        hot_loop(100)
        gc.collect()
        before = sys.getallocatedblocks()
        hot_loop(10_000)
        after = sys.getallocatedblocks()
        assert after - before <= 2

    def test_use_metrics_scoping(self):
        m = MetricsRegistry()
        with use_metrics(m) as installed:
            assert installed is m
            assert get_metrics() is m
            get_metrics().counter("c").inc()
        assert get_metrics() is NULL_METRICS
        assert m.counter("c").value == 1

    def test_set_metrics_none_restores_null(self):
        m = MetricsRegistry()
        set_metrics(m)
        try:
            assert get_metrics() is m
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_METRICS


class TestCsvQuoting:
    """Regression: multi-label series names contain commas; unquoted CSV
    output split one name across columns and corrupted every per-rank
    scheduler metric."""

    def test_multi_label_names_round_trip(self):
        import csv
        import io

        m = MetricsRegistry()
        m.counter("msg_bytes", src=0, dest=1).inc(64)
        m.counter("msg_bytes", src=1, dest=0).inc(32)
        m.gauge("q", stage="a,b").set(2.5)
        m.histogram("lat", link='0"1').observe(1.0)
        rows = list(csv.reader(io.StringIO(m.to_csv())))
        assert rows[0] == ["kind", "name", "field", "value"]
        # every row parses back to exactly four fields
        assert all(len(r) == 4 for r in rows)
        names = {(r[0], r[1]) for r in rows[1:]}
        assert ("counter", "msg_bytes{dest=1,src=0}") in names
        assert ("counter", "msg_bytes{dest=0,src=1}") in names
        assert ("gauge", "q{stage=a,b}") in names
        assert ("histogram", 'lat{link=0"1}') in names
        by_name = {r[1]: r[3] for r in rows[1:] if r[0] == "counter"}
        assert by_name["msg_bytes{dest=1,src=0}"] == "64"

    def test_scheduler_per_pair_counters_survive_csv(self):
        """End to end: the real per-channel scheduler counters."""
        import csv
        import io

        from repro.parallel import Scheduler

        def program(comm):
            if comm.rank == 0:
                yield comm.send(1, "t", b"xyz")
                return None
            return (yield comm.recv(0, "t"))

        sched = Scheduler(2)
        sched.run(program)
        rows = list(csv.reader(io.StringIO(sched.metrics.to_csv())))
        assert all(len(r) == 4 for r in rows)
        labelled = [r[1] for r in rows if "{" in r[1]]
        assert any("src=0" in n and "dest=1" in n for n in labelled)
