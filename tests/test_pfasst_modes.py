"""Tests for PFASST controller variants: F-update modes and tracing."""

import numpy as np
import pytest

from repro.parallel.simmpi import TraceEvent
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import SDCStepper


def _specs(problem):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


class TestFUpdateModes:
    """Interpolating F increments vs re-evaluating (Algorithm 1 literal)."""

    def test_both_modes_converge_to_same_fixed_point(self, scalar_problem):
        u0 = np.array([1.0])
        ref = SDCStepper(scalar_problem, num_nodes=3, sweeps=14).run(
            u0, 0.0, 1.0, 0.25
        )
        results = {}
        for reeval in (False, True):
            cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=12,
                               reeval_after_interp=reeval)
            res = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=4)
            results[reeval] = res.u_end
            assert np.allclose(res.u_end, ref, atol=1e-11), f"reeval={reeval}"
        assert np.allclose(results[False], results[True], atol=1e-11)

    def test_cheap_mode_uses_fewer_evaluations(self, scalar_problem):
        u0 = np.array([1.0])
        counts = {}
        for reeval in (False, True):
            scalar_problem.evals = 0
            cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=3,
                               reeval_after_interp=reeval)
            run_pfasst(cfg, _specs(scalar_problem), u0, p_time=4)
            counts[reeval] = scalar_problem.evals
        assert counts[False] < counts[True]

    def test_cheap_mode_accuracy_comparable(self, scalar_problem):
        """At small iteration counts the two modes differ by at most an
        order of magnitude in error."""
        u0 = np.array([1.0])
        ref = SDCStepper(scalar_problem, num_nodes=3, sweeps=14).run(
            u0, 0.0, 1.0, 0.25
        )
        errs = {}
        for reeval in (False, True):
            cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=2,
                               reeval_after_interp=reeval)
            res = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=4)
            errs[reeval] = abs((res.u_end - ref).item())
        assert errs[False] < 10 * errs[True] + 1e-14


class TestTracing:
    def test_trace_disabled_by_default(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=1)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]),
                         p_time=2)
        assert res.trace == []

    def test_trace_records_sweeps(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2,
                           trace=True)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]),
                         p_time=2)
        assert all(isinstance(ev, TraceEvent) for ev in res.trace)
        labels = {ev.label for ev in res.trace}
        assert "begin:sweep:L0:k0" in labels
        assert "end:sweep:L1:k1" in labels
        assert "begin:predict:0" in labels

    def test_trace_begin_end_pairing(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2,
                           trace=True)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]),
                         p_time=2)
        begins = sum(1 for ev in res.trace if ev.label.startswith("begin:"))
        ends = sum(1 for ev in res.trace if ev.label.startswith("end:"))
        assert begins == ends

    def test_trace_does_not_change_numerics(self, scalar_problem):
        u0 = np.array([1.0])
        outs = []
        for trace in (False, True):
            cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2,
                               trace=trace)
            outs.append(
                run_pfasst(cfg, _specs(scalar_problem), u0, p_time=2).u_end
            )
        assert np.array_equal(outs[0], outs[1])
