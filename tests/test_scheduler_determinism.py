"""Determinism and reproducibility guarantees of the simulated MPI."""

import numpy as np

from repro.parallel import CommCostModel, Scheduler, allreduce
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst


class TestSchedulerDeterminism:
    def test_identical_runs_identical_clocks(self):
        """Modelled-cost runs are bit-reproducible."""
        def prog(comm):
            if comm.rank > 0:
                _ = yield comm.recv(comm.rank - 1, "x")
            yield comm.work(0.1 * (comm.rank + 1))
            if comm.rank < comm.size - 1:
                yield comm.send(comm.rank + 1, "x", comm.rank)
            total = yield from allreduce(comm, comm.rank)
            return total

        runs = []
        for _ in range(2):
            s = Scheduler(5, measure_compute=False)
            res = s.run(prog)
            runs.append((res, list(s.clocks)))
        assert runs[0] == runs[1]

    def test_numerics_independent_of_cost_model(self, scalar_problem):
        """Changing latency/bandwidth must never change PFASST results."""
        u0 = np.array([1.0])
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=3)
        specs = [
            LevelSpec(scalar_problem, 3, 1),
            LevelSpec(scalar_problem, 2, 2),
        ]
        outs = []
        for model in (
            CommCostModel(),
            CommCostModel(latency=1.0, bandwidth=10.0, send_overhead=0.5),
        ):
            res = run_pfasst(cfg, specs, u0, p_time=4, cost_model=model)
            outs.append(res.u_end.copy())
        assert np.array_equal(outs[0], outs[1])

    def test_numerics_independent_of_measure_compute(self, scalar_problem):
        u0 = np.array([1.0])
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2)
        specs = [
            LevelSpec(scalar_problem, 3, 1),
            LevelSpec(scalar_problem, 2, 2),
        ]
        a = run_pfasst(cfg, specs, u0, p_time=2, measure_compute=False)
        b = run_pfasst(cfg, specs, u0, p_time=2, measure_compute=True)
        assert np.array_equal(a.u_end, b.u_end)

    def test_clock_monotone_along_causality(self):
        """A message's receive completion never precedes its send."""
        sends = {}
        recvs = {}

        def prog(comm):
            if comm.rank == 0:
                yield comm.work(0.3)
                sends[0] = comm.clock
                yield comm.send(1, "x", 42)
            else:
                _ = yield comm.recv(0, "x")
                recvs[1] = comm.clock

        s = Scheduler(2, measure_compute=False)
        s.run(prog)
        assert recvs[1] >= sends[0]

    def test_latency_scale_shifts_makespan_linearly(self):
        def prog(comm):
            for k in range(5):
                if comm.rank == 0:
                    yield comm.send(1, ("x", k), k)
                else:
                    _ = yield comm.recv(0, ("x", k))

        makespans = []
        for lat in (1.0, 2.0):
            s = Scheduler(
                2,
                cost_model=CommCostModel(latency=lat, bandwidth=1e30,
                                         send_overhead=0.0),
                measure_compute=False,
            )
            s.run(prog)
            makespans.append(s.makespan)
        # messages overlap (eager sends), so makespan = latency of last
        assert makespans[1] == 2 * makespans[0]
