"""Tests for the smoothing kernels (repro.vortex.kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vortex.kernels import (
    GaussianKernel,
    SingularKernel,
    available_kernels,
    get_kernel,
)

REGULAR = ["algebraic2", "algebraic4", "algebraic6", "gaussian"]
ALGEBRAIC = ["algebraic2", "algebraic4", "algebraic6"]


class TestRegistry:
    def test_all_kernels_constructible(self):
        for name in available_kernels():
            assert get_kernel(name).name == name

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("nope")

    def test_expected_names_present(self):
        assert set(REGULAR) <= set(available_kernels())

    def test_orders(self):
        assert get_kernel("algebraic2").order == 2
        assert get_kernel("algebraic4").order == 4
        assert get_kernel("algebraic6").order == 6
        assert get_kernel("gaussian").order == 2


@pytest.mark.parametrize("name", REGULAR)
class TestProfileConsistency:
    def test_qprime_matches_finite_difference(self, name):
        k = get_kernel(name)
        rho = np.linspace(0.05, 10.0, 400)
        eps = 1e-6
        fd = (k.q(rho + eps) - k.q(rho - eps)) / (2 * eps)
        assert np.allclose(k.qprime(rho), fd, rtol=1e-5, atol=1e-8)

    def test_q_over_rho3_matches_definition(self, name):
        k = get_kernel(name)
        rho = np.linspace(0.2, 8.0, 200)
        assert np.allclose(k.q_over_rho3(rho), k.q(rho) / rho**3, rtol=1e-10)

    def test_w_matches_definition(self, name):
        k = get_kernel(name)
        rho = np.linspace(0.2, 8.0, 200)
        expected = (rho * k.qprime(rho) - 3 * k.q(rho)) / rho**5
        assert np.allclose(k.w(rho), expected, rtol=1e-8, atol=1e-12)

    def test_q_tends_to_one(self, name):
        k = get_kernel(name)
        assert k.q(np.array([200.0]))[0] == pytest.approx(1.0, abs=1e-4)

    def test_q_vanishes_cubically_at_origin(self, name):
        k = get_kernel(name)
        rho = np.array([1e-4])
        # q ~ c rho^3, so q / rho^3 is finite and positive
        val = k.q_over_rho3(rho)[0]
        assert np.isfinite(val)
        assert val > 0

    def test_q_monotone_for_second_order(self, name):
        k = get_kernel(name)
        rho = np.linspace(0.0, 20.0, 2001)
        q = k.q(rho)
        if k.order == 2:
            # positive zeta => monotone q
            assert np.all(np.diff(q) >= -1e-14)
        # all kernels: q stays bounded
        assert np.all(np.abs(q) < 1.6)

    def test_zeta_is_finite_everywhere(self, name):
        k = get_kernel(name)
        rho = np.concatenate([[0.0, 1e-12], np.linspace(0.01, 30, 100)])
        assert np.all(np.isfinite(k.zeta(rho)))


@pytest.mark.parametrize("name", REGULAR)
def test_mass_moment_is_one(name):
    assert get_kernel(name).moment(0) == pytest.approx(1.0, abs=2e-3)


@pytest.mark.parametrize("name", ["algebraic4", "algebraic6"])
def test_second_moment_vanishes(name):
    assert get_kernel(name).moment(2) == pytest.approx(0.0, abs=1e-4)


def test_fourth_moment_vanishes_for_sixth_order():
    # slow 1/rho^4 tail: generous integration range, loose tolerance
    m4 = get_kernel("algebraic6").moment(4, rmax=400.0, n=400_001)
    assert abs(m4) < 2e-2


class TestSingularKernel:
    def test_q_is_unity(self):
        k = SingularKernel()
        assert np.all(k.q(np.linspace(0.1, 5, 10)) == 1.0)

    def test_f_radial_is_inverse_cube(self):
        k = SingularKernel()
        r = np.array([0.5, 1.0, 2.0])
        assert np.allclose(k.f_radial(r, 123.0), 1.0 / r**3)

    def test_softening_removes_singularity(self):
        k = SingularKernel(softening=0.1)
        assert np.isfinite(k.f_radial(np.array([0.0]), 1.0))[0]

    def test_negative_softening_rejected(self):
        with pytest.raises(ValueError):
            SingularKernel(softening=-1.0)

    def test_sigma_independence(self):
        k = SingularKernel()
        r = np.linspace(0.1, 3, 7)
        assert np.allclose(k.f_radial(r, 1.0), k.f_radial(r, 42.0))


class TestGaussianSeries:
    def test_series_matches_closed_form_at_same_point(self):
        k = GaussianKernel()
        rho = np.array([k._series_cut * 0.98])  # series branch
        series = k.q_over_rho3(rho)[0]
        closed = k.q(rho)[0] / rho[0] ** 3  # closed form, same point
        assert series == pytest.approx(closed, rel=1e-7)

    def test_w_series_matches_closed_form_at_same_point(self):
        k = GaussianKernel()
        rho = np.array([k._series_cut * 0.98])
        series = k.w(rho)[0]
        closed = (rho[0] * k.qprime(rho)[0] - 3 * k.q(rho)[0]) / rho[0] ** 5
        assert series == pytest.approx(closed, rel=1e-7)


@settings(max_examples=50, deadline=None)
@given(
    rho=st.floats(min_value=0.6, max_value=50.0),
    name=st.sampled_from(REGULAR),
)
def test_radial_factors_relation_property(rho, name):
    """F and G are consistent: G = (rho q' - 3 q) / (sigma^5 rho^5).

    rho is kept away from 0 because the *reference* expression
    ``q(rho)/rho^3`` cancels catastrophically there (the implementation's
    series/rational forms are the numerically correct branch; small-rho
    accuracy is covered by the series-vs-closed-form tests above).
    """
    k = get_kernel(name)
    sigma = 0.7
    r = np.array([rho * sigma])
    f = k.f_radial(r, sigma)[0]
    g = k.g_radial(r, sigma)[0]
    q = k.q(np.array([rho]))[0]
    qp = k.qprime(np.array([rho]))[0]
    assert f == pytest.approx(q / (sigma**3 * rho**3), rel=1e-8, abs=1e-12)
    assert g == pytest.approx(
        (rho * qp - 3 * q) / (sigma**5 * rho**5), rel=1e-6, abs=1e-10
    )


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(ALGEBRAIC), scale=st.floats(0.1, 10.0))
def test_zeta_positive_mass_property(name, scale):
    """Integral of 4 pi rho^2 zeta over [0, R] equals q(R) for any R."""
    k = get_kernel(name)
    rho = np.linspace(0, scale, 20001)
    integral = np.trapezoid(k.qprime(rho), rho)
    assert integral == pytest.approx(k.q(np.array([scale]))[0], abs=1e-5)
