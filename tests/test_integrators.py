"""Tests for the Runge-Kutta baselines."""

import numpy as np
import pytest

from repro.integrators import (
    ButcherTableau,
    RungeKutta,
    available_integrators,
    get_integrator,
    integrate,
)


class TestTableauValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ButcherTableau("bad", 1, ((0.0,),), (0.5,), (0.0,))

    def test_must_be_explicit(self):
        with pytest.raises(ValueError, match="not explicit"):
            ButcherTableau("bad", 1, ((1.0,),), (1.0,), (0.0,))

    def test_inconsistent_stage_counts(self):
        with pytest.raises(ValueError, match="stage counts"):
            ButcherTableau("bad", 1, ((0.0,),), (1.0,), (0.0, 0.0))

    def test_row_length_check(self):
        with pytest.raises(ValueError, match="wrong length"):
            ButcherTableau("bad", 2, ((0.0,), (0.5, 0.0)), (0.5, 0.5), (0.0, 0.5))


class TestRegistry:
    def test_available(self):
        names = available_integrators()
        assert {"euler", "rk2", "rk3", "rk4"} <= set(names)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown integrator"):
            get_integrator("rk99")

    @pytest.mark.parametrize("name,order", [
        ("euler", 1), ("rk2", 2), ("rk2_heun", 2), ("rk3", 3), ("rk4", 4),
    ])
    def test_orders_registered(self, name, order):
        assert get_integrator(name).order == order


class TestConvergenceOrders:
    """Measured order on the linear test system must match the tableau."""

    @pytest.mark.parametrize("name", ["euler", "rk2", "rk2_heun", "rk3", "rk4"])
    def test_order(self, name, linear_problem):
        integ = get_integrator(name)
        u0 = np.array([1.0, 0.5])
        t_end = 1.0
        exact = linear_problem.exact(t_end, u0)
        errors = []
        for dt in (0.1, 0.05, 0.025):
            u = integ.run(linear_problem, u0, 0.0, t_end, dt)
            errors.append(np.max(np.abs(u - exact)))
        rates = [np.log2(errors[i] / errors[i + 1]) for i in range(2)]
        assert rates[-1] == pytest.approx(integ.order, abs=0.35)


class TestIntegrateDriver:
    def test_callback_called_at_every_step(self, linear_problem):
        times = []
        get_integrator("rk2").run(
            linear_problem, np.array([1.0, 0.0]), 0.0, 1.0, 0.25,
            callback=lambda t, u: times.append(t),
        )
        assert times == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_non_divisible_interval_rejected(self, linear_problem):
        with pytest.raises(ValueError, match="integer multiple"):
            get_integrator("rk2").run(
                linear_problem, np.array([1.0, 0.0]), 0.0, 1.0, 0.3
            )

    def test_zero_span_returns_initial(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        u = get_integrator("rk4").run(linear_problem, u0, 0.0, 0.0, 0.1)
        assert np.array_equal(u, u0)

    def test_negative_span_rejected(self, linear_problem):
        with pytest.raises(ValueError, match="t_end"):
            get_integrator("rk4").run(
                linear_problem, np.array([1.0, 0.0]), 1.0, 0.0, 0.1
            )

    def test_negative_dt_rejected(self, linear_problem):
        with pytest.raises(ValueError, match="dt"):
            get_integrator("rk4").run(
                linear_problem, np.array([1.0, 0.0]), 0.0, 1.0, -0.1
            )

    def test_initial_state_not_mutated(self, linear_problem):
        u0 = np.array([1.0, 0.0])
        keep = u0.copy()
        get_integrator("rk4").run(linear_problem, u0, 0.0, 1.0, 0.5)
        assert np.array_equal(u0, keep)

    def test_rk2_step_hand_computed(self, scalar_problem):
        """One midpoint-RK2 step against a hand computation."""
        rk2 = get_integrator("rk2")
        u0 = np.array([1.0])
        dt = 0.1
        k1 = scalar_problem.rhs(0.0, u0)
        k2 = scalar_problem.rhs(dt / 2, u0 + dt / 2 * k1)
        expected = u0 + dt * k2
        out = rk2.step(scalar_problem, 0.0, dt, u0)
        assert np.allclose(out, expected)
