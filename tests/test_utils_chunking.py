"""Tests for repro.utils.chunking."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.chunking import chunk_pairs_budget, chunk_ranges


class TestChunkRanges:
    def test_exact_division(self):
        assert list(chunk_ranges(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder(self):
        assert list(chunk_ranges(5, 2)) == [(0, 2), (2, 4), (4, 5)]

    def test_chunk_larger_than_n(self):
        assert list(chunk_ranges(3, 10)) == [(0, 3)]

    def test_zero_n(self):
        assert list(chunk_ranges(0, 4)) == []

    def test_negative_n_raises(self):
        with pytest.raises(ValueError, match="n must be"):
            list(chunk_ranges(-1, 4))

    def test_nonpositive_chunk_raises(self):
        with pytest.raises(ValueError, match="chunk must be"):
            list(chunk_ranges(5, 0))

    @given(n=st.integers(0, 5000), chunk=st.integers(1, 500))
    def test_ranges_cover_exactly(self, n, chunk):
        ranges = list(chunk_ranges(n, chunk))
        covered = 0
        prev_stop = 0
        for start, stop in ranges:
            assert start == prev_stop
            assert stop > start
            assert stop - start <= chunk
            covered += stop - start
            prev_stop = stop
        assert covered == n


class TestChunkPairsBudget:
    def test_respects_minimum(self):
        assert chunk_pairs_budget(10**9, minimum=16) == 16

    def test_small_source_count_gives_big_chunks(self):
        assert chunk_pairs_budget(10) > 1000

    def test_zero_sources(self):
        assert chunk_pairs_budget(0) == 16

    @given(n=st.integers(1, 10**7))
    def test_budget_bound(self, n):
        chunk = chunk_pairs_budget(n, bytes_per_pair=96,
                                   budget_bytes=64 * 2**20, minimum=16)
        # either clamped to minimum or within the memory budget
        assert chunk == 16 or chunk * n * 96 <= 64 * 2**20 + 96 * n
