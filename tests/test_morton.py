"""Tests for space-filling curve keys."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tree.morton import (
    MAX_DEPTH,
    BoundingCube,
    cell_of_key,
    child_index,
    hilbert_encode,
    key_at_level,
    morton_decode,
    morton_encode,
    quantize,
)


class TestBoundingCube:
    def test_contains_all_points(self, rng):
        pts = rng.normal(size=(100, 3)) * 5
        cube = BoundingCube.of_points(pts)
        assert np.all(pts >= cube.corner - 1e-12)
        assert np.all(pts <= cube.corner + cube.size + 1e-12)

    def test_cubic(self, rng):
        pts = rng.normal(size=(50, 3)) * np.array([1.0, 10.0, 0.1])
        cube = BoundingCube.of_points(pts)
        assert cube.size >= 10.0  # driven by the largest extent

    def test_degenerate_point_set(self):
        cube = BoundingCube.of_points(np.zeros((5, 3)))
        assert cube.size > 0

    def test_empty(self):
        cube = BoundingCube.of_points(np.zeros((0, 3)))
        assert cube.size == 1.0

    def test_center(self):
        cube = BoundingCube(corner=np.array([0.0, 0.0, 0.0]), size=2.0)
        assert np.allclose(cube.center(), [1.0, 1.0, 1.0])


class TestQuantize:
    def test_range(self, rng):
        pts = rng.random((200, 3))
        cube = BoundingCube.of_points(pts)
        ijk = quantize(pts, cube, depth=10)
        assert ijk.min() >= 0
        assert ijk.max() < 2**10

    def test_bad_depth(self, rng):
        pts = rng.random((5, 3))
        cube = BoundingCube.of_points(pts)
        with pytest.raises(ValueError, match="depth"):
            quantize(pts, cube, depth=0)
        with pytest.raises(ValueError, match="depth"):
            quantize(pts, cube, depth=22)


class TestMorton:
    def test_roundtrip_full_depth(self, rng):
        ijk = rng.integers(0, 2**MAX_DEPTH, size=(500, 3)).astype(np.uint64)
        keys = morton_encode(ijk)
        assert np.array_equal(morton_decode(keys), ijk)

    def test_placeholder_bit_set(self):
        keys = morton_encode(np.zeros((1, 3), dtype=np.uint64))
        assert keys[0] == np.uint64(1) << np.uint64(63)

    def test_origin_key_is_placeholder_only(self):
        keys = morton_encode(np.zeros((3, 3), dtype=np.uint64), depth=4)
        assert np.all(keys == np.uint64(1 << 12))

    def test_unit_steps(self):
        """Adjacent coordinates toggle the right interleaved bit."""
        base = np.zeros((1, 3), dtype=np.uint64)
        kx = morton_encode(np.array([[1, 0, 0]], dtype=np.uint64), depth=4)
        ky = morton_encode(np.array([[0, 1, 0]], dtype=np.uint64), depth=4)
        kz = morton_encode(np.array([[0, 0, 1]], dtype=np.uint64), depth=4)
        k0 = morton_encode(base, depth=4)
        assert kx[0] - k0[0] == 1
        assert ky[0] - k0[0] == 2
        assert kz[0] - k0[0] == 4

    def test_key_at_level_prefix(self):
        ijk = np.array([[5, 3, 7]], dtype=np.uint64)
        full = morton_encode(ijk, depth=5)
        root = key_at_level(full, 0, depth=5)
        assert root[0] == 1  # placeholder only
        lvl5 = key_at_level(full, 5, depth=5)
        assert lvl5[0] == full[0]

    def test_child_index_in_range(self, rng):
        ijk = rng.integers(0, 2**MAX_DEPTH, size=(100, 3)).astype(np.uint64)
        keys = morton_encode(ijk)
        for level in (1, 5, MAX_DEPTH):
            ci = child_index(keys, level)
            assert np.all(ci < 8)

    def test_sorted_keys_group_spatially(self, rng):
        """Consecutive Morton keys have nearby coordinates on average."""
        pts = rng.random((2000, 3))
        cube = BoundingCube.of_points(pts)
        keys = morton_encode(quantize(pts, cube))
        order = np.argsort(keys)
        sorted_pts = pts[order]
        gaps = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1)
        random_gaps = np.linalg.norm(
            np.diff(pts, axis=0), axis=1
        )
        assert gaps.mean() < 0.5 * random_gaps.mean()


class TestCellOfKey:
    def test_root_cell(self):
        cube = BoundingCube(corner=np.zeros(3), size=8.0)
        centers, edge = cell_of_key(np.array([1], dtype=np.uint64), 0, cube)
        assert edge == 8.0
        assert np.allclose(centers[0], [4.0, 4.0, 4.0])

    def test_level1_octants(self):
        cube = BoundingCube(corner=np.zeros(3), size=2.0)
        # octant 7 at level 1: i=j=k=1 -> center (1.5, 1.5, 1.5)
        key = np.array([(1 << 3) | 7], dtype=np.uint64)
        centers, edge = cell_of_key(key, 1, cube)
        assert edge == 1.0
        assert np.allclose(centers[0], [1.5, 1.5, 1.5])

    def test_consistency_with_quantize(self, rng):
        """A particle's level-l cell contains the particle."""
        pts = rng.random((50, 3))
        cube = BoundingCube.of_points(pts)
        keys = morton_encode(quantize(pts, cube))
        for level in (1, 3, 6):
            kl = key_at_level(keys, level)
            centers, edge = cell_of_key(kl, level, cube)
            assert np.all(np.abs(pts - centers) <= edge / 2 + 1e-9)


class TestHilbert:
    def test_bijective_on_grid(self):
        """All 512 cells of a 8^3 grid get distinct keys."""
        g = np.arange(8, dtype=np.uint64)
        ijk = np.array(np.meshgrid(g, g, g)).reshape(3, -1).T.copy()
        keys = hilbert_encode(ijk, depth=3)
        assert len(np.unique(keys)) == 512

    def test_locality_better_than_morton(self, rng):
        """Hilbert neighbours along the curve are (weakly) closer in
        space than Morton neighbours on the same point set."""
        pts = rng.random((4000, 3))
        cube = BoundingCube.of_points(pts)
        ijk = quantize(pts, cube, depth=8)
        for encode in (morton_encode, hilbert_encode):
            keys = encode(ijk, 8)
            order = np.argsort(keys)
            gaps = np.linalg.norm(np.diff(pts[order], axis=0), axis=1)
            if encode is morton_encode:
                morton_mean = gaps.mean()
            else:
                hilbert_mean = gaps.mean()
        assert hilbert_mean <= morton_mean * 1.05

    def test_curve_is_continuous_on_grid(self):
        """Consecutive Hilbert indices are face-adjacent cells."""
        g = np.arange(4, dtype=np.uint64)
        ijk = np.array(np.meshgrid(g, g, g)).reshape(3, -1).T.copy()
        keys = hilbert_encode(ijk, depth=2)
        order = np.argsort(keys)
        steps = np.abs(np.diff(ijk[order].astype(int), axis=0)).sum(axis=1)
        assert np.all(steps == 1)


@settings(max_examples=30, deadline=None)
@given(
    ijk=arrays(np.int64, (20, 3), elements=st.integers(0, 2**21 - 1)),
)
def test_morton_roundtrip_property(ijk):
    u = ijk.astype(np.uint64)
    assert np.array_equal(morton_decode(morton_encode(u)), u)


@settings(max_examples=20, deadline=None)
@given(
    ijk=arrays(np.int64, (30, 3), elements=st.integers(0, 2**9 - 1)),
)
def test_morton_preserves_octant_order_property(ijk):
    """Points in distinct level-1 octants sort by octant id."""
    u = ijk.astype(np.uint64)
    keys = morton_encode(u, depth=9)
    octant = (
        (u[:, 0] >> 8) | ((u[:, 1] >> 8) << np.uint64(1))
        | ((u[:, 2] >> 8) << np.uint64(2))
    )
    order = np.argsort(keys, kind="stable")
    sorted_octants = octant[order]
    assert np.all(np.diff(sorted_octants.astype(int)) >= 0)
