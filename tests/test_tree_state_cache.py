"""TreeState cache: hits, invalidation, fine/coarse sharing, counters."""

import numpy as np
import pytest

from repro.tree import TreeEvaluator, TreeStateCache, array_fingerprint
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig


@pytest.fixture(scope="module")
def sheet():
    cfg = SheetConfig(n=300)
    ps = spherical_vortex_sheet(cfg)
    return ps, cfg, get_kernel("algebraic6")


def _fresh_evaluator(sheet, **kw):
    ps, cfg, kernel = sheet
    kw.setdefault("theta", 0.3)
    kw.setdefault("leaf_size", 24)
    return TreeEvaluator(kernel, cfg.sigma, **kw)


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, rng):
        a = rng.normal(size=(50, 3))
        assert array_fingerprint(a) == array_fingerprint(a.copy())
        b = a.copy()
        b[17, 2] += 1e-12
        assert array_fingerprint(a) != array_fingerprint(b)

    def test_shape_and_dtype_matter(self):
        flat = np.zeros(12)
        assert array_fingerprint(flat) != array_fingerprint(
            flat.reshape(4, 3)
        )
        assert array_fingerprint(flat) != array_fingerprint(
            flat.astype(np.float32)
        )

    def test_non_contiguous_input(self, rng):
        a = rng.normal(size=(40, 6))
        view = a[:, ::2]
        assert array_fingerprint(view) == array_fingerprint(
            np.ascontiguousarray(view)
        )


class TestRepeatedEvaluation:
    def test_identical_state_hits_every_stage(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        first = ev.field(ps.positions, ps.charges)
        s = ev.last_stats
        assert not (s.build_cached or s.moments_cached or s.traversal_cached)
        second = ev.field(ps.positions, ps.charges)
        s = ev.last_stats
        assert s.build_cached and s.moments_cached and s.traversal_cached
        assert np.array_equal(first.velocity, second.velocity)
        assert np.array_equal(first.gradient, second.gradient)
        cs = ev.cache_stats
        assert cs.build_hits == 1 and cs.build_misses == 1
        assert cs.moment_hits == 1 and cs.moment_misses == 1
        assert cs.traversal_hits == 1 and cs.traversal_misses == 1

    def test_perturbed_positions_invalidate(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.field(ps.positions, ps.charges)
        moved = ps.positions.copy()
        moved[0, 0] += 1e-9
        ev.field(moved, ps.charges)
        s = ev.last_stats
        assert not s.build_cached
        assert not s.moments_cached
        assert not s.traversal_cached

    def test_perturbed_charges_invalidate_moments_only(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.field(ps.positions, ps.charges)
        bumped = ps.charges.copy()
        bumped[3, 1] *= 1.0 + 1e-10
        ev.field(ps.positions, bumped)
        s = ev.last_stats
        assert s.build_cached  # same positions: tree reused
        assert not s.moments_cached  # new charges: moments recomputed
        assert s.traversal_cached  # traversal is geometry-only

    def test_charge_change_is_bitwise_pure(self, sheet):
        """Regression: the engine layout (cached per geometry) lazily
        caches *moment-derived* far weights.  Before the weights were
        keyed by moment identity, evaluating charge set A and then
        charge set B over the same positions served B the weights built
        from A's moments — the warm path returned a different answer
        than a cold evaluator.  Caught in a P_T=4 x P_N=3 PFASST run by
        the node-group digest cross-check."""
        ps, _, _ = sheet
        other = ps.charges * 1.1 + 1e-3
        warm = _fresh_evaluator(sheet)
        warm.field(ps.positions, other, gradient=True)
        hit = warm.field(ps.positions, ps.charges, gradient=True)
        s = warm.last_stats
        assert s.build_cached and s.traversal_cached  # warm geometry
        cold = _fresh_evaluator(sheet).field(
            ps.positions, ps.charges, gradient=True
        )
        assert np.array_equal(hit.velocity, cold.velocity)
        assert np.array_equal(hit.gradient, cold.gradient)

    def test_inplace_mutation_cannot_go_stale(self, sheet):
        """Content fingerprinting: mutating the caller's array in place is
        a miss, never a stale hit."""
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        pos = ps.positions.copy()
        before = ev.field(pos, ps.charges)
        pos[: pos.shape[0] // 2] *= 1.05  # in-place, same object identity
        after = ev.field(pos, ps.charges)
        assert not ev.last_stats.build_cached
        assert not np.allclose(before.velocity, after.velocity)

    def test_build_timed_only_on_miss(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.field(ps.positions, ps.charges)
        builds = ev.phases.timers["tree_build"].count
        ev.field(ps.positions, ps.charges)
        assert ev.phases.timers["tree_build"].count == builds


class TestFineCoarseSharing:
    def test_coarsened_shares_cache_and_tree(self, sheet):
        ps, _, _ = sheet
        fine = _fresh_evaluator(sheet, theta=0.3)
        coarse = fine.coarsened(0.6)
        assert coarse.cache is fine.cache
        assert coarse.theta == 0.6
        fine.field(ps.positions, ps.charges)
        coarse.field(ps.positions, ps.charges)
        s = coarse.last_stats
        # coarse reuses the fine build + moments, runs its own traversal
        assert s.build_cached and s.moments_cached
        assert not s.traversal_cached
        assert len(fine.cache) == 1

    def test_shared_results_match_unshared(self, sheet):
        ps, _, _ = sheet
        fine = _fresh_evaluator(sheet, theta=0.3)
        shared = fine.coarsened(0.6)
        fine.field(ps.positions, ps.charges)
        out_shared = shared.field(ps.positions, ps.charges)
        solo = _fresh_evaluator(sheet, theta=0.6)
        out_solo = solo.field(ps.positions, ps.charges)
        assert np.array_equal(out_shared.velocity, out_solo.velocity)
        assert np.array_equal(out_shared.gradient, out_solo.gradient)

    def test_explicit_shared_cache_parameter(self, sheet):
        ps, cfg, kernel = sheet
        cache = TreeStateCache(maxsize=4)
        a = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=24,
                          cache=cache)
        b = TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=24,
                          cache=cache)
        a.field(ps.positions, ps.charges)
        b.field(ps.positions, ps.charges)
        assert cache.stats.build_hits == 1
        assert cache.stats.build_misses == 1

    def test_different_leaf_size_is_a_different_state(self, sheet):
        ps, cfg, kernel = sheet
        cache = TreeStateCache()
        a = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=16,
                          cache=cache)
        b = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=32,
                          cache=cache)
        a.field(ps.positions, ps.charges)
        b.field(ps.positions, ps.charges)
        assert cache.stats.build_misses == 2
        assert len(cache) == 2


class TestEviction:
    def test_lru_bound_holds(self, sheet, rng):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.cache.maxsize = 2
        configs = [ps.positions + 0.01 * k for k in range(4)]
        for pos in configs:
            ev.field(pos, ps.charges)
        assert len(ev.cache) == 2
        # oldest state evicted: re-evaluating it is a miss again
        ev.field(configs[0], ps.charges)
        assert not ev.last_stats.build_cached

    def test_clear(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.field(ps.positions, ps.charges)
        ev.cache.clear()
        assert len(ev.cache) == 0
        ev.field(ps.positions, ps.charges)
        assert not ev.last_stats.build_cached

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            TreeStateCache(maxsize=0)


class TestStatsPlumbing:
    def test_cache_stats_as_dict_keys(self, sheet):
        ps, _, _ = sheet
        ev = _fresh_evaluator(sheet)
        ev.field(ps.positions, ps.charges)
        d = ev.cache_stats.as_dict()
        assert set(d) == {
            "build_hits", "build_misses", "moment_hits", "moment_misses",
            "traversal_hits", "traversal_misses",
        }

    def test_pfasst_surfaces_evaluator_stats(self, sheet):
        from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
        from repro.vortex import VortexProblem

        ps, _, _ = sheet
        fine_ev = _fresh_evaluator(sheet, theta=0.3)
        fine = VortexProblem(ps.volumes, fine_ev)
        coarse = fine.coarsened(0.6)
        config = PfasstConfig(t0=0.0, t_end=0.5, n_steps=1, iterations=2)
        specs = [
            LevelSpec(fine, num_nodes=3, sweeps=1),
            LevelSpec(coarse, num_nodes=2, sweeps=2),
        ]
        result = run_pfasst(config, specs, ps.state(), p_time=1)
        assert len(result.evaluator_stats) == 2
        for entry in result.evaluator_stats:
            assert entry["calls"] > 0
        # FAS restriction re-evaluates the coarse RHS at fine states whose
        # trees were just built — the shared cache must see build hits
        assert result.evaluator_stats[1]["build_hits"] > 0
