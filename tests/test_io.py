"""Tests for checkpoint I/O."""

import numpy as np
import pytest

from repro.io import (
    load_particles,
    load_run_summary,
    save_particles,
    save_run_summary,
)
from repro.vortex import spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig


class TestParticleCheckpoints:
    def test_roundtrip(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=100))
        path = save_particles(tmp_path / "state.npz", ps, time=2.5,
                              metadata={"theta": 0.3})
        ps2, time, meta = load_particles(path)
        assert time == 2.5
        assert meta == {"theta": 0.3}
        assert np.array_equal(ps2.positions, ps.positions)
        assert np.array_equal(ps2.vorticity, ps.vorticity)
        assert np.array_equal(ps2.volumes, ps.volumes)

    def test_suffix_appended(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "state", ps)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_default_metadata_empty(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "s.npz", ps)
        _, time, meta = load_particles(path)
        assert time == 0.0
        assert meta == {}

    def test_future_version_rejected(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "s.npz", ps)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_particles(path)

    def test_loaded_system_usable(self, tmp_path):
        """A loaded checkpoint can continue an integration run."""
        from repro.integrators import get_integrator
        from repro.vortex import DirectEvaluator, VortexProblem, get_kernel

        cfg = SheetConfig(n=60)
        ps = spherical_vortex_sheet(cfg)
        path = save_particles(tmp_path / "c.npz", ps, time=0.0)
        ps2, t0, _ = load_particles(path)
        prob = VortexProblem(
            ps2.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        )
        u = get_integrator("rk2").run(prob, ps2.state(), t0, t0 + 0.5, 0.5)
        assert np.all(np.isfinite(u))


class TestRunSummaries:
    def test_roundtrip(self, tmp_path):
        summary = {"speedup": np.float64(3.5), "p_t": np.int64(8),
                   "curve": np.array([1.0, 2.0])}
        path = save_run_summary(tmp_path / "run.json", summary)
        loaded = load_run_summary(path)
        assert loaded == {"speedup": 3.5, "p_t": 8, "curve": [1.0, 2.0]}

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_run_summary(tmp_path / "x.json", {"bad": object()})
