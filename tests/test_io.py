"""Tests for checkpoint I/O."""

import numpy as np
import pytest

from repro.io import (
    CheckpointCorruptionError,
    atomic_write_bytes,
    load_particles,
    load_run_summary,
    read_crc_container,
    save_particles,
    save_run_summary,
    write_crc_container,
)
from repro.vortex import spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig


class TestParticleCheckpoints:
    def test_roundtrip(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=100))
        path = save_particles(tmp_path / "state.npz", ps, time=2.5,
                              metadata={"theta": 0.3})
        ps2, time, meta = load_particles(path)
        assert time == 2.5
        assert meta == {"theta": 0.3}
        assert np.array_equal(ps2.positions, ps.positions)
        assert np.array_equal(ps2.vorticity, ps.vorticity)
        assert np.array_equal(ps2.volumes, ps.volumes)

    def test_suffix_appended(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "state", ps)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_default_metadata_empty(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "s.npz", ps)
        _, time, meta = load_particles(path)
        assert time == 0.0
        assert meta == {}

    def test_future_version_rejected(self, tmp_path):
        ps = spherical_vortex_sheet(SheetConfig(n=10))
        path = save_particles(tmp_path / "s.npz", ps)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_particles(path)

    def test_loaded_system_usable(self, tmp_path):
        """A loaded checkpoint can continue an integration run."""
        from repro.integrators import get_integrator
        from repro.vortex import DirectEvaluator, VortexProblem, get_kernel

        cfg = SheetConfig(n=60)
        ps = spherical_vortex_sheet(cfg)
        path = save_particles(tmp_path / "c.npz", ps, time=0.0)
        ps2, t0, _ = load_particles(path)
        prob = VortexProblem(
            ps2.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        )
        u = get_integrator("rk2").run(prob, ps2.state(), t0, t0 + 0.5, 0.5)
        assert np.all(np.isfinite(u))


class TestRunSummaries:
    def test_roundtrip(self, tmp_path):
        summary = {"speedup": np.float64(3.5), "p_t": np.int64(8),
                   "curve": np.array([1.0, 2.0])}
        path = save_run_summary(tmp_path / "run.json", summary)
        loaded = load_run_summary(path)
        assert loaded == {"speedup": 3.5, "p_t": 8, "curve": [1.0, 2.0]}

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_run_summary(tmp_path / "x.json", {"bad": object()})


class TestDurability:
    """Atomic-write + CRC hardening of the particle checkpoints."""

    def _saved(self, tmp_path, n=20):
        ps = spherical_vortex_sheet(SheetConfig(n=n))
        return ps, save_particles(tmp_path / "state.npz", ps, time=1.5)

    def test_no_temp_files_left_behind(self, tmp_path):
        _, path = self._saved(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        ps, path = self._saved(tmp_path)
        save_particles(path, ps, time=9.0)  # replaces in place
        _, time, _ = load_particles(path)
        assert time == 9.0
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_truncated_archive_reports_corruption(self, tmp_path):
        _, path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            load_particles(path)

    def test_crc_mismatch_reports_corruption(self, tmp_path):
        ps, path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["positions"] = arrays["positions"] + 1.0  # bytes change
        np.savez_compressed(path, **arrays)  # stale stored crc
        with pytest.raises(CheckpointCorruptionError, match="CRC"):
            load_particles(path)

    def test_v1_archive_without_crc_still_loads(self, tmp_path):
        """Back-compat: pre-hardening checkpoints carry no crc entry."""
        ps, path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files if k != "crc"}
        arrays["format_version"] = np.int64(1)
        np.savez_compressed(path, **arrays)
        ps2, time, _ = load_particles(path)
        assert time == 1.5
        assert np.array_equal(ps2.positions, ps.positions)


class TestCrcContainer:
    MAGIC = b"TESTMAGIC1"

    def test_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_crc_container(path, self.MAGIC, b"payload-bytes")
        assert read_crc_container(path, self.MAGIC) == b"payload-bytes"

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"TES")
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            read_crc_container(path, self.MAGIC)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_crc_container(path, b"OTHERMAGIC", b"payload")
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            read_crc_container(path, self.MAGIC)

    def test_flipped_payload_bit_rejected(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_crc_container(path, self.MAGIC, b"payload-bytes")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptionError, match="CRC"):
            read_crc_container(path, self.MAGIC)

    def test_atomic_write_bytes_no_droppings(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"abc")
        assert target.read_bytes() == b"abc"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]
