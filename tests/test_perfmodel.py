"""Tests for the machine/scaling performance model."""

import numpy as np
import pytest

from repro.perfmodel import (
    JUGENE,
    MachineModel,
    PepcScalingModel,
    calibrate_interactions,
)


class TestMachine:
    def test_jugene_core_count(self):
        assert JUGENE.max_cores == 294_912
        assert JUGENE.cores_per_node == 4

    def test_interaction_time_positive(self):
        assert JUGENE.interaction_time() > 0

    def test_transfer_time_monotone_in_bytes(self):
        assert JUGENE.transfer_time(10**6) > JUGENE.transfer_time(10**3)


class TestScalingModel:
    @pytest.fixture
    def model(self):
        return PepcScalingModel()

    def test_work_term_scales_inversely_at_small_p(self, model):
        t1 = model.traversal_time(10**6, 64)
        t2 = model.traversal_time(10**6, 128)
        assert t2 < t1
        assert t2 > t1 / 2.5  # not superlinear

    def test_branch_exchange_grows_with_p(self, model):
        times = [model.branch_exchange_time(10**6, p)
                 for p in (64, 1024, 16384)]
        assert times[0] < times[1] < times[2]

    def test_total_time_saturates(self, model):
        """Fig. 5: for fixed N the total stops improving and turns up."""
        n = 125_000
        cores = [2**k for k in range(0, 19)]
        totals = [model.point(n, c).total for c in cores]
        best = int(np.argmin(totals))
        assert 0 < best < len(cores) - 1
        assert totals[-1] > totals[best]

    def test_saturation_moves_right_with_n(self, model):
        """Bigger problems saturate at higher core counts (Fig. 5)."""
        s_small = model.saturation_cores(125_000)
        s_mid = model.saturation_cores(8_000_000)
        s_large = model.saturation_cores(2_048_000_000)
        assert s_small < s_mid <= s_large

    def test_point_decomposition_sums(self, model):
        p = model.point(10**6, 256)
        assert p.total == pytest.approx(
            p.traversal + p.branch_exchange + p.build
        )

    def test_sweep_returns_curve(self, model):
        pts = model.sweep(10**6, [64, 256, 1024])
        assert [p.cores for p in pts] == [64, 256, 1024]

    def test_interactions_per_particle_grows_logarithmically(self, model):
        i1 = model.interactions_per_particle(10**4)
        i2 = model.interactions_per_particle(10**6)
        assert i2 > i1
        assert i2 < 10 * i1


class TestCalibration:
    def test_exact_fit_of_log_law(self):
        a_true, b_true = -30.0, 28.0
        meas = {
            2**k: a_true + b_true * k for k in (10, 13, 16, 20)
        }
        a, b = calibrate_interactions(meas)
        assert a == pytest.approx(a_true, abs=1e-8)
        assert b == pytest.approx(b_true, abs=1e-8)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two"):
            calibrate_interactions({1000: 100.0})

    def test_calibrated_model_reproduces_measurements(self, rng):
        meas = {10**4: 300.0, 10**5: 420.0, 10**6: 540.0}
        a, b = calibrate_interactions(meas)
        model = PepcScalingModel(ipp_a=a, ipp_b=b)
        for n, ipp in meas.items():
            assert model.interactions_per_particle(n) == pytest.approx(
                ipp, rel=0.05
            )
