"""Unit tests for the cluster-frame far factorization and batched near path.

Covers the APIs introduced by the batched-engine redesign:

* ``SmoothingKernel.f_g_from_r2`` — squared-distance radial factors must
  match ``f_radial`` / ``g_radial`` for every kernel (the algebraic
  family overrides it with a sqrt-free Horner form; the base class takes
  the square root).
* ``localbasis.monomial_rows`` / ``monomial_basis`` — the incremental
  monomial tables, checked against explicit products.
* ``localbasis.node_far_weights`` — contracting the per-node weight
  matrix with the D-weighted monomial vector must reproduce
  ``evaluate_vortex_far_pairs`` exactly.
* The near-field GEMM expansion — must agree with the explicit
  cross-product branch to rounding error when forced onto the same
  interaction lists.
"""

import numpy as np
import pytest

from repro.tree import TreeEvaluator, engine
from repro.tree.evaluate import evaluate_vortex_far_pairs
from repro.tree.localbasis import (
    BLOCK_COL,
    BLOCK_END,
    BLOCK_LO,
    DEG_START,
    MONOMIALS,
    monomial_basis,
    monomial_rows,
    node_far_weights,
)
from repro.tree.profiles import radial_chain
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig

ALL_KERNELS = ["algebraic2", "algebraic4", "algebraic6", "gaussian",
               "singular"]


class TestFGFromR2:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_matches_radial_factors(self, name):
        kernel = get_kernel(name)
        rng = np.random.default_rng(7)
        sigma = 0.37
        r = rng.uniform(0.05, 6.0, size=257) * sigma
        f, g = kernel.f_g_from_r2(r * r, sigma, gradient=True)
        np.testing.assert_allclose(f, kernel.f_radial(r, sigma),
                                   rtol=1e-13, atol=0.0)
        np.testing.assert_allclose(g, kernel.g_radial(r, sigma),
                                   rtol=1e-13, atol=1e-300)

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_gradient_flag_skips_g(self, name):
        kernel = get_kernel(name)
        f, g = kernel.f_g_from_r2(np.array([0.4, 2.0]), 0.5, gradient=False)
        assert g is None
        assert np.all(np.isfinite(f))

    def test_does_not_mutate_input(self):
        kernel = get_kernel("algebraic6")
        r2 = np.linspace(0.1, 4.0, 33)
        keep = r2.copy()
        kernel.f_g_from_r2(r2, 0.8, gradient=True)
        np.testing.assert_array_equal(r2, keep)


class TestMonomialTables:
    def test_layout_constants_consistent(self):
        assert len(MONOMIALS) == 35
        # degree-major, DEG_START marks the degree boundaries
        for deg in range(5):
            for i in range(DEG_START[deg], DEG_START[deg + 1]):
                assert len(MONOMIALS[i]) == deg
        for blk in range(4):
            assert (BLOCK_END[blk] - BLOCK_COL[blk]
                    == DEG_START[blk + 2] - BLOCK_LO[blk])

    def test_monomial_basis_explicit_products(self):
        rng = np.random.default_rng(0)
        delta = rng.normal(size=(19, 3))
        table = monomial_basis(delta, 35)
        for i, mono in enumerate(MONOMIALS):
            expect = np.ones(delta.shape[0])
            for v in mono:
                expect = expect * delta[:, v]
            np.testing.assert_allclose(table[:, i], expect, rtol=1e-15)

    def test_monomial_rows_is_transpose(self):
        rng = np.random.default_rng(1)
        delta = rng.normal(size=(23, 3))
        out = np.empty((20, delta.shape[0]))
        monomial_rows(np.ascontiguousarray(delta.T), 20, out)
        np.testing.assert_array_equal(out, monomial_basis(delta, 20).T)


class TestNodeFarWeights:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(3)
        u, p = 7, 400
        centers = rng.normal(size=(u, 3))
        m0 = rng.normal(size=(u, 3))
        m1 = rng.normal(size=(u, 3, 3))
        m2s = rng.normal(size=(u, 3, 3, 3))
        m2 = 0.5 * (m2s + m2s.transpose(0, 1, 3, 2))
        nodemap = rng.integers(0, u, size=p)
        targets = rng.normal(size=(p, 3)) * 2.0 + 4.0
        return centers, m0, m1, m2, nodemap, targets

    @pytest.mark.parametrize("order", [0, 1, 2])
    @pytest.mark.parametrize("gradient", [False, True])
    def test_matches_pairwise_expansion(self, cloud, order, gradient):
        centers, m0, m1, m2, nodemap, targets = cloud
        kernel = get_kernel("algebraic6")
        sigma = 0.31
        uref, gref = evaluate_vortex_far_pairs(
            targets, centers[nodemap], m0[nodemap],
            m1[nodemap] if order >= 1 else None,
            m2[nodemap] if order >= 2 else None,
            kernel, sigma, order=order, gradient=gradient,
        )
        w = node_far_weights(
            m0, m1 if order >= 1 else None, m2 if order >= 2 else None,
            order, gradient,
        )
        r = targets - centers[nodemap]
        r2 = np.einsum("pi,pi->p", r, r)
        need = order + (2 if gradient else 1)
        chain = radial_chain(kernel, r2, sigma, need)
        psi = monomial_basis(r, DEG_START[need + 1])
        ycat = np.zeros((targets.shape[0], 45))
        for blk in range(need):
            lo, c0, c1 = BLOCK_LO[blk], BLOCK_COL[blk], BLOCK_END[blk]
            ycat[:, c0:c1] = chain[blk][:, None] * psi[:, lo:lo + (c1 - c0)]
        ncols = BLOCK_END[need - 1]
        out = np.einsum("pc,pco->po", ycat[:, :ncols],
                        w[nodemap][:, :ncols, :])
        scale = np.abs(uref).max()
        np.testing.assert_allclose(out[:, 0:3], uref, rtol=0.0,
                                   atol=1e-13 * scale)
        if gradient:
            gscale = np.abs(gref).max()
            np.testing.assert_allclose(
                out[:, 3:12].reshape(-1, 3, 3), gref, rtol=0.0,
                atol=1e-13 * gscale)

    def test_bad_order_raises(self, cloud):
        _, m0, m1, m2, _, _ = cloud
        with pytest.raises(ValueError, match="order"):
            node_far_weights(m0, m1, m2, 3, True)

    def test_missing_moments_raise(self, cloud):
        _, m0, _, m2, _, _ = cloud
        with pytest.raises(ValueError, match="first moments"):
            node_far_weights(m0, None, None, 1, False)
        with pytest.raises(ValueError, match="second moments"):
            node_far_weights(m0, m2[:, :, :, 0], None, 2, False)


class TestNearGemmBranch:
    """The two near-field branches must agree on identical pair lists.

    ``_NEAR_EXPAND_SIGMA`` gates the group-frame GEMM expansion; forcing
    it to +inf / 0 drives the same layout through both code paths.
    """

    @pytest.fixture(scope="class")
    def sheet(self):
        cfg = SheetConfig(n=500)
        ps = spherical_vortex_sheet(cfg)
        return ps, cfg, get_kernel("algebraic6")

    @pytest.mark.parametrize("gradient", [True, False])
    def test_gemm_matches_explicit(self, sheet, monkeypatch, gradient):
        ps, cfg, kernel = sheet
        fields = {}
        for mode, gate in (("gemm", np.inf), ("explicit", 0.0)):
            monkeypatch.setattr(engine, "_NEAR_EXPAND_SIGMA", gate)
            ev = TreeEvaluator(kernel, cfg.sigma, theta=0.4, leaf_size=24)
            fields[mode] = ev.field(ps.positions, ps.charges,
                                    gradient=gradient)
        vscale = np.abs(fields["explicit"].velocity).max()
        np.testing.assert_allclose(
            fields["gemm"].velocity, fields["explicit"].velocity,
            rtol=0.0, atol=1e-12 * vscale)
        if gradient:
            gscale = np.abs(fields["explicit"].gradient).max()
            np.testing.assert_allclose(
                fields["gemm"].gradient, fields["explicit"].gradient,
                rtol=0.0, atol=1e-12 * gscale)

    def test_theta_zero_has_no_far_pairs(self, sheet):
        """The gate's structural guard: theta=0 never expands."""
        ps, cfg, kernel = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.0, leaf_size=24)
        ev.field(ps.positions, ps.charges)
        st = next(iter(ev.cache._states.values()))
        layout = st.engine_layouts[(0.0, "bh")]
        assert layout.far_pairs == 0
