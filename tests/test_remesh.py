"""Tests for particle remeshing (paper outlook feature [25])."""

import numpy as np
import pytest

from repro.vortex import (
    DirectEvaluator,
    ParticleSystem,
    get_kernel,
    spherical_vortex_sheet,
)
from repro.vortex.remesh import lambda1, m4prime, remesh
from repro.vortex.rhs import biot_savart_direct
from repro.vortex.sheet import SheetConfig


class TestKernels1D:
    def test_lambda1_partition_of_unity(self):
        x = np.linspace(-0.5, 0.5, 11)
        total = lambda1(x) + lambda1(x - 1) + lambda1(x + 1)
        assert np.allclose(total, 1.0)

    def test_m4prime_partition_of_unity(self):
        x = np.linspace(-0.5, 0.5, 11)
        total = sum(m4prime(x - k) for k in range(-2, 3))
        assert np.allclose(total, 1.0, atol=1e-12)

    def test_m4prime_first_moment(self):
        """sum_k k W(x - k) = x (conservation of the first moment)."""
        x = np.linspace(-0.5, 0.5, 11)
        moment = sum(k * m4prime(x - k) for k in range(-3, 4))
        assert np.allclose(moment, x, atol=1e-12)

    def test_m4prime_second_moment(self):
        x = np.linspace(-0.5, 0.5, 11)
        moment = sum(k**2 * m4prime(x - k) for k in range(-3, 4))
        assert np.allclose(moment, x**2, atol=1e-12)

    def test_supports(self):
        assert lambda1(np.array([1.0]))[0] == 0.0
        assert m4prime(np.array([2.0]))[0] == 0.0
        assert m4prime(np.array([0.0]))[0] == 1.0


class TestRemesh:
    @pytest.fixture
    def sheet(self):
        return spherical_vortex_sheet(SheetConfig(n=300))

    @pytest.mark.parametrize("kernel", ["lambda1", "m4prime"])
    def test_total_charge_conserved(self, sheet, kernel):
        result = remesh(sheet, spacing=0.15, kernel=kernel, prune_below=0.0)
        before = sheet.charges.sum(axis=0)
        after = result.particles.charges.sum(axis=0)
        assert np.allclose(after, before, atol=1e-12)

    def test_linear_impulse_approximately_conserved(self, sheet):
        from repro.vortex.diagnostics import linear_impulse

        result = remesh(sheet, spacing=0.1, kernel="m4prime",
                        prune_below=0.0)
        before = linear_impulse(sheet)
        after = linear_impulse(result.particles)
        assert np.allclose(after, before,
                           atol=2e-2 * np.linalg.norm(before))

    def test_particles_on_lattice(self, sheet):
        h = 0.2
        result = remesh(sheet, spacing=h)
        frac = result.particles.positions / h
        assert np.allclose(frac, np.round(frac), atol=1e-9)

    def test_volumes_are_cell_volumes(self, sheet):
        h = 0.2
        result = remesh(sheet, spacing=h)
        assert np.allclose(result.particles.volumes, h**3)

    def test_far_velocity_field_preserved(self, sheet):
        """Remeshing must not change the induced far field much."""
        cfg = SheetConfig(n=300)
        kernel = get_kernel("algebraic6")
        probe = np.array([[3.0, 0.0, 0.0], [0.0, -3.0, 1.0]])
        before = biot_savart_direct(
            probe, sheet.positions, sheet.charges, kernel, cfg.sigma,
            gradient=False,
        ).velocity
        result = remesh(sheet, spacing=0.08, kernel="m4prime")
        after = biot_savart_direct(
            probe, result.particles.positions, result.particles.charges,
            kernel, cfg.sigma, gradient=False,
        ).velocity
        assert np.allclose(after, before,
                           atol=0.05 * np.max(np.abs(before)))

    def test_pruning_reduces_count(self, sheet):
        loose = remesh(sheet, spacing=0.15, prune_below=0.0)
        tight = remesh(sheet, spacing=0.15, prune_below=1e-3)
        assert tight.n_after <= loose.n_after

    def test_metadata(self, sheet):
        result = remesh(sheet, spacing=0.2)
        assert result.n_before == 300
        assert result.n_after == result.particles.n
        assert 0 < result.fill_fraction <= 1

    def test_bad_spacing(self, sheet):
        with pytest.raises(ValueError, match="spacing"):
            remesh(sheet, spacing=0.0)

    def test_single_particle_spreads_to_stencil(self):
        ps = ParticleSystem(
            np.array([[0.05, 0.05, 0.05]]),
            np.array([[0.0, 0.0, 1.0]]),
            np.array([2.0]),
        )
        result = remesh(ps, spacing=0.1, kernel="m4prime", prune_below=0.0)
        # charge conserved
        assert np.allclose(
            result.particles.charges.sum(axis=0), [0, 0, 2.0], atol=1e-12
        )
        # spread over at most 4^3 nodes
        assert result.n_after <= 64
