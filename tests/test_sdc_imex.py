"""Tests for semi-implicit (IMEX) SDC."""

import numpy as np
import pytest

from repro.sdc import IMEXSDCStepper, IMEXSDCSweeper, SplitDahlquist
from repro.sdc.quadrature import make_rule


class TestSplitDahlquist:
    def test_rhs_is_sum_of_parts(self):
        p = SplitDahlquist(-1.0, -10.0)
        u = np.array([2.0])
        assert np.allclose(p.rhs(0.0, u),
                           p.rhs_explicit(0.0, u) + p.rhs_implicit(0.0, u))

    def test_implicit_solve(self):
        p = SplitDahlquist(-1.0, -10.0)
        rhs = np.array([3.0])
        coeff = 0.1
        u = p.solve_implicit(0.0, coeff, rhs)
        assert np.allclose(u - coeff * p.rhs_implicit(0.0, u), rhs)


class TestSweeper:
    def test_requires_left_endpoint(self):
        p = SplitDahlquist(-1.0, -10.0)
        with pytest.raises(ValueError, match="left endpoint"):
            IMEXSDCSweeper(p, make_rule(3, "radau-right"))

    def test_fixed_point_is_collocation_solution(self):
        p = SplitDahlquist(-0.5, -3.0)
        sw = IMEXSDCSweeper(p, make_rule(3))
        u0 = np.array([1.0])
        dt = 0.2
        U, FE, FI = sw.initialize(0.0, dt, u0)
        for _ in range(60):
            U, FE, FI = sw.sweep(0.0, dt, U, FE, FI)
        assert sw.residual(dt, U, FE, FI, u0) < 1e-13
        U2, FE2, FI2 = sw.sweep(0.0, dt, U, FE, FI)
        assert np.allclose(U2, U, atol=1e-13)

    def test_matches_explicit_sweeper_when_f_i_zero(self):
        """With lam_I = 0 the IMEX sweep solves the same collocation
        problem as the explicit sweeper — identical fixed points."""
        from repro.sdc.sweeper import ExplicitSDCSweeper

        p = SplitDahlquist(-2.0, 0.0)
        rule = make_rule(3)
        sw = IMEXSDCSweeper(p, rule)
        ref = ExplicitSDCSweeper(p, rule)
        u0 = np.array([1.0])
        dt = 0.3
        U, FE, FI = sw.initialize(0.0, dt, u0)
        for _ in range(40):
            U, FE, FI = sw.sweep(0.0, dt, U, FE, FI)
        Ur, Fr = ref.initialize(0.0, dt, u0)
        for _ in range(40):
            Ur, Fr = ref.sweep(0.0, dt, Ur, Fr)
        assert np.allclose(U, Ur, atol=1e-12)

    def test_new_u0_adopted(self):
        p = SplitDahlquist(-1.0, -5.0)
        sw = IMEXSDCSweeper(p, make_rule(3))
        U, FE, FI = sw.initialize(0.0, 0.1, np.array([1.0]))
        U2, _, _ = sw.sweep(0.0, 0.1, U, FE, FI, u0=np.array([7.0]))
        assert U2[0] == pytest.approx(7.0)


class TestStiffStability:
    def test_accurate_where_explicit_explodes(self):
        """lam_I dt = -5: explicit SDC diverges violently, IMEX resolves
        the decay to ~1e-12 — the whole point of the splitting."""
        lam_i = -50.0
        p = SplitDahlquist(-1.0, lam_i)
        u0 = np.array([1.0])
        u = IMEXSDCStepper(p, num_nodes=3, sweeps=4).run(u0, 0.0, 1.0, 0.1)
        assert np.abs(u).max() < 1e-9  # decayed, as the exact solution

        from repro.sdc import SDCStepper

        u_exp = SDCStepper(p, num_nodes=3, sweeps=4).run(u0, 0.0, 1.0, 0.1)
        assert np.abs(u_exp).max() > 1e3  # explicit treatment blows up

    def test_bounded_in_the_very_stiff_limit(self):
        """lam_I dt = -100: the unpreconditioned sweeps converge slowly
        (a known property), but the iterate stays O(1) bounded rather
        than exploding like any explicit treatment would."""
        p = SplitDahlquist(-1.0, -1000.0)
        u0 = np.array([1.0])
        u = IMEXSDCStepper(p, num_nodes=3, sweeps=10).run(u0, 0.0, 1.0, 0.1)
        assert np.abs(u).max() < 1.0

    def test_damping_of_stiff_transient(self):
        p = SplitDahlquist(0.0, -200.0)
        stepper = IMEXSDCStepper(p, num_nodes=3, sweeps=6)
        u = stepper.run(np.array([1.0]), 0.0, 0.5, 0.05)
        # exact solution is ~1e-44; a handful of sweeps damps the
        # transient by >5 orders of magnitude without any instability
        assert np.abs(u).max() < 1e-5


class TestAccuracy:
    @pytest.mark.parametrize("sweeps,min_rate", [(2, 1.3), (3, 2.4),
                                                 (4, 3.4)])
    def test_order_per_sweep(self, sweeps, min_rate):
        """Order approaches the sweep count; the 2-sweep variant carries
        a visible backward-Euler transient at moderate dt, hence the
        relaxed lower bounds."""
        p = SplitDahlquist(-0.7, -2.0)
        u0 = np.array([1.0])
        exact = p.exact(1.0, u0)
        errors = []
        for dt in (0.25, 0.125, 0.0625):
            stepper = IMEXSDCStepper(p, num_nodes=3, sweeps=sweeps)
            u = stepper.run(u0, 0.0, 1.0, dt)
            errors.append(np.max(np.abs(u - exact)))
        rate = np.log2(errors[-2] / errors[-1])
        assert rate > min_rate

    def test_oscillatory_explicit_part(self):
        """Complex lam_E (advection-like) with stiff real lam_I."""
        p = SplitDahlquist(2.0j, -50.0)
        stepper = IMEXSDCStepper(p, num_nodes=3, sweeps=4)
        u0 = np.array([1.0 + 0.0j])
        u = stepper.run(u0, 0.0, 1.0, 0.05)
        exact = p.exact(1.0, u0)
        assert np.max(np.abs(u - exact)) < 1e-6

    def test_interval_validation(self):
        p = SplitDahlquist(-1.0, -2.0)
        stepper = IMEXSDCStepper(p)
        with pytest.raises(ValueError, match="integer multiple"):
            stepper.run(np.array([1.0]), 0.0, 1.0, 0.3)

    def test_sweep_count_validation(self):
        with pytest.raises(ValueError, match="sweep"):
            IMEXSDCStepper(SplitDahlquist(-1, -2), sweeps=0)
