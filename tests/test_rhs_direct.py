"""Tests for the direct Biot-Savart evaluation (repro.vortex.rhs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.vortex.kernels import SingularKernel, get_kernel
from repro.vortex.rhs import biot_savart_direct, stretching_rhs

KERNEL = get_kernel("algebraic6")
SIGMA = 0.4


def _finite_difference_gradient(point, sources, charges, eps=1e-6):
    g = np.zeros((3, 3))
    for j in range(3):
        p_plus, p_minus = point.copy(), point.copy()
        p_plus[0, j] += eps
        p_minus[0, j] -= eps
        up = biot_savart_direct(p_plus, sources, charges, KERNEL, SIGMA,
                                gradient=False).velocity[0]
        um = biot_savart_direct(p_minus, sources, charges, KERNEL, SIGMA,
                                gradient=False).velocity[0]
        g[:, j] = (up - um) / (2 * eps)
    return g


class TestVelocity:
    def test_single_pair_matches_formula(self):
        src = np.array([[0.0, 0.0, 0.0]])
        ch = np.array([[0.0, 0.0, 1.0]])
        tgt = np.array([[1.0, 0.0, 0.0]])
        out = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False)
        r = 1.0
        q = KERNEL.q(np.array([r / SIGMA]))[0]
        expected = -q / (4 * np.pi * r**3) * np.cross([1.0, 0, 0], [0, 0, 1.0])
        assert np.allclose(out.velocity[0], expected)

    def test_self_velocity_is_zero(self):
        src = np.array([[0.3, -0.2, 0.5]])
        ch = np.array([[1.0, 2.0, 3.0]])
        out = biot_savart_direct(src, src, ch, KERNEL, SIGMA, gradient=False)
        assert np.allclose(out.velocity, 0.0)

    def test_linearity_in_charges(self, rng):
        src = rng.normal(size=(20, 3))
        ch = rng.normal(size=(20, 3))
        tgt = rng.normal(size=(5, 3))
        u1 = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False).velocity
        u2 = biot_savart_direct(tgt, src, 2 * ch, KERNEL, SIGMA, gradient=False).velocity
        assert np.allclose(u2, 2 * u1)

    def test_superposition(self, rng):
        src = rng.normal(size=(20, 3))
        ch = rng.normal(size=(20, 3))
        tgt = rng.normal(size=(4, 3))
        u_all = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False).velocity
        u_a = biot_savart_direct(tgt, src[:10], ch[:10], KERNEL, SIGMA, gradient=False).velocity
        u_b = biot_savart_direct(tgt, src[10:], ch[10:], KERNEL, SIGMA, gradient=False).velocity
        assert np.allclose(u_all, u_a + u_b)

    def test_chunk_size_does_not_change_result(self, rng):
        src = rng.normal(size=(50, 3))
        ch = rng.normal(size=(50, 3))
        tgt = rng.normal(size=(33, 3))
        big = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, chunk=1000)
        small = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, chunk=7)
        assert np.allclose(big.velocity, small.velocity)
        assert np.allclose(big.gradient, small.gradient)

    def test_empty_sources(self):
        out = biot_savart_direct(
            np.zeros((3, 3)), np.zeros((0, 3)), np.zeros((0, 3)),
            KERNEL, SIGMA,
        )
        assert np.allclose(out.velocity, 0.0)

    def test_empty_targets(self):
        out = biot_savart_direct(
            np.zeros((0, 3)), np.zeros((2, 3)), np.ones((2, 3)),
            KERNEL, SIGMA,
        )
        assert out.velocity.shape == (0, 3)

    def test_translation_invariance(self, rng):
        src = rng.normal(size=(15, 3))
        ch = rng.normal(size=(15, 3))
        tgt = rng.normal(size=(4, 3))
        shift = np.array([1.7, -0.3, 2.2])
        u1 = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False).velocity
        u2 = biot_savart_direct(tgt + shift, src + shift, ch, KERNEL, SIGMA,
                                gradient=False).velocity
        assert np.allclose(u1, u2, atol=1e-12)

    def test_rotation_equivariance(self, rng):
        from scipy.spatial.transform import Rotation

        rot = Rotation.from_euler("xyz", [0.3, -0.7, 1.1]).as_matrix()
        src = rng.normal(size=(15, 3))
        ch = rng.normal(size=(15, 3))
        tgt = rng.normal(size=(4, 3))
        u = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False).velocity
        u_rot = biot_savart_direct(
            tgt @ rot.T, src @ rot.T, ch @ rot.T, KERNEL, SIGMA,
            gradient=False,
        ).velocity
        assert np.allclose(u_rot, u @ rot.T, atol=1e-10)


class TestGradient:
    def test_matches_finite_differences(self, rng):
        src = rng.normal(size=(25, 3))
        ch = rng.normal(size=(25, 3))
        point = np.array([[0.25, -0.1, 0.4]])
        out = biot_savart_direct(point, src, ch, KERNEL, SIGMA)
        fd = _finite_difference_gradient(point, src, ch)
        assert np.allclose(out.gradient[0], fd, atol=1e-6)

    def test_velocity_is_divergence_free(self, rng):
        src = rng.normal(size=(25, 3))
        ch = rng.normal(size=(25, 3))
        tgt = rng.normal(size=(10, 3))
        out = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA)
        traces = np.trace(out.gradient, axis1=1, axis2=2)
        assert np.allclose(traces, 0.0, atol=1e-12)

    def test_gradient_none_when_not_requested(self, rng):
        out = biot_savart_direct(
            rng.normal(size=(3, 3)), rng.normal(size=(3, 3)),
            rng.normal(size=(3, 3)), KERNEL, SIGMA, gradient=False,
        )
        assert out.gradient is None

    def test_stretching_requires_gradient(self, rng):
        out = biot_savart_direct(
            rng.normal(size=(3, 3)), rng.normal(size=(3, 3)),
            rng.normal(size=(3, 3)), KERNEL, SIGMA, gradient=False,
        )
        with pytest.raises(ValueError, match="gradient"):
            out.stretching(rng.normal(size=(3, 3)))

    def test_self_gradient_term(self):
        """A single particle's field gradient at its center is F(0) E(alpha)."""
        src = np.array([[0.0, 0.0, 0.0]])
        ch = np.array([[0.0, 0.0, 2.0]])
        out = biot_savart_direct(src, src, ch, KERNEL, SIGMA)
        f0 = KERNEL.f_radial(np.array([0.0]), SIGMA)[0]
        # E(alpha)_ik = eps_ikm alpha_m for alpha = (0,0,2)
        expected = -f0 / (4 * np.pi) * np.array(
            [[0.0, 2.0, 0.0], [-2.0, 0.0, 0.0], [0.0, 0.0, 0.0]]
        )
        assert np.allclose(out.gradient[0], expected)

    def test_exclude_zero_removes_self_term(self):
        src = np.array([[0.0, 0.0, 0.0]])
        ch = np.array([[0.0, 0.0, 2.0]])
        out = biot_savart_direct(src, src, ch, KERNEL, SIGMA, exclude_zero=True)
        assert np.allclose(out.gradient[0], 0.0)
        assert np.allclose(out.velocity, 0.0)

    def test_singular_kernel_with_exclusion_is_finite(self, rng):
        src = rng.normal(size=(10, 3))
        ch = rng.normal(size=(10, 3))
        out = biot_savart_direct(src, src, ch, SingularKernel(), 1.0,
                                 exclude_zero=True)
        assert np.all(np.isfinite(out.velocity))
        assert np.all(np.isfinite(out.gradient))


class TestStretchingSchemes:
    def test_transpose_vs_classical_differ(self, rng):
        src = rng.normal(size=(20, 3))
        ch = rng.normal(size=(20, 3))
        out = biot_savart_direct(src, src, ch, KERNEL, SIGMA)
        w = rng.normal(size=(20, 3))
        t = out.stretching(w, "transpose")
        c = out.stretching(w, "classical")
        assert not np.allclose(t, c)

    def test_transpose_definition(self, rng):
        src = rng.normal(size=(5, 3))
        ch = rng.normal(size=(5, 3))
        out = biot_savart_direct(src, src, ch, KERNEL, SIGMA)
        w = rng.normal(size=(5, 3))
        expected = np.einsum("nji,nj->ni", out.gradient, w)
        assert np.allclose(out.stretching(w, "transpose"), expected)

    def test_unknown_scheme_raises(self, rng):
        src = rng.normal(size=(2, 3))
        out = biot_savart_direct(src, src, np.ones((2, 3)), KERNEL, SIGMA)
        with pytest.raises(ValueError, match="unknown stretching"):
            out.stretching(np.ones((2, 3)), "bogus")

    def test_stretching_rhs_shape(self, rng):
        x = rng.normal(size=(8, 3))
        w = rng.normal(size=(8, 3))
        vol = np.abs(rng.normal(size=8)) + 0.1
        out = stretching_rhs(x, w, vol, KERNEL, SIGMA)
        assert out.shape == (2, 8, 3)

    def test_stretching_rhs_velocity_component(self, rng):
        x = rng.normal(size=(8, 3))
        w = rng.normal(size=(8, 3))
        vol = np.abs(rng.normal(size=8)) + 0.1
        out = stretching_rhs(x, w, vol, KERNEL, SIGMA)
        field = biot_savart_direct(x, x, w * vol[:, None], KERNEL, SIGMA,
                                   gradient=False)
        assert np.allclose(out[0], field.velocity)


@settings(max_examples=20, deadline=None)
@given(
    data=arrays(np.float64, (6, 3),
                elements=st.floats(-2, 2, allow_nan=False)),
)
def test_velocity_antisymmetric_under_charge_negation(data):
    """u(-alpha) = -u(alpha): the field is linear in the charges."""
    src = data + np.arange(6)[:, None] * 0.01  # avoid exact coincidences
    ch = np.roll(data, 1, axis=0)
    tgt = np.array([[3.0, 3.0, 3.0]])
    u_pos = biot_savart_direct(tgt, src, ch, KERNEL, SIGMA, gradient=False).velocity
    u_neg = biot_savart_direct(tgt, src, -ch, KERNEL, SIGMA, gradient=False).velocity
    assert np.allclose(u_pos, -u_neg, atol=1e-12)
