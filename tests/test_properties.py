"""Cross-subsystem property-based tests (hypothesis).

These pin the global equivalences the reproduction rests on:
tree == direct at theta = 0 for arbitrary particle configurations,
integrator agreement on random linear systems, and simulated-MPI
collectives matching serial reductions on random communication patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.parallel import Scheduler
from repro.sdc import SDCStepper
from repro.tree import TreeEvaluator
from repro.vortex import DirectEvaluator, get_kernel
from repro.vortex.problem import ODEProblem


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(5, 120),
    leaf_size=st.integers(2, 64),
)
def test_tree_theta_zero_equals_direct_property(seed, n, leaf_size):
    """For any cloud and any leaf size, theta = 0 is exact."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    ch = rng.normal(size=(n, 3))
    kernel = get_kernel("algebraic6")
    sigma = 0.5
    ref = DirectEvaluator(kernel, sigma).field(pos, ch)
    tree = TreeEvaluator(kernel, sigma, theta=0.0,
                         leaf_size=leaf_size).field(pos, ch)
    assert np.allclose(tree.velocity, ref.velocity, rtol=1e-10, atol=1e-13)
    assert np.allclose(tree.gradient, ref.gradient, rtol=1e-10, atol=1e-13)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    theta=st.floats(0.1, 1.0),
)
def test_tree_error_bounded_by_theta_property(seed, theta):
    """Tree error stays within a generous theta^2-proportional band."""
    rng = np.random.default_rng(seed)
    n = 150
    pos = rng.normal(size=(n, 3))
    ch = rng.normal(size=(n, 3)) * 0.2
    kernel = get_kernel("algebraic6")
    sigma = 0.5
    ref = DirectEvaluator(kernel, sigma).field(pos, ch, gradient=False)
    out = TreeEvaluator(kernel, sigma, theta=theta,
                        leaf_size=16).field(pos, ch, gradient=False)
    rel = np.max(np.abs(out.velocity - ref.velocity)) / max(
        np.max(np.abs(ref.velocity)), 1e-300
    )
    # quadrupole truncation: error ~ theta^3 region-wise; assert a loose
    # monotone envelope rather than the sharp constant
    assert rel < 0.6 * theta**2 + 1e-10


@settings(max_examples=15, deadline=None)
@given(
    a=arrays(np.float64, (3, 3), elements=st.floats(-1.0, 1.0)),
    u0=arrays(np.float64, (3,), elements=st.floats(-2, 2)),
)
def test_sdc_matches_expm_on_random_linear_systems(a, u0):
    """SDC(6) with small dt reproduces the matrix exponential."""
    from scipy.linalg import expm

    class Linear(ODEProblem):
        def rhs(self, t, u):
            return a @ u

    stepper = SDCStepper(Linear(), num_nodes=3, sweeps=6)
    u = stepper.run(u0, 0.0, 0.5, 0.0625)
    exact = expm(0.5 * a) @ u0
    scale = max(np.abs(exact).max(), np.abs(u0).max(), 1.0)
    assert np.allclose(u, exact, atol=1e-5 * scale)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_ranks=st.integers(2, 10),
    n_msgs=st.integers(1, 10),
)
def test_random_message_patterns_deliver_exactly_once(seed, n_ranks, n_msgs):
    """Random point-to-point patterns: every payload arrives intact,
    exactly once, in FIFO order per channel."""
    rng = np.random.default_rng(seed)
    # pre-generate a random schedule: (src, dst, value)
    msgs = [
        (int(rng.integers(0, n_ranks)),
         int(rng.integers(0, n_ranks - 1)),
         int(rng.integers(0, 1000)))
        for _ in range(n_msgs)
    ]
    # fix self-sends by shifting dst
    msgs = [(s, d if d < s else d + 1, v) for s, d, v in msgs]

    def program2(comm):
        received = []
        for s, d, v in msgs:
            if comm.rank == s:
                yield comm.send(d, ("m", s), v)
        for s, d, v in msgs:
            if comm.rank == d:
                received.append((yield comm.recv(s, ("m", s))))
        return received

    res = Scheduler(n_ranks, measure_compute=False).run(program2)
    for rank in range(n_ranks):
        expected = [v for s, d, v in msgs if d == rank]
        assert res[rank] == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_pfasst_parareal_sdc_consistency_property(seed):
    """On random nonstiff linear 2x2 systems, converged PFASST, converged
    parareal(fine=SDC) and serial SDC agree."""
    from repro.pfasst import (LevelSpec, PararealConfig, PfasstConfig,
                              parareal_serial, run_pfasst)

    rng = np.random.default_rng(seed)
    a = rng.normal(size=(2, 2)) * 0.5

    class Linear(ODEProblem):
        def rhs(self, t, u):
            return a @ u

    prob = Linear()
    u0 = rng.normal(size=2)
    t_end, n = 1.0, 4
    sdc_ref = SDCStepper(prob, num_nodes=3, sweeps=12).run(
        u0, 0.0, t_end, t_end / n
    )
    cfg = PfasstConfig(t0=0.0, t_end=t_end, n_steps=n, iterations=10)
    specs = [LevelSpec(prob, 3, 1), LevelSpec(prob, 2, 2)]
    pf = run_pfasst(cfg, specs, u0, p_time=n)
    assert np.allclose(pf.u_end, sdc_ref, atol=1e-9)

    def fine(t, dt, u):
        return SDCStepper(prob, num_nodes=3, sweeps=12).run(u, t, t + dt, dt)

    def coarse(t, dt, u):
        return u + dt * prob.rhs(t, u)

    par = parareal_serial(
        PararealConfig(0.0, t_end, n, n), coarse, fine, u0
    )
    assert np.allclose(par.u_end, sdc_ref, atol=1e-9)
