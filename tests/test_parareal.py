"""Tests for the classic parareal baseline."""

import numpy as np
import pytest

from repro.integrators import get_integrator
from repro.pfasst.parareal import (
    PararealConfig,
    parareal_serial,
    run_parareal,
)


@pytest.fixture
def propagators(linear_problem):
    rk4 = get_integrator("rk4")
    euler = get_integrator("euler")

    def fine(t, dt, u):
        return rk4.run(linear_problem, u, t, t + dt, dt / 8)

    def coarse(t, dt, u):
        return euler.run(linear_problem, u, t, t + dt, dt)

    return coarse, fine, linear_problem


class TestValidation:
    def test_bad_slices(self):
        with pytest.raises(ValueError):
            PararealConfig(0.0, 1.0, 0, 1)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            PararealConfig(1.0, 0.0, 4, 1)

    def test_rank_count_must_match(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 4, 2)
        from repro.parallel import Scheduler
        from repro.pfasst.parareal import _parareal_rank_program

        with pytest.raises(ValueError, match="one rank per slice"):
            Scheduler(3, measure_compute=False).run(
                _parareal_rank_program,
                args=(cfg, coarse, fine, np.array([1.0, 0.0])),
            )


class TestConvergence:
    def test_zero_iterations_equals_coarse(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 4, 0)
        u0 = np.array([1.0, 0.0])
        res = parareal_serial(cfg, coarse, fine, u0)
        u = u0
        for k in range(4):
            u = coarse(k * 0.25, 0.25, u)
        assert np.allclose(res.u_end, u)

    def test_n_iterations_gives_exact_fine(self, propagators):
        """After K = N iterations parareal equals the serial fine solution."""
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 4, 4)
        u0 = np.array([1.0, 0.0])
        res = parareal_serial(cfg, coarse, fine, u0)
        u = u0
        for k in range(4):
            u = fine(k * 0.25, 0.25, u)
        assert np.allclose(res.u_end, u, atol=1e-12)

    def test_increments_shrink(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 6, 5)
        res = parareal_serial(cfg, coarse, fine, np.array([1.0, 0.0]))
        assert res.increments[-1] < res.increments[0] * 1e-2

    def test_pipelined_matches_serial(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 5, 3)
        u0 = np.array([1.0, 0.0])
        ser = parareal_serial(cfg, coarse, fine, u0)
        par = run_parareal(cfg, coarse, fine, u0)
        assert np.allclose(ser.u_end, par.u_end, atol=1e-13)
        assert np.allclose(ser.increments, par.increments, atol=1e-13)

    def test_pipelined_slice_values(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 4, 2)
        u0 = np.array([1.0, 0.0])
        ser = parareal_serial(cfg, coarse, fine, u0)
        par = run_parareal(cfg, coarse, fine, u0)
        for a, b in zip(ser.slice_values, par.slice_values):
            assert np.allclose(a, b, atol=1e-13)

    def test_clocks_populated(self, propagators):
        coarse, fine, _ = propagators
        cfg = PararealConfig(0.0, 1.0, 4, 2)
        res = run_parareal(
            cfg, coarse, fine, np.array([1.0, 0.0]), measure_compute=True
        )
        assert len(res.clocks) == 4
        assert res.makespan > 0.0
