"""Regression tests: collectives recover dropped messages via retransmit.

Before the fix, ``reduce`` / ``allreduce`` / ``gather`` / ``scatter``
ignored the link-layer ``timeout`` / ``retries`` / ``backoff`` knobs, so
a single dropped message on any collective leg deadlocked the whole
world — in particular PFASST's failure-detection allreduce, whose entire
job is to survive faults.  These tests pin the before-shape (deadlock
without a timeout) and the after-shape (silent shadow retransmit).
"""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.parallel import DeadlockError, Scheduler
from repro.parallel.collectives import (
    allgather,
    allreduce,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.parallel.faults import FaultPlan, MessageFault
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec

#: drop the first message on every (src, dest, tag) channel
DROP_FIRST = FaultPlan(messages=(MessageFault(kind="drop", occurrences=(0,)),))


@pytest.fixture
def u0():
    return np.array([1.0, 2.0])

LINK = dict(timeout=0.1, retries=1, backoff=0.01)


def _programs(link=LINK):
    def p_reduce(comm):
        total = yield from reduce(comm, comm.rank + 1,
                                  op=lambda a, b: a + b, root=0, **link)
        return total

    def p_allreduce(comm):
        total = yield from allreduce(comm, comm.rank + 1,
                                     op=lambda a, b: a + b, **link)
        return total

    def p_bcast(comm):
        return (yield from bcast(comm, comm.rank * 7 + 5, root=0, **link))

    def p_gather(comm):
        return (yield from gather(comm, comm.rank * 2, root=0, **link))

    def p_scatter(comm):
        values = list(range(10, 10 + comm.size)) if comm.rank == 0 else None
        return (yield from scatter(comm, values, root=0, **link))

    def p_allgather(comm):
        return (yield from allgather(comm, comm.rank * 3, **link))

    n = 4
    return {
        "reduce": (p_reduce, [sum(range(1, n + 1))] + [None] * (n - 1)),
        "allreduce": (p_allreduce, [sum(range(1, n + 1))] * n),
        "bcast": (p_bcast, [5] * n),
        "gather": (p_gather, [[2 * r for r in range(n)]]
                   + [None] * (n - 1)),
        "scatter": (p_scatter, [10 + r for r in range(n)]),
        "allgather": (p_allgather, [[3 * r for r in range(n)]] * n),
    }


class TestDropRecovery:
    @pytest.mark.parametrize("name", sorted(_programs()))
    def test_drop_recovered_by_shadow_retransmit(self, name):
        program, expected = _programs()[name]
        sched = Scheduler(4, fault_plan=DROP_FIRST)
        assert sched.run(program) == expected
        assert sched.metrics.counter("mpi.retransmissions").value >= 1
        counts = sched.resilience.counts()
        assert counts["drop"] >= 1 and counts["retransmit"] >= 1

    @pytest.mark.parametrize("name", sorted(_programs()))
    def test_drop_without_timeout_deadlocks(self, name):
        """The pre-fix shape: no link-layer budget, any drop hangs."""
        program, _ = _programs(link={})[name]
        with pytest.raises(DeadlockError):
            Scheduler(4, fault_plan=DROP_FIRST).run(program)

    @pytest.mark.parametrize("name", sorted(_programs()))
    def test_drop_recovery_is_replay_stable(self, name):
        program, expected = _programs()[name]
        sched = Scheduler(4, fault_plan=DROP_FIRST, verify=True)
        assert sched.run(program) == expected


def _config(**kw):
    kw.setdefault("t0", 0.0)
    kw.setdefault("t_end", 1.0)
    kw.setdefault("n_steps", 2)
    kw.setdefault("iterations", 8)
    kw.setdefault("residual_tol", 1e-11)
    return PfasstConfig(**kw)


def _specs(problem):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


#: first ftsync allreduce of block 0, attempt 0, iteration 0: the reduce
#: leg's wire tag at p_time=2 is ((tag, "r"), mask=1), carried rank 1->0
FTSYNC_REDUCE_LEG = ((("ftsync", 0, 0, 0), "r"), 1)


class TestPfasstDetectionAllreduce:
    """The ISSUE's headline bug: a drop on the failure-detection
    allreduce's reduce leg used to hang the run; the threaded link
    budget now repairs it below the algorithmic layer."""

    def test_drop_on_ftsync_reduce_leg_recovers(self, linear_problem, u0):
        base = run_pfasst(
            _config(recovery="warm-restart"), _specs(linear_problem),
            u0, p_time=2,
        )
        plan = FaultPlan(messages=(
            MessageFault(kind="drop", source=1, dest=0,
                         tag=FTSYNC_REDUCE_LEG),
        ))
        res = run_pfasst(
            _config(recovery="warm-restart"), _specs(linear_problem),
            u0, p_time=2, fault_plan=plan, verify=True,
        )
        assert freeze(res.u_end) == freeze(base.u_end)
        assert freeze(res.residuals) == freeze(base.residuals)
        counts = res.resilience.counts()
        assert counts["drop"] == 1
        assert counts["retransmit"] == 1
        assert res.recoveries == []  # repaired below the algorithmic layer

    def test_exhausted_budget_surfaces_protocol_failure(
        self, linear_problem, u0
    ):
        """With a zero retransmit budget the drop cannot be repaired;
        detection must convert the would-be hang into a diagnosis."""
        plan = FaultPlan(messages=(
            MessageFault(kind="drop", source=1, dest=0,
                         tag=FTSYNC_REDUCE_LEG),
        ))
        with pytest.raises(RuntimeError, match="protocol"):
            run_pfasst(
                _config(recovery="warm-restart", recovery_retries=0),
                _specs(linear_problem), u0, p_time=2, fault_plan=plan,
            )
