"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in,
    check_nonnegative,
    check_positive,
)


class TestScalarChecks:
    def test_positive_passes(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestCheckArray:
    def test_shape_match(self):
        arr = check_array("a", np.zeros((4, 3)), shape=(None, 3))
        assert arr.shape == (4, 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="ndim"):
            check_array("a", np.zeros(4), shape=(None, 3))

    def test_wrong_extent(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_array("a", np.zeros((4, 2)), shape=(None, 3))

    def test_dtype_conversion(self):
        arr = check_array("a", [[1, 2, 3]], shape=(None, 3), dtype=np.float64)
        assert arr.dtype == np.float64

    def test_finite_check(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array("a", np.array([np.nan]), finite=True)

    def test_finite_passes(self):
        check_array("a", np.array([1.0, 2.0]), finite=True)
