"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in,
    check_nonnegative,
    check_positive,
)


class TestScalarChecks:
    def test_positive_passes(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestCheckArray:
    def test_shape_match(self):
        arr = check_array("a", np.zeros((4, 3)), shape=(None, 3))
        assert arr.shape == (4, 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="ndim"):
            check_array("a", np.zeros(4), shape=(None, 3))

    def test_wrong_extent(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_array("a", np.zeros((4, 2)), shape=(None, 3))

    def test_dtype_conversion(self):
        arr = check_array("a", [[1, 2, 3]], shape=(None, 3), dtype=np.float64)
        assert arr.dtype == np.float64

    def test_finite_check(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array("a", np.array([np.nan]), finite=True)

    def test_finite_passes(self):
        check_array("a", np.array([1.0, 2.0]), finite=True)

    def test_all_failing_axes_in_one_message(self):
        """Every mismatching dimension is reported in a single error."""
        with pytest.raises(ValueError) as exc_info:
            check_array("a", np.zeros((5, 2)), shape=(4, 3))
        msg = str(exc_info.value)
        assert "axis 0 must have length 4" in msg
        assert "axis 1 must have length 3" in msg
        assert "(5, 2)" in msg

    def test_wildcard_none_and_minus_one(self):
        arr = check_array("a", np.zeros((7, 3)), shape=(None, 3))
        assert arr.shape == (7, 3)
        arr = check_array("a", np.zeros((7, 3)), shape=(-1, 3))
        assert arr.shape == (7, 3)

    def test_wildcard_mismatch_still_reports_fixed_axes(self):
        with pytest.raises(ValueError, match="axis 1 must have length 3"):
            check_array("a", np.zeros((7, 2)), shape=(None, 3))

    def test_expected_shape_rendered_with_wildcards(self):
        with pytest.raises(ValueError, match=r"\('any', 3\)"):
            check_array("a", np.zeros((7, 2)), shape=(None, 3))

    def test_finite_reports_count_and_location(self):
        arr = np.ones((2, 3))
        arr[1, 2] = np.inf
        arr[0, 1] = np.nan
        with pytest.raises(
            ValueError, match=r"2 non-finite value\(s\); first at index \(0, 1\)"
        ):
            check_array("a", arr, finite=True)

    def test_finite_on_scalar_array(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array("a", np.array(np.nan), finite=True)

    def test_finite_with_shape_and_dtype_combined(self):
        arr = check_array(
            "a", [[1, 2, 3]], shape=(None, 3), dtype=np.float64, finite=True
        )
        assert arr.dtype == np.float64
