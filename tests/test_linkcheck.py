"""Tests for repro.analysis.linkcheck — the markdown link checker CI
runs over README.md and docs/."""

from pathlib import Path

import pytest

from repro.analysis.linkcheck import (
    check_files,
    main,
    markdown_anchors,
)


def _write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestAnchors:
    def test_heading_slugs(self, tmp_path):
        doc = _write(tmp_path, "d.md", "# Big Title\n\n## Span Naming!\n")
        assert markdown_anchors(doc) == {"big-title", "span-naming"}

    def test_code_span_in_heading_keeps_text(self, tmp_path):
        doc = _write(tmp_path, "d.md", "## The `repro-trace` CLI\n")
        assert markdown_anchors(doc) == {"the-repro-trace-cli"}

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        doc = _write(tmp_path, "d.md", "## Usage\n\n## Usage\n")
        assert markdown_anchors(doc) == {"usage", "usage-1"}

    def test_fenced_comment_headings_ignored(self, tmp_path):
        doc = _write(tmp_path, "d.md", "```\n# not a heading\n```\n# Real\n")
        assert markdown_anchors(doc) == {"real"}


class TestCheckFiles:
    def test_valid_relative_link(self, tmp_path):
        _write(tmp_path, "docs/guide.md", "# Guide\n")
        readme = _write(tmp_path, "README.md", "[g](docs/guide.md)\n")
        assert check_files([readme]) == []

    def test_missing_file_is_broken(self, tmp_path):
        readme = _write(tmp_path, "README.md", "see [g](docs/nope.md)\n")
        (broken,) = check_files([readme])
        assert broken.target == "docs/nope.md"
        assert "no such file" in broken.reason
        assert broken.line == 1

    def test_anchor_into_other_file(self, tmp_path):
        _write(tmp_path, "g.md", "# Guide\n\n## Span Naming\n")
        ok = _write(tmp_path, "a.md", "[x](g.md#span-naming)\n")
        bad = _write(tmp_path, "b.md", "[x](g.md#no-such-heading)\n")
        assert check_files([ok]) == []
        (broken,) = check_files([bad])
        assert "no heading for anchor" in broken.reason

    def test_local_anchor(self, tmp_path):
        doc = _write(tmp_path, "d.md", "# Top\n\n[up](#top)\n[x](#nope)\n")
        (broken,) = check_files([doc])
        assert broken.target == "#nope"

    def test_external_links_pass_without_fetching(self, tmp_path):
        doc = _write(tmp_path, "d.md",
                     "[p](https://ui.perfetto.dev) [m](mailto:a@b.c)\n")
        assert check_files([doc]) == []

    def test_unknown_scheme_is_flagged(self, tmp_path):
        doc = _write(tmp_path, "d.md", "[x](gopher://old.net)\n")
        (broken,) = check_files([doc])
        assert "unrecognised URL scheme" in broken.reason

    def test_links_in_code_are_ignored(self, tmp_path):
        doc = _write(tmp_path, "d.md",
                     "```\n[x](missing.md)\n```\nand `[y](gone.md)`\n")
        assert check_files([doc]) == []

    def test_image_links_are_checked(self, tmp_path):
        doc = _write(tmp_path, "d.md", "![fig](fig6.svg)\n")
        (broken,) = check_files([doc])
        assert broken.target == "fig6.svg"


class TestMain:
    def test_exit_zero_and_count(self, tmp_path, capsys):
        _write(tmp_path, "g.md", "# G\n")
        doc = _write(tmp_path, "d.md", "[a](g.md) [b](g.md#g)\n")
        assert main([str(doc)]) == 0
        assert "2 links OK across 1 file(s)" in capsys.readouterr().out

    def test_exit_one_on_broken(self, tmp_path, capsys):
        doc = _write(tmp_path, "d.md", "[a](missing.md)\n")
        assert main([str(doc)]) == 1
        out = capsys.readouterr()
        assert "broken link 'missing.md'" in out.out
        assert "1 broken link(s)" in out.err

    def test_exit_two_on_missing_input(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost.md")]) == 2

    def test_repo_docs_have_no_broken_links(self):
        """The same invocation CI runs, pinned as a test."""
        root = Path(__file__).resolve().parent.parent
        files = [root / "README.md", root / "EXPERIMENTS.md",
                 root / "benchmarks" / "README.md"]
        files += sorted((root / "docs").glob("*.md"))
        present = [f for f in files if f.is_file()]
        assert present, "repository markdown set went missing"
        assert check_files(present) == []
