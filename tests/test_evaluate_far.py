"""Tests for far-field multipole evaluation."""

import numpy as np
import pytest

from repro.nbody import coulomb_direct
from repro.tree.evaluate import evaluate_coulomb_far, evaluate_vortex_far
from repro.vortex.kernels import SingularKernel, get_kernel
from repro.vortex.rhs import biot_savart_direct

KERNELS = ["algebraic2", "algebraic4", "algebraic6"]


def _cluster(rng, n=40, radius=0.15):
    pos = rng.normal(size=(n, 3)) * radius
    ch = rng.normal(size=(n, 3)) * 0.2
    center = pos.mean(axis=0)
    d = pos - center
    m0 = ch.sum(axis=0)
    m1 = np.einsum("ni,nj->ij", ch, d)
    m2 = 0.5 * np.einsum("ni,nj,nk->ijk", ch, d, d)
    return pos, ch, center, m0, m1, m2


class TestVortexFar:
    @pytest.mark.parametrize("name", KERNELS + ["singular"])
    def test_point_cluster_monopole_exact(self, name, rng):
        """One particle at the center: the expansion is exact at order 0."""
        k = get_kernel(name) if name != "singular" else SingularKernel()
        src = np.array([[0.1, -0.2, 0.3]])
        ch = rng.normal(size=(1, 3))
        tg = rng.normal(size=(6, 3)) * 3 + 5
        ref = biot_savart_direct(tg, src, ch, k, 0.4)
        u, g = evaluate_vortex_far(tg, src, ch, None, None, k, 0.4,
                                   order=0, gradient=True)
        assert np.allclose(u, ref.velocity, atol=1e-14)
        assert np.allclose(g, ref.gradient, atol=1e-14)

    @pytest.mark.parametrize("name", KERNELS)
    def test_error_decreases_with_order(self, name, rng):
        k = get_kernel(name)
        pos, ch, center, m0, m1, m2 = _cluster(rng)
        tg = center + np.array([[1.5, 0.3, -0.2], [0.0, -2.0, 1.0]])
        ref = biot_savart_direct(tg, pos, ch, k, 0.3)
        errs = []
        for order in (0, 1, 2):
            u, g = evaluate_vortex_far(
                tg, center[None], m0[None], m1[None], m2[None], k, 0.3,
                order=order, gradient=True,
            )
            errs.append(np.max(np.abs(u - ref.velocity)))
        assert errs[1] < errs[0]
        assert errs[2] < errs[1]

    def test_error_decreases_with_distance(self, rng):
        k = get_kernel("algebraic6")
        pos, ch, center, m0, m1, m2 = _cluster(rng)
        errs = []
        for dist in (1.0, 2.0, 4.0):
            tg = center + np.array([[dist, 0.0, 0.0]])
            ref = biot_savart_direct(tg, pos, ch, k, 0.3, gradient=False)
            u, _ = evaluate_vortex_far(
                tg, center[None], m0[None], m1[None], m2[None], k, 0.3,
                order=2, gradient=False,
            )
            errs.append(np.max(np.abs(u - ref.velocity))
                        / np.max(np.abs(ref.velocity)))
        assert errs[2] < errs[1] < errs[0]

    def test_gradient_matches_finite_difference_of_far_field(self, rng):
        k = get_kernel("algebraic6")
        pos, ch, center, m0, m1, m2 = _cluster(rng)
        x0 = center + np.array([2.0, -1.0, 0.5])
        eps = 1e-6
        _, g = evaluate_vortex_far(
            x0[None], center[None], m0[None], m1[None], m2[None], k, 0.3,
            order=2, gradient=True,
        )
        fd = np.zeros((3, 3))
        for j in range(3):
            xp, xm = x0.copy(), x0.copy()
            xp[j] += eps
            xm[j] -= eps
            up, _ = evaluate_vortex_far(
                xp[None], center[None], m0[None], m1[None], m2[None],
                k, 0.3, order=2, gradient=False,
            )
            um, _ = evaluate_vortex_far(
                xm[None], center[None], m0[None], m1[None], m2[None],
                k, 0.3, order=2, gradient=False,
            )
            fd[:, j] = (up[0] - um[0]) / (2 * eps)
        assert np.allclose(g[0], fd, atol=1e-7)

    def test_far_field_divergence_free(self, rng):
        k = get_kernel("algebraic6")
        pos, ch, center, m0, m1, m2 = _cluster(rng)
        tg = center + rng.normal(size=(10, 3)) * 3 + 4
        _, g = evaluate_vortex_far(
            tg, center[None], m0[None], m1[None], m2[None], k, 0.3,
            order=2, gradient=True,
        )
        assert np.allclose(np.trace(g, axis1=1, axis2=2), 0.0, atol=1e-10)

    def test_multiple_clusters_superpose(self, rng):
        k = get_kernel("algebraic6")
        c1 = _cluster(rng)
        c2 = _cluster(rng)
        tg = np.array([[5.0, 5.0, 5.0]])
        u_both, _ = evaluate_vortex_far(
            tg,
            np.stack([c1[2], c2[2]]),
            np.stack([c1[3], c2[3]]),
            np.stack([c1[4], c2[4]]),
            np.stack([c1[5], c2[5]]),
            k, 0.3, order=2, gradient=False,
        )
        u1, _ = evaluate_vortex_far(tg, c1[2][None], c1[3][None],
                                    c1[4][None], c1[5][None], k, 0.3,
                                    order=2, gradient=False)
        u2, _ = evaluate_vortex_far(tg, c2[2][None], c2[3][None],
                                    c2[4][None], c2[5][None], k, 0.3,
                                    order=2, gradient=False)
        assert np.allclose(u_both, u1 + u2, atol=1e-13)

    def test_missing_moments_raise(self, rng):
        k = get_kernel("algebraic6")
        with pytest.raises(ValueError, match="m1"):
            evaluate_vortex_far(
                np.ones((1, 3)), np.zeros((1, 3)), np.ones((1, 3)),
                None, None, k, 0.3, order=1,
            )

    def test_empty_inputs(self):
        k = get_kernel("algebraic6")
        u, g = evaluate_vortex_far(
            np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros((0, 3, 3)), np.zeros((0, 3, 3, 3)), k, 0.3,
        )
        assert u.shape == (0, 3)

    def test_invalid_order(self, rng):
        k = get_kernel("algebraic6")
        with pytest.raises(ValueError, match="order"):
            evaluate_vortex_far(
                np.ones((1, 3)), np.zeros((1, 3)), np.ones((1, 3)),
                None, None, k, 0.3, order=3,
            )


class TestCoulombFar:
    def test_point_charge_exact(self, rng):
        k = SingularKernel()
        src = np.array([[0.5, 0.0, -0.5]])
        q = np.array([2.0])
        tg = rng.normal(size=(5, 3)) * 2 + 4
        phi_ref, e_ref = coulomb_direct(tg, src, q)
        phi, e = evaluate_coulomb_far(
            tg, src, q, None, None, k, 1.0, order=0
        )
        assert np.allclose(phi, phi_ref, atol=1e-14)
        assert np.allclose(e, e_ref, atol=1e-14)

    def test_extended_cluster_order_convergence(self, rng):
        k = SingularKernel()
        pos = rng.normal(size=(30, 3)) * 0.2
        q = rng.normal(size=30)
        center = pos.mean(axis=0)
        d = pos - center
        m0 = q.sum()
        m1 = (q[:, None] * d).sum(axis=0)
        m2 = 0.5 * np.einsum("n,nj,nk->jk", q, d, d)
        # far enough out that the asymptotic ordering of the expansion
        # orders holds for a single random cluster
        tg = center + np.array([[4.0, 2.0, -1.0], [-3.0, 3.0, 2.0],
                                [0.5, -4.0, 3.0]])
        phi_ref, e_ref = coulomb_direct(tg, pos, q)
        errs_phi, errs_e = [], []
        for order in (0, 1, 2):
            phi, e = evaluate_coulomb_far(
                tg, center[None], np.array([m0]), m1[None], m2[None],
                k, 1.0, order=order,
            )
            errs_phi.append(np.max(np.abs(phi - phi_ref)))
            errs_e.append(np.max(np.abs(e - e_ref)))
        assert errs_phi[2] < errs_phi[1] < errs_phi[0]
        assert errs_e[2] < errs_e[0]

    def test_field_is_minus_gradient_of_potential(self, rng):
        k = get_kernel("algebraic4")
        pos = rng.normal(size=(20, 3)) * 0.2
        q = rng.normal(size=20)
        center = pos.mean(axis=0)
        d = pos - center
        m0, m1 = q.sum(), (q[:, None] * d).sum(axis=0)
        m2 = 0.5 * np.einsum("n,nj,nk->jk", q, d, d)
        x0 = center + np.array([1.5, -0.7, 0.9])
        eps = 1e-6
        _, e = evaluate_coulomb_far(
            x0[None], center[None], np.array([m0]), m1[None], m2[None],
            k, 0.5, order=2,
        )
        fd = np.zeros(3)
        for j in range(3):
            xp, xm = x0.copy(), x0.copy()
            xp[j] += eps
            xm[j] -= eps
            pp, _ = evaluate_coulomb_far(
                xp[None], center[None], np.array([m0]), m1[None],
                m2[None], k, 0.5, order=2,
            )
            pm, _ = evaluate_coulomb_far(
                xm[None], center[None], np.array([m0]), m1[None],
                m2[None], k, 0.5, order=2,
            )
            fd[j] = -(pp[0] - pm[0]) / (2 * eps)
        assert np.allclose(e[0], fd, atol=1e-7)
