"""Execution-backend byte-identity suite.

The executor contract (``src/repro/parallel/executor.py``) is that the
choice of backend is *invisible* to the numerics and the discrete-event
semantics: results, residual histories and virtual clocks freeze to the
same bytes whether compute payloads run inline (``SerialExecutor``) or
on real cores (``ProcessExecutor``) — under plain runs, on the space-time
grid, under ``verify=True`` replay, with a fault plan injecting a crash,
with a tracer attached, and in the degenerate one-worker pool.
"""

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.obs.tracer import Tracer
from repro.parallel.executor import (
    ComputeTask,
    Compute,
    DispatchContext,
    PayloadPicklingError,
    ProcessExecutor,
    SerialExecutor,
)
from repro.parallel.faults import FaultPlan, RankCrash
from repro.parallel.simmpi import Scheduler
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec
from repro.tree.parallel import SpaceParallelTreeEvaluator
from repro.vortex.particles import pack_state
from repro.vortex.problem import ODEProblem, VortexProblem


def _specs(problem):
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


def _config(**kw):
    kw.setdefault("t0", 0.0)
    kw.setdefault("t_end", 0.4)
    kw.setdefault("n_steps", 4)
    kw.setdefault("iterations", 3)
    return PfasstConfig(**kw)


def _frozen(res):
    """Backend-invariant fingerprint: numerics + virtual clocks.

    Deliberately excludes ``evaluator_stats`` (driver-side RHS call
    counters read ~0 when the calls run in workers) and wall-clock
    artefacts.
    """
    return (
        freeze(res.u_end),
        tuple(freeze(v) for v in res.slice_end_values),
        tuple(tuple(r) for r in res.residuals),
        tuple(res.clocks),
        res.iterations_done,
    )


class _UnpicklableMember:
    """Registered payload carrying a lambda — rejected at pool start."""

    def __init__(self):
        self.hook = lambda: None  # unpicklable member

    def rhs(self, t, u):
        return u


class _Exploding:
    """Payload whose method raises — checks worker exception transport."""

    def rhs(self, t, u):
        raise ValueError("boom at t=%r" % t)


def _grid_problem():
    rng = np.random.default_rng(7)
    n = 96
    u0 = pack_state(rng.normal(size=(n, 3)), rng.normal(size=(n, 3)))
    volumes = np.full(n, 1.0 / n)
    evaluator = SpaceParallelTreeEvaluator(
        "algebraic2", 0.3, theta=0.5, leaf_size=16
    )
    problem = VortexProblem(volumes, evaluator)
    return problem, u0


class TestSerialBackend:
    def test_matches_no_executor(self, linear_problem):
        """SerialExecutor is byte-identical to dispatch disabled."""
        u0 = np.array([1.0, 2.0])
        base = run_pfasst(_config(), _specs(linear_problem), u0, p_time=4)
        res = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=4,
            executor=SerialExecutor(),
        )
        assert _frozen(res) == _frozen(base)

    def test_dispatch_counters_recorded(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        res = run_pfasst(
            _config(), _specs(linear_problem), u0, p_time=4,
            executor=SerialExecutor(),
        )
        counters = res.metrics["counters"]
        assert counters["executor.dispatches{backend=serial}"] > 0

    def test_compute_without_executor_raises(self):
        def prog(comm):
            yield Compute(ComputeTask("p", "rhs", args=(0.0,)))

        with pytest.raises(TypeError, match="Compute"):
            Scheduler(1).run(prog)


class TestProcessIdentity:
    """Frozen-bytes Process-vs-Serial across every scheduler feature."""

    def _pair(self, specs, u0, executor_kw=None, **kw):
        serial = run_pfasst(specs=specs, u0=u0, executor=SerialExecutor(), **kw)
        with ProcessExecutor(**(executor_kw or {"max_workers": 2})) as ex:
            process = run_pfasst(specs=specs, u0=u0, executor=ex, **kw)
        return serial, process

    def test_time_parallel_pt4(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        serial, process = self._pair(
            _specs(linear_problem), u0, config=_config(), p_time=4
        )
        assert _frozen(process) == _frozen(serial)

    def test_space_time_grid(self):
        problem, u0 = _grid_problem()
        serial, process = self._pair(
            _specs(problem), u0,
            config=_config(t_end=0.04, n_steps=2, iterations=2),
            p_time=2, p_space=2,
        )
        assert _frozen(process) == _frozen(serial)
        counters = process.metrics["counters"]
        # the far/near tree segments really crossed the process boundary
        assert any(
            k.startswith("executor.dispatches{") and "field_segment" in k
            for k in counters
        )
        assert counters["executor.shm_bytes"] > 0

    def test_under_verify_replay(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        serial, process = self._pair(
            _specs(linear_problem), u0, config=_config(), p_time=4,
            verify=True,
        )
        assert _frozen(process) == _frozen(serial)

    def test_with_fault_plan(self, linear_problem):
        """A crash + warm restart recovers identically on both backends."""
        u0 = np.array([1.0, 2.0])
        plan = FaultPlan(crashes=(RankCrash(rank=2, after_ops=40),))
        serial, process = self._pair(
            _specs(linear_problem), u0,
            config=_config(
                t_end=1.0, iterations=30, residual_tol=1e-11,
                recovery="warm-restart",
            ),
            p_time=4, fault_plan=plan,
        )
        assert serial.recoveries and process.recoveries
        assert serial.recoveries == process.recoveries
        assert _frozen(process) == _frozen(serial)

    def test_with_tracer(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        tracers = {}
        results = {}
        for name, ex in (
            ("serial", SerialExecutor()),
            ("process", ProcessExecutor(max_workers=2)),
        ):
            tracers[name] = Tracer()
            with ex:
                results[name] = run_pfasst(
                    _config(trace=True), _specs(linear_problem), u0,
                    p_time=4, executor=ex, tracer=tracers[name],
                )
        assert _frozen(results["process"]) == _frozen(results["serial"])

        def vspans(tr):
            return [
                (s.name, s.track, s.t0, s.t1)
                for s in tr.spans if s.clock == "virtual"
            ]

        # virtual-time schedule identical (recording order is an artifact
        # of the service interleaving); wall spans land on worker tracks
        assert sorted(vspans(tracers["process"])) == sorted(
            vspans(tracers["serial"])
        )
        worker_tracks = {
            s.track for s in tracers["process"].spans
            if s.track.startswith("worker")
        }
        assert worker_tracks  # at least one worker recorded wall spans

    def test_max_workers_one(self, linear_problem):
        u0 = np.array([1.0, 2.0])
        serial, process = self._pair(
            _specs(linear_problem), u0, config=_config(), p_time=4,
            executor_kw={"max_workers": 1},
        )
        assert _frozen(process) == _frozen(serial)


class TestMetricsContract:
    def test_counter_totals_match_serial(self):
        """All counters except executor diagnostics and cache-placement
        splits are exactly equal; cache hits+misses totals always are."""
        problem, u0 = _grid_problem()
        kw = dict(
            config=_config(t_end=0.04, n_steps=2, iterations=2),
            p_time=2, p_space=2,
        )
        serial = run_pfasst(
            specs=_specs(problem), u0=u0, executor=SerialExecutor(), **kw
        )
        with ProcessExecutor(max_workers=2) as ex:
            process = run_pfasst(specs=_specs(problem), u0=u0, executor=ex, **kw)

        def comparable(res):
            return {
                k: v for k, v in res.metrics["counters"].items()
                if not k.startswith("executor.")
                and not k.startswith("tree.cache.")
            }

        assert comparable(process) == comparable(serial)

        def cache_total(res, kind):
            return sum(
                v for k, v in res.metrics["counters"].items()
                if k.startswith("tree.cache.") and k.endswith(kind)
            )

        # hit/miss *split* depends on worker placement, the totals do not
        total_s = cache_total(serial, "hits") + cache_total(serial, "misses")
        total_p = cache_total(process, "hits") + cache_total(process, "misses")
        assert total_p == total_s

    def test_registry_merge_accepts_registry_and_snapshot(self):
        from repro.obs.metrics import MetricsRegistry

        a = MetricsRegistry()
        a.counter("x", rank=0).inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(3.0)
        b = MetricsRegistry()
        b.counter("x", rank=0).inc(3)
        b.gauge("g").set(2.0)
        b.histogram("h").observe(5.0)

        merged = MetricsRegistry()
        merged.merge(a)
        merged.merge(b.as_dict())  # snapshot form, as workers return it
        out = merged.as_dict()
        assert out["counters"]["x{rank=0}"] == 5
        assert out["gauges"]["g"] == 2.0
        assert out["histograms"]["h"]["count"] == 2
        assert out["histograms"]["h"]["total"] == 8.0


class TestPicklingErrors:
    def test_unpicklable_payload_rejected_at_start(self):
        ex = ProcessExecutor(max_workers=1)
        ex.register("bad", _UnpicklableMember())
        with pytest.raises(PayloadPicklingError, match="bad"):
            ex.start()
        ex.close()

    def test_unpicklable_message_payload_names_rank_and_tag(self):
        """Under a process backend the 64-byte UserWarning fallback
        becomes a structured error naming the offending send."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(1, "edge", lambda: None)
            else:
                yield comm.recv(0, "edge")

        with ProcessExecutor(max_workers=1) as ex:
            sched = Scheduler(2, executor=ex)
            with pytest.raises(PayloadPicklingError) as info:
                sched.run(prog)
        assert info.value.rank == 0
        assert info.value.dest == 1
        assert info.value.tag == "edge"
        assert "rank 0" in str(info.value)
        assert "edge" in str(info.value)

    def test_worker_exception_rethrown_into_program(self):
        def prog(comm, dispatch):
            with pytest.raises(ValueError, match="boom"):
                yield Compute(
                    ComputeTask("p", "rhs", args=(1.5,), arrays=(np.ones(3),))
                )
            return "survived"

        for ex in (SerialExecutor(), ProcessExecutor(max_workers=1)):
            with ex:
                ctx = DispatchContext(ex)
                ctx.register("p", _Exploding())
                out = Scheduler(1, executor=ex).run(prog, args=(ctx,))
            assert out == ["survived"]


class TestDispatchContext:
    def test_key_of_identity_matching(self):
        ex = SerialExecutor()
        ctx = DispatchContext(ex)
        obj = object()
        ctx.register("k", obj)
        assert ctx.key_of(obj) == "k"
        assert ctx.key_of(object()) is None

    def test_register_conflicting_object_rejected(self):
        ex = SerialExecutor()
        ex.register("k", object())
        with pytest.raises(ValueError, match="already registered"):
            ex.register("k", object())


class _LinearTwin(ODEProblem):
    """Serial-side problem numerically identical to :class:`_KillOnce`."""

    matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t, u):
        return self.matrix @ u


class _KillOnce(ODEProblem):
    """Payload whose first ``rhs`` call in the pool hard-kills its worker.

    The sentinel file lives on disk, so the state survives the pool
    respawn: the re-dispatched batch computes normally.  ``open(x)`` is
    atomic-create, so exactly the first worker to arrive dies even when
    several race.
    """

    matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def __init__(self, sentinel):
        self.sentinel = str(sentinel)

    def rhs(self, t, u):
        import os

        try:
            with open(self.sentinel, "x"):
                pass
        except FileExistsError:
            return self.matrix @ u
        os._exit(1)  # simulated worker death (SIGKILL analogue)


class _AlwaysDies(ODEProblem):
    """Payload that kills its worker on every call — retries exhaust."""

    def rhs(self, t, u):
        import os

        os._exit(1)


class TestWorkerLossResilience:
    """A killed pool worker is respawned; the run completes with the
    same numerics as the serial backend."""

    def test_worker_death_recovered_and_numerics_match(self, tmp_path):
        u0 = np.array([1.0, 2.0])
        serial = run_pfasst(
            _config(), _specs(_LinearTwin()), u0, p_time=2,
            executor=SerialExecutor(),
        )
        prob = _KillOnce(tmp_path / "killed-once")
        with ProcessExecutor(max_workers=2) as ex:
            res = run_pfasst(
                _config(), _specs(prob), u0, p_time=2, executor=ex,
            )
        assert _frozen(res) == _frozen(serial)
        counters = res.metrics["counters"]
        assert counters["executor.pool_restarts"] >= 1
        assert counters["executor.redispatched_tasks"] >= 1
        kinds = [e.kind for e in res.resilience.recovered]
        assert "pool-respawn" in kinds
        detail = next(
            e.detail for e in res.resilience.recovered
            if e.kind == "pool-respawn"
        )
        assert "re-dispatched" in detail

    def test_retries_exhausted_raises(self, tmp_path):
        """max_retries=0 turns the first worker death fatal."""
        u0 = np.array([1.0, 2.0])
        with ProcessExecutor(max_workers=1, max_retries=0) as ex:
            with pytest.raises(RuntimeError, match="worker death"):
                run_pfasst(
                    _config(), _specs(_AlwaysDies()), u0, p_time=2,
                    executor=ex,
                )

    def test_retry_parameters_validated(self):
        with pytest.raises(ValueError, match="max_retries"):
            ProcessExecutor(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ProcessExecutor(retry_backoff=-0.1)

    def test_no_restart_leaves_counters_unset(self, linear_problem):
        """Fault-free process runs carry no executor.pool_restarts key —
        the metrics contract with SerialExecutor stays exact."""
        u0 = np.array([1.0, 2.0])
        with ProcessExecutor(max_workers=2) as ex:
            res = run_pfasst(
                _config(), _specs(linear_problem), u0, p_time=2,
                executor=ex,
            )
        assert "executor.pool_restarts" not in res.metrics["counters"]
