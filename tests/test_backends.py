"""Kernel-backend seam: registry, selection, fallback, and equivalence.

Covers the :mod:`repro.backends` contract:

* registry and resolution order (argument > ``REPRO_BACKEND`` > numpy);
* actionable errors — unknown names list the valid ones, unavailable
  backends name the missing dependency;
* the ``threaded`` backend is *bitwise identical* to the numpy
  reference at theta = 0 and theta = 0.6, including with a forced
  multi-worker pool and tiny batch budgets (many batches in flight);
* backends pickle as their registry name, so evaluators survive
  :class:`~repro.parallel.executor.ProcessExecutor` dispatch;
* ``run_pfasst(backend=...)`` rebinds backend-aware evaluators.
"""

import os
import pickle

import numpy as np
import pytest

from repro.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailableError,
    KernelBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    usable_backends,
)
from repro.tree import TreeCoulombSolver, TreeEvaluator
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig


@pytest.fixture
def sheet():
    cfg = SheetConfig(n=600)
    return spherical_vortex_sheet(cfg), cfg, get_kernel("algebraic6")


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_BACKEND_THREADS", raising=False)


class TestRegistryAndResolution:
    def test_all_three_backends_registered(self):
        assert available_backends() == ("cupy", "numpy", "threaded")

    def test_cpu_backends_always_usable(self):
        usable = usable_backends()
        assert "numpy" in usable
        assert "threaded" in usable

    def test_default_is_numpy(self, clean_env):
        assert get_backend() is get_backend(DEFAULT_BACKEND)
        assert get_backend().name == "numpy"

    def test_explicit_name_resolves_singleton(self):
        assert get_backend("threaded") is get_backend("threaded")
        assert get_backend("numpy").device == "cpu"

    def test_instance_passes_through(self):
        b = get_backend("numpy")
        assert get_backend(b) is b

    def test_name_is_case_and_space_insensitive(self):
        assert get_backend(" NumPy ") is get_backend("numpy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threaded")
        assert get_backend().name == "threaded"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threaded")
        assert get_backend("numpy").name == "numpy"

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError) as exc:
            get_backend("torch")
        msg = str(exc.value)
        assert "torch" in msg
        assert "cupy, numpy, threaded" in msg

    def test_misset_env_var_is_actionable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "gpu-please")
        with pytest.raises(ValueError) as exc:
            get_backend()
        msg = str(exc.value)
        assert ENV_VAR in msg  # names the source of the bad value
        assert "gpu-please" in msg
        assert "cupy, numpy, threaded" in msg

    def test_describe_reports_contract_fields(self):
        for name in ("numpy", "threaded"):
            info = get_backend(name).describe()
            assert info["name"] == name
            assert info["device"] == "cpu"
            assert info["available"] is True


class TestUnavailableBackend:
    def test_cupy_without_gpu_raises_named_error(self):
        cupy_missing = "cupy" not in usable_backends()
        if not cupy_missing:  # pragma: no cover - GPU-equipped host
            pytest.skip("cupy is usable here; unavailability not testable")
        with pytest.raises(BackendUnavailableError) as exc:
            get_backend("cupy")
        assert exc.value.backend == "cupy"
        assert "cupy" in str(exc.value)  # names the missing dependency
        assert "cupy" in exc.value.missing or "CUDA" in exc.value.missing

    def test_unavailable_error_is_importerror(self):
        # so `except ImportError` guards in user code keep working
        assert issubclass(BackendUnavailableError, ImportError)

    def test_evaluator_rejects_unavailable_backend_eagerly(self, sheet):
        if "cupy" in usable_backends():  # pragma: no cover
            pytest.skip("cupy is usable here")
        ps, cfg, kernel = sheet
        with pytest.raises(BackendUnavailableError):
            TreeEvaluator(kernel, cfg.sigma, backend="cupy")


class TestThreadedEquivalence:
    @pytest.mark.parametrize("theta", [0.0, 0.6])
    def test_bitwise_identical_to_numpy(self, sheet, theta, monkeypatch):
        """The headline contract: threaded == numpy, byte for byte.

        Forces a 4-worker pool and a tiny batch budget so many batches
        are genuinely in flight even on a 1-core CI host.
        """
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "4")
        ps, cfg, kernel = sheet
        kw = dict(theta=theta, leaf_size=16, batch_budget_bytes=200_000)
        ref = TreeEvaluator(kernel, cfg.sigma, **kw).field(
            ps.positions, ps.charges
        )
        out = TreeEvaluator(
            kernel, cfg.sigma, backend="threaded", **kw
        ).field(ps.positions, ps.charges)
        assert (out.velocity == ref.velocity).all()
        assert (out.gradient == ref.gradient).all()

    def test_velocity_only_bitwise(self, sheet, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "4")
        ps, cfg, kernel = sheet
        kw = dict(theta=0.6, leaf_size=16, batch_budget_bytes=200_000)
        ref = TreeEvaluator(kernel, cfg.sigma, **kw).field(
            ps.positions, ps.charges, gradient=False
        )
        out = TreeEvaluator(
            kernel, cfg.sigma, backend="threaded", **kw
        ).field(ps.positions, ps.charges, gradient=False)
        assert (out.velocity == ref.velocity).all()
        assert out.gradient is None and ref.gradient is None

    def test_coulomb_chunks_bitwise(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "4")
        rng = np.random.default_rng(7)
        pos = rng.random((800, 3))
        q = rng.standard_normal(800)
        kw = dict(theta=0.5, batch_budget_bytes=100_000)
        p_ref, f_ref = TreeCoulombSolver(**kw).compute(pos, q)
        p, f = TreeCoulombSolver(backend="threaded", **kw).compute(pos, q)
        assert (p == p_ref).all()
        assert (f == f_ref).all()

    def test_env_selection_reaches_engine(self, sheet, monkeypatch):
        """REPRO_BACKEND alone must route the near pass (no kwargs)."""
        ps, cfg, kernel = sheet
        ref = TreeEvaluator(kernel, cfg.sigma, theta=0.6).field(
            ps.positions, ps.charges
        )
        monkeypatch.setenv(ENV_VAR, "threaded")
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "2")
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.6)
        assert ev.backend.name == "threaded"
        out = ev.field(ps.positions, ps.charges)
        assert (out.velocity == ref.velocity).all()

    def test_coarsened_inherits_backend(self, sheet):
        ps, cfg, kernel = sheet
        fine = TreeEvaluator(kernel, cfg.sigma, backend="threaded")
        assert fine.coarsened(0.6).backend is fine.backend

    def test_worker_count_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND_THREADS", raising=False)
        assert ThreadedBackend(max_workers=3).workers == 3
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "5")
        assert ThreadedBackend().workers == 5
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "lots")
        with pytest.raises(ValueError, match="REPRO_BACKEND_THREADS"):
            ThreadedBackend().workers

    def test_batch_exception_surfaces_at_call_site(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "2")
        b = ThreadedBackend()

        def boom(batch):
            raise RuntimeError(f"batch {batch} failed")

        with pytest.raises(RuntimeError, match="batch"):
            b.map_batches(boom, [np.arange(1), np.arange(2)])


class TestExecutorSurvival:
    """Backend choice must survive a pickle across a process boundary."""

    def test_backend_pickles_to_singleton(self):
        for name in ("numpy", "threaded"):
            b = get_backend(name)
            assert pickle.loads(pickle.dumps(b)) is b

    def test_evaluator_with_backend_roundtrips(self, sheet):
        ps, cfg, kernel = sheet
        ev = TreeEvaluator(kernel, cfg.sigma, theta=0.6, backend="threaded")
        ref = ev.field(ps.positions, ps.charges)
        clone = pickle.loads(pickle.dumps(ev))
        assert clone.backend is ev.backend
        out = clone.field(ps.positions, ps.charges)
        assert (out.velocity == ref.velocity).all()

    def test_threaded_pool_is_not_pickled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "2")
        b = ThreadedBackend()
        b.map_batches(lambda _: None, [np.arange(1), np.arange(2)])
        assert b._pool is not None  # pool exists...
        state = pickle.dumps(b)  # ...but pickling reduces to the name
        assert b"ThreadPoolExecutor" not in state


class TestGpuGating:
    def test_gaussian_kernel_rejected_on_gpu_backend(self, sheet):
        """Non-namespace-generic kernels must fail fast, not mid-run."""
        if "cupy" in usable_backends():  # pragma: no cover
            ps, cfg, _ = sheet
            with pytest.raises(ValueError, match="namespace"):
                TreeEvaluator(get_kernel("gaussian"), cfg.sigma,
                              backend="cupy")
        else:
            # without cupy the availability error fires first — assert
            # the gating attribute instead
            assert get_kernel("gaussian").xp_generic is False
            assert get_kernel("algebraic6").xp_generic is True
            assert get_kernel("singular").xp_generic is True

    @pytest.mark.skipif(
        "cupy" not in usable_backends(),
        reason="cupy backend unavailable (no cupy install / no GPU)",
    )
    def test_cupy_matches_numpy_at_theta_tolerance(self, sheet):
        """GPU near field agrees to rounding error (not bitwise)."""
        ps, cfg, kernel = sheet  # pragma: no cover - needs GPU hardware
        ref = TreeEvaluator(kernel, cfg.sigma, theta=0.6).field(
            ps.positions, ps.charges
        )
        out = TreeEvaluator(kernel, cfg.sigma, theta=0.6,
                            backend="cupy").field(ps.positions, ps.charges)
        assert np.allclose(out.velocity, ref.velocity, rtol=1e-10, atol=1e-12)
        assert np.allclose(out.gradient, ref.gradient, rtol=1e-10, atol=1e-12)


class TestRunPfasstPlumbing:
    def test_backend_kwarg_rebinds_evaluators(self, sheet):
        from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
        from repro.vortex.problem import VortexProblem

        ps, cfg, kernel = sheet
        fine = VortexProblem(
            ps.volumes,
            TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=32),
        )
        coarse = fine.with_evaluator(
            TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=32)
        )
        specs = [LevelSpec(fine, 3, 1), LevelSpec(coarse, 2, 1)]
        u0 = ps.state()
        config = PfasstConfig(t0=0.0, t_end=0.01, n_steps=2, iterations=1)
        ref = run_pfasst(config, specs, u0, p_time=2)
        assert specs[0].problem.evaluator.backend.name == "numpy"
        out = run_pfasst(config, specs, u0, p_time=2, backend="threaded")
        assert specs[0].problem.evaluator.backend.name == "threaded"
        assert specs[1].problem.evaluator.backend.name == "threaded"
        # threaded is bitwise identical, so the whole run must be too
        assert (out.u_end == ref.u_end).all()

    def test_backend_kwarg_validates_eagerly(self):
        from repro.pfasst import PfasstConfig, run_pfasst

        config = PfasstConfig(t0=0.0, t_end=0.01, n_steps=1, iterations=1)
        with pytest.raises(ValueError, match="valid names"):
            run_pfasst(config, [], np.zeros(3), p_time=1, backend="nope")


class TestCustomBackend:
    def test_register_and_resolve_a_custom_backend(self):
        """docs/backends.md 'adding a backend' recipe must keep working."""
        from repro.backends import register_backend

        calls = []

        class RecordingBackend(KernelBackend):
            name = "recording-test"
            device = "cpu"

            def map_batches(self, fn, batches):
                calls.append(len(list(batches)))
                for b in batches:
                    fn(b)

        try:
            register_backend(RecordingBackend())
            b = get_backend("recording-test")
            b.map_batches(lambda _: None, [np.arange(2)] * 3)
            assert calls == [3]
        finally:
            from repro import backends as _pkg

            _pkg._REGISTRY.pop("recording-test", None)
