"""Tests for the space-time process grid (paper Fig. 2)."""

import pytest

from repro.parallel import SpaceTimeGrid


class TestGrid:
    def test_world_size(self):
        assert SpaceTimeGrid(4, 8).world_size == 32

    def test_coords_roundtrip(self):
        grid = SpaceTimeGrid(3, 5)
        for r in range(grid.world_size):
            t, s = grid.coords(r)
            assert grid.world_rank(t, s) == r

    def test_time_major_layout(self):
        grid = SpaceTimeGrid(2, 4)
        assert grid.coords(0) == (0, 0)
        assert grid.coords(3) == (0, 3)
        assert grid.coords(4) == (1, 0)

    def test_space_comm_is_one_pepc_instance(self):
        grid = SpaceTimeGrid(2, 4)
        assert grid.space_comm(5) == [4, 5, 6, 7]

    def test_time_comm_connects_ith_members(self):
        """Paper Fig. 2: PFASST connects the i-th node of each box."""
        grid = SpaceTimeGrid(3, 4)
        assert grid.time_comm(1) == [1, 5, 9]

    def test_every_rank_in_exactly_two_comms(self):
        grid = SpaceTimeGrid(3, 4)
        for r in range(grid.world_size):
            assert r in grid.space_comm(r)
            assert r in grid.time_comm(r)
            # intersection of the two comms is exactly this rank
            both = set(grid.space_comm(r)) & set(grid.time_comm(r))
            assert both == {r}

    def test_comm_partition_property(self):
        """Space comms partition the world; so do time comms."""
        grid = SpaceTimeGrid(4, 3)
        space_union = set()
        for t in range(4):
            space_union |= set(grid.space_comm(grid.world_rank(t, 0)))
        assert space_union == set(range(grid.world_size))

    def test_out_of_range(self):
        grid = SpaceTimeGrid(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            grid.coords(4)
        with pytest.raises(ValueError):
            grid.world_rank(2, 0)
        with pytest.raises(ValueError):
            grid.world_rank(0, 2)

    def test_invalid_extents(self):
        with pytest.raises(ValueError, match=">= 1"):
            SpaceTimeGrid(0, 4)
