"""Tests for the space-time process grid (paper Fig. 2)."""

import pytest

from repro.parallel import SpaceTimeGrid


class TestGrid:
    def test_world_size(self):
        assert SpaceTimeGrid(4, 8).world_size == 32

    def test_coords_roundtrip(self):
        grid = SpaceTimeGrid(3, 5)
        for r in range(grid.world_size):
            t, s = grid.coords(r)
            assert grid.world_rank(t, s) == r

    def test_time_major_layout(self):
        grid = SpaceTimeGrid(2, 4)
        assert grid.coords(0) == (0, 0)
        assert grid.coords(3) == (0, 3)
        assert grid.coords(4) == (1, 0)

    def test_space_comm_is_one_pepc_instance(self):
        grid = SpaceTimeGrid(2, 4)
        assert grid.space_comm(5) == [4, 5, 6, 7]

    def test_time_comm_connects_ith_members(self):
        """Paper Fig. 2: PFASST connects the i-th node of each box."""
        grid = SpaceTimeGrid(3, 4)
        assert grid.time_comm(1) == [1, 5, 9]

    def test_every_rank_in_exactly_two_comms(self):
        grid = SpaceTimeGrid(3, 4)
        for r in range(grid.world_size):
            assert r in grid.space_comm(r)
            assert r in grid.time_comm(r)
            # intersection of the two comms is exactly this rank
            both = set(grid.space_comm(r)) & set(grid.time_comm(r))
            assert both == {r}

    def test_comm_partition_property(self):
        """Space comms partition the world; so do time comms."""
        grid = SpaceTimeGrid(4, 3)
        space_union = set()
        for t in range(4):
            space_union |= set(grid.space_comm(grid.world_rank(t, 0)))
        assert space_union == set(range(grid.world_size))

    def test_out_of_range(self):
        grid = SpaceTimeGrid(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            grid.coords(4)
        with pytest.raises(ValueError):
            grid.world_rank(2, 0)
        with pytest.raises(ValueError):
            grid.world_rank(0, 2)

    def test_invalid_extents(self):
        with pytest.raises(ValueError, match=">= 1"):
            SpaceTimeGrid(0, 4)

    @pytest.mark.parametrize("p_time,p_space", [(1, 6), (6, 1), (2, 7), (7, 2), (3, 4)])
    def test_non_square_roundtrips(self, p_time, p_space):
        """coords/world_rank are inverse bijections on non-square grids."""
        grid = SpaceTimeGrid(p_time, p_space)
        seen = set()
        for t in range(p_time):
            for s in range(p_space):
                r = grid.world_rank(t, s)
                assert grid.coords(r) == (t, s)
                seen.add(r)
        assert seen == set(range(grid.world_size))

    @pytest.mark.parametrize("p_time,p_space", [(1, 5), (5, 1), (2, 3)])
    def test_non_square_comm_membership(self, p_time, p_space):
        grid = SpaceTimeGrid(p_time, p_space)
        for r in range(grid.world_size):
            t, s = grid.coords(r)
            space = grid.space_comm(r)
            tcomm = grid.time_comm(r)
            assert len(space) == p_space and len(tcomm) == p_time
            assert space.index(r) == s  # position == space coordinate
            assert tcomm.index(r) == t  # position == time coordinate
