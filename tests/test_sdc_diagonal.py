"""Tests for the PFASST-ER diagonal (node-parallel) SDC sweeper."""

import numpy as np
import pytest

from repro.parallel.simmpi import Scheduler
from repro.sdc.diagonal import DiagonalSDCSweeper
from repro.sdc.quadrature import (
    DIAGONAL_COEFFICIENT_CHOICES,
    diagonal_coefficients,
    make_rule,
)
from repro.sdc.sweeper import (
    ExplicitSDCSweeper,
    evaluate_node_values,
    node_slice,
)


def _dense_collocation(problem, rule, dt, u0):
    """Direct solve of the linear collocation system (the fixed point)."""
    A = problem.matrix
    m1, n = rule.num_nodes, u0.size
    QA = np.kron(rule.Q, dt * A)
    out = np.linalg.solve(np.eye(m1 * n) - QA, np.tile(u0, m1))
    return out.reshape(m1, n)


class TestCoefficients:
    def test_ie_is_the_nodes(self):
        rule = make_rule(3, "radau-right")
        assert np.allclose(diagonal_coefficients(rule, "ie"), rule.nodes)

    def test_min_is_nodes_over_m(self):
        rule = make_rule(4)
        assert np.allclose(
            diagonal_coefficients(rule, "min"), rule.nodes / 4.0
        )

    def test_picard_is_zero(self):
        rule = make_rule(3)
        assert not diagonal_coefficients(rule, "picard").any()

    def test_custom_array_passes_through(self):
        rule = make_rule(3)
        d = np.array([0.1, 0.2, 0.3])
        out = diagonal_coefficients(rule, d)
        assert np.array_equal(out, d)
        out[0] = 99.0  # returned array is a copy
        assert d[0] == 0.1

    def test_unknown_choice_rejected(self):
        with pytest.raises(ValueError, match="unknown diagonal"):
            diagonal_coefficients(make_rule(3), "magic")

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            diagonal_coefficients(make_rule(3), np.zeros(4))

    def test_choices_tuple_complete(self):
        for kind in DIAGONAL_COEFFICIENT_CHOICES:
            diagonal_coefficients(make_rule(3), kind)  # none raise

    @pytest.mark.parametrize("node_type", ["lobatto", "radau-right",
                                           "legendre"])
    def test_min_makes_iteration_matrix_nilpotent(self, node_type):
        """The MIN-SR-NS property: ``Q - diag(tau/M)`` has spectral
        radius ~0, while the implicit-Euler diagonal leaves it O(1)."""
        rule = make_rule(4, node_type)

        def rho(kind):
            E = rule.Q - np.diag(diagonal_coefficients(rule, kind))
            return np.max(np.abs(np.linalg.eigvals(E)))

        # nilpotent eigenvalues are ill-conditioned (~eps^(1/M)), so the
        # numerical radius is ~1e-7 rather than exactly 0 — still orders
        # of magnitude under the implicit-Euler diagonal's O(1)
        assert rho("min") < 1e-4
        assert rho("ie") > 0.1

    def test_inner_iterations_validated(self, linear_problem):
        with pytest.raises(ValueError, match="inner_iterations"):
            DiagonalSDCSweeper(linear_problem, make_rule(3),
                               inner_iterations=-1)


class TestConvergence:
    @pytest.mark.parametrize("node_type", ["lobatto", "radau-right",
                                           "legendre"])
    @pytest.mark.parametrize("coeffs", ["min", "ie", "picard"])
    def test_converges_to_dense_collocation_solve(self, linear_problem,
                                                  node_type, coeffs):
        rule = make_rule(3, node_type)
        ref = _dense_collocation(linear_problem, rule, 0.2,
                                 np.array([1.0, 0.0]))
        sw = DiagonalSDCSweeper(linear_problem, rule, coefficients=coeffs)
        u0 = np.array([1.0, 0.0])
        U, F = sw.initialize(0.0, 0.2, u0)
        for _ in range(40):
            U, F = sw.sweep(0.0, 0.2, U, F, u0=u0)
        assert np.max(np.abs(U - ref)) < 1e-12
        assert sw.residual(0.2, U, F, u0) < 1e-12

    def test_min_converges_faster_than_picard(self, linear_problem):
        """The diagonal correction must genuinely matter: with the
        nilpotent ``min`` diagonal, few sweeps reach a residual plain
        Picard cannot at the same sweep count."""
        rule = make_rule(4)
        u0 = np.array([1.0, 0.0])
        dt = 0.5

        def run(coeffs, sweeps):
            sw = DiagonalSDCSweeper(linear_problem, rule,
                                    coefficients=coeffs)
            U, F = sw.initialize(0.0, dt, u0)
            for _ in range(sweeps):
                U, F = sw.sweep(0.0, dt, U, F, u0=u0)
            return sw.residual(dt, U, F, u0)

        assert run("min", 6) < run("picard", 6) * 1e-1

    def test_inner_zero_reduces_to_picard(self, linear_problem):
        """With no inner iterations ``d`` drops out of the update."""
        rule = make_rule(3)
        u0 = np.array([1.0, 0.0])
        a = DiagonalSDCSweeper(linear_problem, rule, coefficients="min",
                               inner_iterations=0)
        b = DiagonalSDCSweeper(linear_problem, rule, coefficients="picard")
        Ua, Fa = a.initialize(0.0, 0.2, u0)
        Ub, Fb = b.initialize(0.0, 0.2, u0)
        for _ in range(3):
            Ua, Fa = a.sweep(0.0, 0.2, Ua, Fa, u0=u0)
            Ub, Fb = b.sweep(0.0, 0.2, Ub, Fb, u0=u0)
        assert np.array_equal(Ua, Ub)
        assert np.array_equal(Fa, Fb)

    def test_needs_u0(self, linear_problem):
        sw = DiagonalSDCSweeper(linear_problem, make_rule(3))
        assert sw.needs_u0

    def test_u0_none_lobatto_uses_node0(self, linear_problem):
        sw = DiagonalSDCSweeper(linear_problem, make_rule(3))
        U, F = sw.initialize(0.0, 0.2, np.array([1.0, 0.0]))
        U2, _ = sw.sweep(0.0, 0.2, U, F)  # must not raise
        assert U2.shape == U.shape

    def test_u0_none_radau_raises(self, linear_problem):
        sw = DiagonalSDCSweeper(linear_problem, make_rule(3, "radau-right"))
        U, F = sw.initialize(0.0, 0.2, np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="u0"):
            sw.sweep(0.0, 0.2, U, F)

    def test_tau_shifts_the_fixed_point(self, linear_problem):
        rule = make_rule(3)
        sw = DiagonalSDCSweeper(linear_problem, rule)
        u0 = np.array([1.0, 0.0])
        dt = 0.1
        tau = np.zeros((3, 2))
        tau[1] = [0.01, -0.02]
        U, F = sw.initialize(0.0, dt, u0)
        for _ in range(40):
            U, F = sw.sweep(0.0, dt, U, F, u0=u0, tau=tau)
        assert sw.residual(dt, U, F, u0, tau=tau) < 1e-12
        assert sw.residual(dt, U, F, u0) > 1e-4


class TestNodeFamilyRegressions:
    """Pin the two node-family bugs fixed alongside the diagonal sweeper."""

    def test_radau_residual_includes_node0(self, linear_problem):
        """Pre-fix the residual loop started at m=1, silently skipping
        node 0 for families where it is a genuine collocation unknown:
        a state violating only the node-0 equation reported ~0."""
        rule = make_rule(3, "radau-right")
        sw = ExplicitSDCSweeper(linear_problem, rule)
        u0 = np.array([1.0, 0.0])
        dt = 0.2
        U, F = sw.initialize(0.0, dt, u0)
        for _ in range(80):
            U, F = sw.sweep(0.0, dt, U, F, u0=u0)
        assert sw.residual(dt, U, F, u0) < 1e-13
        # violate ONLY the node-0 equation (F stays fixed, so the
        # residual entries of nodes 1..M are untouched)
        U_bad = U.copy()
        U_bad[0] = U_bad[0] + 1.0
        skipped = max(
            float(np.max(np.abs(
                u0 + dt * rule.integrate_from_start(F)[m] - U_bad[m]
            )))
            for m in range(1, 3)
        )
        assert skipped < 1e-12  # what the pre-fix loop measured
        assert sw.residual(dt, U_bad, F, u0) > 0.9  # what it must report

    @pytest.mark.parametrize("node_type", ["radau-right", "legendre"])
    def test_gauss_seidel_sweep_converges_non_left(self, linear_problem,
                                                   node_type):
        """Pre-fix ``sweep_gen`` pinned node 0 to ``u0`` directly —
        correct only when ``tau_0 = 0`` — so Gauss-Seidel sweeps on
        non-left families converged to the wrong fixed point."""
        rule = make_rule(3, node_type)
        ref = _dense_collocation(linear_problem, rule, 0.2,
                                 np.array([1.0, 0.0]))
        sw = ExplicitSDCSweeper(linear_problem, rule)
        u0 = np.array([1.0, 0.0])
        U, F = sw.initialize(0.0, 0.2, u0)
        for _ in range(60):
            U, F = sw.sweep(0.0, 0.2, U, F, u0=u0)
        assert np.max(np.abs(U - ref)) < 1e-12
        # node 0 must NOT equal u0: it is an interior collocation value
        assert np.max(np.abs(U[0] - u0)) > 1e-6


class TestNodeSlice:
    def test_partition_covers_everything(self):
        for n in (1, 3, 4, 7):
            for parts in (1, 2, 3, 5):
                spans = [node_slice(n, parts, i) for i in range(parts)]
                got = [m for lo, hi in spans for m in range(lo, hi)]
                assert got == list(range(n))

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in
                 (node_slice(7, 3, i) for i in range(3))]
        assert sorted(sizes) == [2, 2, 3]
        assert sizes[0] == 3  # leading ranks take the remainder


class TestShardedEvaluation:
    def test_sharded_allgather_bitwise_matches_serial(self, linear_problem):
        """Node sharding must not change a single bit of F."""
        rule = make_rule(4)
        times = rule.nodes * 0.3
        values = np.array([[1.0 + m, 0.5 * m] for m in range(4)])

        # serial path (node=None) makes no yields for this problem
        gen = evaluate_node_values(linear_problem, times, values)
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            serial = stop.value

        def prog(comm, problem, times, values):
            out = yield from evaluate_node_values(
                problem, times, values, node=comm
            )
            return out

        for p_nodes in (2, 3):
            sched = Scheduler(p_nodes)
            results = sched.run(
                prog, args=(linear_problem, times, values)
            )
            for out in results:
                assert np.array_equal(out, serial)
            counters = sched.metrics.as_dict()["counters"]
            assert counters.get("node.rhs_bytes", 0) > 0
            for r in range(p_nodes):
                assert counters.get(f"node.rhs_bytes{{rank={r}}}", 0) > 0


class TestSweepGenEquivalence:
    def test_sweep_matches_drained_sweep_gen(self, linear_problem):
        sw = DiagonalSDCSweeper(linear_problem, make_rule(3))
        u0 = np.array([1.0, 0.0])
        U, F = sw.initialize(0.0, 0.2, u0)
        U_s, F_s = sw.sweep(0.0, 0.2, U, F, u0=u0)
        gen = sw.sweep_gen(0.0, 0.2, U, F, u0=u0)
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            U_g, F_g = stop.value
        assert np.array_equal(U_s, U_g)
        assert np.array_equal(F_s, F_g)
