"""Tests for the PFASST controller (Algorithm 1)."""

import numpy as np
import pytest

from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import SDCStepper


def _specs(problem, fine_nodes=3, coarse_nodes=2, coarse_sweeps=2,
           node_type="lobatto"):
    return [
        LevelSpec(problem, num_nodes=fine_nodes, sweeps=1,
                  node_type=node_type),
        LevelSpec(problem, num_nodes=coarse_nodes, sweeps=coarse_sweeps,
                  node_type=node_type),
    ]


def _collocation_reference(problem, u0, t_end, n_steps,
                           node_type="lobatto"):
    """Fine collocation solution via heavily-swept serial SDC."""
    s = SDCStepper(problem, num_nodes=3, sweeps=14, node_type=node_type)
    return s.run(u0, 0.0, t_end, t_end / n_steps)


class TestValidation:
    def test_needs_two_levels(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=1)
        with pytest.raises(ValueError, match="2 levels"):
            run_pfasst(cfg, [LevelSpec(scalar_problem, 3)], np.array([1.0]),
                       p_time=2)

    def test_steps_multiple_of_ranks(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=3, iterations=1)
        with pytest.raises(ValueError, match="multiple"):
            run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=2)

    def test_bad_config_values(self):
        with pytest.raises(ValueError):
            PfasstConfig(t0=0.0, t_end=1.0, n_steps=0, iterations=1)
        with pytest.raises(ValueError):
            PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=0)
        with pytest.raises(ValueError):
            PfasstConfig(t0=1.0, t_end=1.0, n_steps=2, iterations=1)

    def test_level_spec_validation(self, scalar_problem):
        with pytest.raises(ValueError, match="nodes"):
            LevelSpec(scalar_problem, num_nodes=1)
        with pytest.raises(ValueError, match="sweep"):
            LevelSpec(scalar_problem, num_nodes=3, sweeps=0)


class TestConvergence:
    @pytest.mark.parametrize("node_type", ["lobatto", "radau-right"])
    def test_converges_to_fine_collocation_solution(self, scalar_problem,
                                                    node_type):
        u0 = np.array([1.0])
        ref = _collocation_reference(scalar_problem, u0, 2.0, 8,
                                     node_type=node_type)
        cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=8, iterations=10)
        res = run_pfasst(cfg, _specs(scalar_problem, node_type=node_type),
                         u0, p_time=8)
        assert np.allclose(res.u_end, ref, atol=1e-10)

    def test_error_decreases_with_iterations(self, scalar_problem):
        u0 = np.array([1.0])
        ref = _collocation_reference(scalar_problem, u0, 2.0, 8)
        errors = []
        for k in (1, 2, 4):
            cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=8, iterations=k)
            res = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=8)
            errors.append(abs((res.u_end - ref).item()))
        assert errors[1] < errors[0]
        assert errors[2] < errors[1] * 0.5

    def test_residuals_decrease(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=4, iterations=6)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=4)
        for rank_res in res.residuals:
            assert rank_res[-1] < rank_res[0]

    def test_single_rank_runs_blocks_serially(self, scalar_problem):
        """p_time=1 is valid: every slice is one block."""
        u0 = np.array([1.0])
        ref = _collocation_reference(scalar_problem, u0, 1.0, 4)
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=8)
        res = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=1)
        assert np.allclose(res.u_end, ref, atol=1e-8)

    def test_multi_block_matches_single_block_accuracy(self, scalar_problem):
        u0 = np.array([1.0])
        ref = _collocation_reference(scalar_problem, u0, 2.0, 8)
        cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=8, iterations=8)
        res2 = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=2)  # 4 blocks
        res8 = run_pfasst(cfg, _specs(scalar_problem), u0, p_time=8)  # 1 block
        assert np.allclose(res2.u_end, ref, atol=1e-8)
        assert np.allclose(res8.u_end, ref, atol=1e-8)

    def test_three_level_hierarchy(self, scalar_problem):
        u0 = np.array([1.0])
        # reference must match the FINE level: 5-node collocation
        ref = SDCStepper(scalar_problem, num_nodes=5, sweeps=14).run(
            u0, 0.0, 1.0, 0.25
        )
        specs = [
            LevelSpec(scalar_problem, num_nodes=5, sweeps=1),
            LevelSpec(scalar_problem, num_nodes=3, sweeps=1),
            LevelSpec(scalar_problem, num_nodes=2, sweeps=2),
        ]
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=10)
        res = run_pfasst(cfg, specs, u0, p_time=4)
        assert np.allclose(res.u_end, ref, atol=1e-8)

    def test_vector_state(self, linear_problem):
        u0 = np.array([1.0, 0.5])
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=8)
        res = run_pfasst(cfg, _specs(linear_problem), u0, p_time=4)
        # converge to the fine collocation solution, not the exact ODE
        ref = SDCStepper(linear_problem, num_nodes=3, sweeps=14).run(
            u0, 0.0, 1.0, 0.25
        )
        assert np.allclose(res.u_end, ref, atol=1e-9)
        # and the collocation solution itself is close to exact
        exact = linear_problem.exact(1.0, u0)
        assert np.allclose(ref, exact, atol=5e-4)


class TestResultMetadata:
    def test_slice_end_values_chain(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=4, iterations=8)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=4)
        assert len(res.slice_end_values) == 4
        # converged: slice k's end == reference at t_{k+1}
        s = SDCStepper(scalar_problem, num_nodes=3, sweeps=14)
        u = np.array([1.0])
        for k in range(4):
            u = s.run(u, k * 0.5, (k + 1) * 0.5, 0.5)
            assert np.allclose(res.slice_end_values[k], u, atol=1e-6)

    def test_clock_count(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=2)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=4)
        assert len(res.clocks) == 4
        assert res.makespan >= 0.0

    def test_iterations_done_records_full_count(self, scalar_problem):
        cfg = PfasstConfig(t0=0.0, t_end=1.0, n_steps=4, iterations=3)
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=4)
        assert res.iterations_done == [3]

    def test_residual_tol_early_exit(self, scalar_problem):
        cfg = PfasstConfig(
            t0=0.0, t_end=1.0, n_steps=4, iterations=25, residual_tol=1e-10
        )
        res = run_pfasst(cfg, _specs(scalar_problem), np.array([1.0]), p_time=4)
        assert res.iterations_done[0] < 25
        assert max(r[-1] for r in res.residuals) <= 1e-10


class TestPaperConfigurations:
    """PFASST(X, Y, P_T) variants from Fig. 7b."""

    @pytest.mark.parametrize("iters,coarse_sweeps", [(1, 2), (2, 2)])
    def test_paper_variant_accuracy_order(self, scalar_problem, iters,
                                          coarse_sweeps):
        """PFASST(1,2,·) ~ 3rd order, PFASST(2,2,·) ~ 4th order (Fig. 7b).

        The mean rate over a 3-point dt ladder is used: single-halving
        rates fluctuate around error-curve crossovers."""
        u0 = np.array([1.0])
        ref = SDCStepper(scalar_problem, num_nodes=5, sweeps=10).run(
            u0, 0.0, 2.0, 0.01
        )
        errors = []
        for n_steps in (8, 16, 32):
            cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=n_steps,
                               iterations=iters)
            specs = _specs(scalar_problem, coarse_sweeps=coarse_sweeps)
            res = run_pfasst(cfg, specs, u0, p_time=8)
            errors.append(abs((res.u_end - ref).item()))
        mean_rate = np.log2(errors[0] / errors[-1]) / 2.0
        assert mean_rate > iters + 1.0  # at least order iters+2 w/ slack
