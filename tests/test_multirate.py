"""Tests for the multirate far-field evaluator (paper Sec. V outlook)."""

import numpy as np
import pytest

from repro.tree import MultirateTreeEvaluator, TreeEvaluator
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig


@pytest.fixture(scope="module")
def setup():
    cfg = SheetConfig(n=400)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    return ps, cfg, kernel


class TestMultirate:
    def test_refresh_call_matches_plain_tree(self, setup):
        ps, cfg, kernel = setup
        plain = TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=32)
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32,
                                       freeze_tolerance=0.01 * cfg.sigma)
        a = plain.field(ps.positions, ps.charges)
        b = multi.field(ps.positions, ps.charges)  # first call refreshes
        assert multi.refresh_count == 1
        assert np.allclose(a.velocity, b.velocity, atol=1e-12)
        assert np.allclose(a.gradient, b.gradient, atol=1e-12)

    def test_frozen_far_consistent_when_static(self, setup):
        """If particles do not move, the frozen far field is exact."""
        ps, cfg, kernel = setup
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32,
                                       freeze_tolerance=0.01 * cfg.sigma)
        first = multi.field(ps.positions, ps.charges)
        second = multi.field(ps.positions, ps.charges)  # frozen path
        assert multi.frozen_count == 1
        assert np.allclose(second.velocity, first.velocity, atol=1e-12)
        assert np.allclose(second.gradient, first.gradient, atol=1e-12)

    def test_frozen_far_small_error_when_moving_slightly(self, setup):
        ps, cfg, kernel = setup
        tol = 0.05 * cfg.sigma
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32, freeze_tolerance=tol)
        plain = TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=32)
        multi.field(ps.positions, ps.charges)
        moved = ps.positions + 0.5 * tol
        exact = plain.field(moved, ps.charges)
        frozen = multi.field(moved, ps.charges)
        assert multi.frozen_count == 1  # below tolerance: no refresh
        rel = np.max(np.abs(frozen.velocity - exact.velocity)) / np.max(
            np.abs(exact.velocity)
        )
        assert rel < 5e-2

    def test_large_move_triggers_refresh(self, setup):
        ps, cfg, kernel = setup
        tol = 0.01 * cfg.sigma
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32, freeze_tolerance=tol)
        plain = TreeEvaluator(kernel, cfg.sigma, theta=0.6, leaf_size=32)
        multi.field(ps.positions, ps.charges)
        moved = ps.positions + 10 * tol
        out = multi.field(moved, ps.charges)
        assert multi.refresh_count == 2
        exact = plain.field(moved, ps.charges)
        assert np.allclose(out.velocity, exact.velocity, atol=1e-12)

    def test_charge_drift_triggers_refresh(self, setup):
        ps, cfg, kernel = setup
        tol = 0.01
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32, freeze_tolerance=tol)
        multi.field(ps.positions, ps.charges)
        multi.field(ps.positions, ps.charges * (1.0 + 5 * tol))
        assert multi.refresh_count == 2

    def test_zero_tolerance_always_refreshes(self, setup):
        ps, cfg, kernel = setup
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32, freeze_tolerance=0.0)
        multi.field(ps.positions, ps.charges)
        multi.field(ps.positions, ps.charges)
        assert multi.refresh_count == 2
        assert multi.frozen_count == 0

    def test_particle_count_change_forces_refresh(self, setup):
        ps, cfg, kernel = setup
        multi = MultirateTreeEvaluator(kernel, cfg.sigma, theta=0.6,
                                       leaf_size=32,
                                       freeze_tolerance=cfg.sigma)
        multi.field(ps.positions, ps.charges)
        out = multi.field(ps.positions[:200], ps.charges[:200])
        assert out.velocity.shape == (200, 3)
        assert multi.refresh_count == 2

    def test_invalid_tolerance(self, setup):
        _, cfg, kernel = setup
        with pytest.raises(ValueError, match="freeze_tolerance"):
            MultirateTreeEvaluator(kernel, cfg.sigma, freeze_tolerance=-1.0)

    def test_usable_as_pfasst_coarse_level(self, setup):
        """End-to-end: PFASST with a multirate coarse propagator still
        converges toward the fine solution (the outlook's purpose)."""
        from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
        from repro.sdc import SDCStepper
        from repro.vortex import VortexProblem

        ps, cfg, kernel = setup
        fine_ev = TreeEvaluator(kernel, cfg.sigma, theta=0.3, leaf_size=32)
        coarse_ev = MultirateTreeEvaluator(
            kernel, cfg.sigma, theta=0.6, leaf_size=32,
            freeze_tolerance=0.02 * cfg.sigma,
        )
        fine = VortexProblem(ps.volumes, fine_ev)
        coarse = fine.with_evaluator(coarse_ev)
        u0 = ps.state()
        config = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=4)
        specs = [
            LevelSpec(fine, num_nodes=3, sweeps=1),
            LevelSpec(coarse, num_nodes=2, sweeps=2),
        ]
        res = run_pfasst(config, specs, u0, p_time=2)
        ref = SDCStepper(fine, num_nodes=3, sweeps=10).run(u0, 0.0, 1.0, 0.5)
        err = np.max(np.abs(res.u_end[0] - ref[0])) / np.max(np.abs(ref[0]))
        assert err < 1e-6
        assert res.residuals[-1][-1] < res.residuals[-1][0]
        # the frozen path must actually have been exercised
        assert coarse_ev.frozen_count > 0
