"""Tests for the dual traversal and MAC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tree.build import build_octree
from repro.tree.mac import mac_accept
from repro.tree.multipole import compute_vortex_moments
from repro.tree.traversal import dual_traversal


class TestMAC:
    def test_theta_zero_rejects_everything(self):
        mask = mac_accept(
            0.0, np.array([1.0]), np.array([0.5]), np.array([100.0]),
            np.array([0.1]),
        )
        assert not mask.any()

    def test_far_small_node_accepted(self):
        mask = mac_accept(
            0.5, np.array([1.0]), np.array([0.5]), np.array([10.0]),
            np.array([0.5]),
        )
        assert mask.all()

    def test_near_node_rejected(self):
        mask = mac_accept(
            0.5, np.array([1.0]), np.array([0.5]), np.array([1.5]),
            np.array([0.5]),
        )
        assert not mask.any()

    def test_overlapping_group_rejected(self):
        """Negative effective distance must never accept."""
        mask = mac_accept(
            10.0, np.array([1.0]), np.array([0.5]), np.array([0.3]),
            np.array([0.5]),
        )
        assert not mask.any()

    def test_bmax_variant_uses_cluster_radius(self):
        # big cell, tiny actual cluster: bmax accepts, bh rejects
        args = (np.array([2.0]), np.array([0.1]), np.array([3.0]),
                np.array([0.0]))
        assert not mac_accept(0.5, *args, variant="bh").any()
        assert mac_accept(0.5, *args, variant="bmax").all()

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError, match="theta"):
            mac_accept(-0.1, np.array([1.0]), np.array([1.0]),
                       np.array([1.0]), np.array([1.0]))

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            mac_accept(0.5, np.array([1.0]), np.array([1.0]),
                       np.array([1.0]), np.array([1.0]), variant="xxl")


class TestTraversalCompleteness:
    """Every group must interact with every particle exactly once."""

    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.7, 1.2])
    def test_partition_of_sources(self, random_cloud, theta):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        mom = compute_vortex_moments(tree, ch)
        lists = dual_traversal(tree, theta, node_bmax=mom.bmax)
        n = pos.shape[0]
        for gi in range(lists.n_groups):
            covered = np.zeros(n, dtype=int)
            for node in lists.far_node[lists.far_group == gi]:
                lo, hi = tree.node_start[node], tree.node_end[node]
                covered[lo:hi] += 1
            for node in lists.near_node[lists.near_group == gi]:
                lo, hi = tree.node_start[node], tree.node_end[node]
                covered[lo:hi] += 1
            assert np.all(covered == 1), f"group {gi} double/under-covered"

    def test_theta_zero_is_all_near(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        lists = dual_traversal(tree, 0.0)
        assert lists.far_group.size == 0
        n_leaves = tree.leaves().size
        assert lists.near_group.size == n_leaves * n_leaves

    def test_own_leaf_always_near(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        lists = dual_traversal(tree, 0.6)
        for gi, leaf in enumerate(lists.groups):
            mine = lists.near_node[lists.near_group == gi]
            assert leaf in mine

    def test_larger_theta_fewer_interactions(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        mom = compute_vortex_moments(tree, ch)
        totals = []
        for theta in (0.2, 0.5, 1.0):
            lists = dual_traversal(tree, theta, node_bmax=mom.bmax)
            totals.append(
                lists.far_interaction_count(tree)
                + lists.near_interaction_count(tree)
            )
        assert totals[0] > totals[1] > totals[2]

    def test_accepted_nodes_satisfy_mac(self, random_cloud):
        """Every far pair satisfies s/d <= theta with the group-collective
        distance (the conservative guarantee the evaluation relies on)."""
        pos, ch = random_cloud
        theta = 0.5
        tree = build_octree(pos, leaf_size=12)
        mom = compute_vortex_moments(tree, ch)
        lists = dual_traversal(tree, theta, node_bmax=mom.bmax)
        gc = tree.node_center[lists.groups[lists.far_group]]
        nc = tree.node_center[lists.far_node]
        dist = np.linalg.norm(gc - nc, axis=1)
        rg = mom.bmax[lists.groups[lists.far_group]]
        s = tree.node_size[lists.far_node]
        assert np.all(s <= theta * (dist - rg) + 1e-12)

    def test_bmax_requires_moments(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        with pytest.raises(ValueError, match="bmax"):
            dual_traversal(tree, 0.5, variant="bmax")

    def test_mac_test_count_positive(self, random_cloud):
        pos, ch = random_cloud
        tree = build_octree(pos, leaf_size=12)
        lists = dual_traversal(tree, 0.5)
        assert lists.mac_tests >= lists.n_groups


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    theta=st.floats(0.0, 1.5),
    leaf_size=st.integers(4, 40),
)
def test_completeness_property(seed, theta, leaf_size):
    rng = np.random.default_rng(seed)
    pos = rng.random((120, 3))
    tree = build_octree(pos, leaf_size=leaf_size)
    lists = dual_traversal(tree, theta)
    n = pos.shape[0]
    counts = tree.node_end - tree.node_start
    for gi in range(lists.n_groups):
        total = (
            counts[lists.far_node[lists.far_group == gi]].sum()
            + counts[lists.near_node[lists.near_group == gi]].sum()
        )
        assert total == n
