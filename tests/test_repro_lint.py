"""Tests for the repro-lint static analyser (rules RPR001-RPR007)."""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    HOT_MODULES,
    RULES,
    Violation,
    lint_paths,
    lint_source,
    main,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# fixture snippets: each rule fires on its positive example and is silenced
# by a per-line suppression comment
# ---------------------------------------------------------------------------
class TestRPR001UnseededRNG:
    def test_legacy_module_api(self):
        src = "import numpy as np\nx = np.random.rand(10)\n"
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR001"]
        assert "legacy global-state RNG" in vs[0].message

    def test_legacy_seed_call(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR001"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR001"]
        assert "seed" in vs[0].message

    def test_default_rng_none_seed(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR001"]

    def test_seeded_default_rng_clean(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(12345)\n"
            "rng2 = np.random.default_rng(seed=7)\n"
            "rng3 = np.random.default_rng(some_seed)\n"
        )
        assert lint_source(src, "pkg/mod.py") == []

    def test_suppressed(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)"
            "  # repro-lint: disable=RPR001 -- fixture noise only\n"
        )
        assert lint_source(src, "pkg/mod.py") == []


class TestRPR002Nondeterminism:
    def test_wallclock_outside_timing_modules(self):
        src = "import time\nt0 = time.perf_counter()\n"
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR002"]
        assert "wall-clock" in vs[0].message

    def test_bare_import_from_time(self):
        src = "from time import perf_counter\nt0 = perf_counter()\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR002"]

    def test_wallclock_allowed_in_timing_modules(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_source(src, "repro/utils/timing.py") == []
        assert lint_source(src, "repro/parallel/simmpi.py") == []

    def test_iteration_over_set_call(self):
        src = "for x in set(values):\n    f(x)\n"
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR002"]
        assert "sorted" in vs[0].message

    def test_iteration_over_set_literal(self):
        src = "for x in {1.0, 2.0}:\n    f(x)\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR002"]

    def test_comprehension_over_set(self):
        src = "ys = [f(x) for x in set(values)]\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR002"]

    def test_sum_over_set(self):
        src = "total = sum(set(values))\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR002"]

    def test_sorted_set_is_clean(self):
        src = "for x in sorted(set(values)):\n    f(x)\n"
        assert lint_source(src, "pkg/mod.py") == []

    def test_suppressed(self):
        src = (
            "import time\n"
            "t0 = time.time()  # repro-lint: disable=RPR002 -- log stamp\n"
        )
        assert lint_source(src, "pkg/mod.py") == []


class TestRPR003HotLoops:
    HOT = "repro/tree/engine.py"

    def test_range_over_shape0(self):
        src = "for i in range(pos.shape[0]):\n    f(i)\n"
        vs = lint_source(src, self.HOT)
        assert codes(vs) == ["RPR003"]

    def test_range_over_len(self):
        src = "for i in range(len(targets)):\n    f(i)\n"
        assert codes(lint_source(src, self.HOT)) == ["RPR003"]

    def test_range_over_n_particles(self):
        src = "for i in range(n_particles):\n    f(i)\n"
        assert codes(lint_source(src, self.HOT)) == ["RPR003"]

    def test_direct_iteration_over_particles(self):
        src = "for p in particles:\n    f(p)\n"
        assert codes(lint_source(src, self.HOT)) == ["RPR003"]

    def test_chunk_loop_is_clean(self):
        src = "for lo, hi in chunk_ranges(n, chunk):\n    f(lo, hi)\n"
        assert lint_source(src, self.HOT) == []

    def test_small_fixed_loop_is_clean(self):
        src = "for c in range(3):\n    f(c)\n"
        assert lint_source(src, self.HOT) == []

    def test_not_hot_module_is_clean(self):
        src = "for i in range(n_particles):\n    f(i)\n"
        assert lint_source(src, "repro/vortex/diagnostics.py") == []

    def test_suppressed(self):
        src = (
            "for i in range(n_particles):"
            "  # repro-lint: disable=RPR003 -- reference impl\n"
            "    f(i)\n"
        )
        assert lint_source(src, self.HOT) == []


class TestRPR004DtypeDrift:
    HOT = "repro/nbody/direct.py"

    def test_allocation_without_dtype(self):
        src = "import numpy as np\nbuf = np.zeros((n, 3))\n"
        vs = lint_source(src, self.HOT)
        assert codes(vs) == ["RPR004"]
        assert "dtype" in vs[0].message

    def test_allocation_with_keyword_dtype_clean(self):
        src = "import numpy as np\nbuf = np.zeros((n, 3), dtype=np.float64)\n"
        assert lint_source(src, self.HOT) == []

    def test_allocation_with_positional_dtype_clean(self):
        src = "import numpy as np\nidx = np.empty(0, np.int64)\n"
        assert lint_source(src, self.HOT) == []

    def test_float32_attribute(self):
        src = "import numpy as np\nx = arr.astype(np.float32)\n"
        vs = lint_source(src, self.HOT)
        assert codes(vs) == ["RPR004"]
        assert "float32" in vs[0].message

    def test_float32_dtype_string(self):
        src = "import numpy as np\nx = np.zeros(3, dtype='float32')\n"
        assert codes(lint_source(src, self.HOT)) == ["RPR004"]

    def test_not_hot_module_is_clean(self):
        src = "import numpy as np\nbuf = np.zeros((n, 3))\n"
        assert lint_source(src, "repro/pfasst/theory.py") == []

    def test_suppressed(self):
        src = (
            "import numpy as np\n"
            "buf = np.zeros(3)"
            "  # repro-lint: disable=RPR004 -- plot scratch\n"
        )
        assert lint_source(src, self.HOT) == []


class TestRPR005AssertInLibrary:
    def test_assert_flagged(self):
        src = "def f(x):\n    assert x.shape == (3,)\n    return x\n"
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR005"]
        assert "check_array" in vs[0].message

    def test_explicit_raise_clean(self):
        src = (
            "def f(x):\n"
            "    if x.shape != (3,):\n"
            "        raise ValueError('bad shape')\n"
            "    return x\n"
        )
        assert lint_source(src, "pkg/mod.py") == []

    def test_suppressed(self):
        src = (
            "def f(x):\n"
            "    assert x > 0"
            "  # repro-lint: disable=RPR005 -- perf-critical debug check\n"
        )
        assert lint_source(src, "pkg/mod.py") == []


class TestRPR006ComputeTask:
    def test_lambda_argument_flagged(self):
        src = (
            "from repro.parallel.executor import ComputeTask\n"
            "t = ComputeTask('p', 'rhs', args=(lambda u: u,))\n"
        )
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR006"]
        assert "lambda" in vs[0].message

    def test_lambda_in_positional_args_flagged(self):
        src = (
            "from repro.parallel import executor\n"
            "t = executor.ComputeTask('p', 'rhs', (lambda: 1,), (), ())\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR006"]

    def test_computed_method_flagged(self):
        src = (
            "from repro.parallel.executor import ComputeTask\n"
            "def f(name):\n"
            "    return ComputeTask('p', name, args=(1.0,))\n"
        )
        vs = lint_source(src, "pkg/mod.py")
        assert codes(vs) == ["RPR006"]
        assert "string literal" in vs[0].message

    def test_method_keyword_flagged(self):
        src = (
            "from repro.parallel.executor import ComputeTask\n"
            "m = str('rhs')\n"
            "t = ComputeTask(payload='p', method=m)\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR006"]

    def test_literal_method_and_plain_args_clean(self):
        src = (
            "from repro.parallel.executor import ComputeTask\n"
            "t = ComputeTask('p', 'rhs', args=(1.0,), arrays=(u,))\n"
        )
        assert lint_source(src, "pkg/mod.py") == []

    def test_other_call_with_lambda_clean(self):
        src = "x = sorted(items, key=lambda i: i.name)\n"
        assert lint_source(src, "pkg/mod.py") == []

    def test_suppressed(self):
        src = (
            "from repro.parallel.executor import ComputeTask\n"
            "t = ComputeTask('p', m)"
            "  # repro-lint: disable=RPR006 -- worker-side reconstruction\n"
        )
        assert lint_source(src, "pkg/mod.py") == []


# ---------------------------------------------------------------------------
# machinery
# ---------------------------------------------------------------------------
class TestMachinery:
    def test_suppression_is_per_code(self):
        """Disabling one code must not swallow a different one."""
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)"
            "  # repro-lint: disable=RPR005 -- wrong code\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR001"]

    def test_multi_code_suppression(self):
        src = (
            "import time\nimport numpy as np\n"
            "x = np.random.rand(int(time.time()))"
            "  # repro-lint: disable=RPR001,RPR002 -- demo\n"
        )
        assert lint_source(src, "pkg/mod.py") == []

    def test_violation_render(self):
        v = Violation("a.py", 3, 7, "RPR001", "msg")
        assert v.render() == "a.py:3:7: RPR001 msg"

    def test_every_rule_has_catalogue_entry(self):
        assert sorted(RULES) == [f"RPR00{i}" for i in range(1, 8)]

    def test_hot_modules_exist_in_repo(self):
        for sfx in HOT_MODULES:
            assert (REPO_SRC / "repro" / sfx).exists(), sfx

    def test_lint_paths_over_files(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        vs = lint_paths([str(tmp_path)])
        assert codes(vs) == ["RPR001"]
        assert vs[0].path == str(bad)


class TestCLI:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([str(f)]) == 0

    def test_exit_one_on_violations(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_parse_error_exit_two(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        assert main([str(f)]) == 2


def test_repository_lints_clean():
    """Acceptance: ``repro-lint src/`` exits 0 on this repository."""
    violations = lint_paths([str(REPO_SRC)])
    assert violations == [], "\n".join(v.render() for v in violations)


class TestRPR007RawTagLiterals:
    def test_send_with_tuple_literal(self):
        src = (
            "def prog(comm, rank):\n"
            "    yield comm.send(rank + 1, ('pred', 0), 1.0)\n"
        )
        vs = lint_source(src, "src/repro/pfasst/mod.py")
        assert codes(vs) == ["RPR007"]
        assert "registry" in vs[0].message

    def test_recv_with_string_literal(self):
        src = "def prog(comm, rank):\n    x = yield comm.recv(0, 'raw')\n"
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR007"]

    def test_collective_tag_keyword(self):
        src = (
            "def prog(comm):\n"
            "    yield from allreduce(comm, 1.0, tag=('ftsync', 0, 1))\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR007"]

    def test_collective_tag_positional(self):
        src = (
            "def prog(comm):\n"
            "    v = yield from bcast(comm, 1.0, 0, ('blockend', 0))\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPR007"]

    def test_registry_constant_clean(self):
        src = (
            "from repro.parallel import tags\n"
            "def prog(comm, rank):\n"
            "    yield comm.send(rank + 1, (tags.PRED, 0, 0, 1), 1.0)\n"
        )
        assert lint_source(src, "pkg/mod.py") == []

    def test_generator_send_not_a_comm_site(self):
        src = "def f(gen):\n    gen.send('value')\n"
        assert lint_source(src, "pkg/mod.py") == []

    def test_variable_tag_clean(self):
        src = "def prog(comm, tag):\n    x = yield comm.recv(0, tag)\n"
        assert lint_source(src, "pkg/mod.py") == []

    def test_registry_module_exempt(self):
        src = "PRED = register('pred', 'pfasst', 3)\n"
        assert lint_source(src, "src/repro/parallel/tags.py") == []

    def test_suppressible(self):
        src = (
            "def prog(comm):\n"
            "    x = yield comm.recv(0, 'raw')"
            "  # repro-lint: disable=RPR007 -- test fixture\n"
        )
        assert lint_source(src, "pkg/mod.py") == []
