"""Tests for the spherical vortex sheet initial condition."""

import numpy as np
import pytest

from repro.vortex.sheet import (
    SIGMA_OVER_H,
    SheetConfig,
    sphere_points,
    spherical_vortex_sheet,
)


class TestSpherePoints:
    @pytest.mark.parametrize("placement", ["fibonacci", "latlon", "random"])
    def test_count_and_radius(self, placement):
        pts = sphere_points(500, placement, seed=1)
        assert pts.shape == (500, 3)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)

    def test_fibonacci_deterministic(self):
        a = sphere_points(100, "fibonacci")
        b = sphere_points(100, "fibonacci")
        assert np.array_equal(a, b)

    def test_fibonacci_near_uniform(self):
        """Octant occupancy should be within 25% of N/8."""
        pts = sphere_points(4000, "fibonacci")
        octant = (pts[:, 0] > 0).astype(int) * 4 + \
                 (pts[:, 1] > 0).astype(int) * 2 + (pts[:, 2] > 0).astype(int)
        counts = np.bincount(octant, minlength=8)
        assert counts.min() > 0.75 * 500
        assert counts.max() < 1.25 * 500

    def test_latlon_exact_count_various_n(self):
        for n in (7, 64, 313, 1000):
            assert sphere_points(n, "latlon").shape == (n, 3)

    def test_invalid_placement(self):
        with pytest.raises(ValueError, match="placement"):
            sphere_points(10, "grid")

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError, match="n >= 1"):
            sphere_points(0)


class TestSheetConfig:
    def test_h_formula(self):
        cfg = SheetConfig(n=10_000)
        assert cfg.h == pytest.approx(np.sqrt(4 * np.pi / 10_000))

    def test_sigma_default_ratio(self):
        cfg = SheetConfig(n=1000)
        assert cfg.sigma == pytest.approx(SIGMA_OVER_H * cfg.h)

    def test_paper_values(self):
        """Paper Fig. 7 caption: sigma ~ 18.53 h, h ~ 0.035 at N = 10k."""
        cfg = SheetConfig(n=10_000)
        assert cfg.h == pytest.approx(0.0354, abs=1e-3)
        assert cfg.sigma == pytest.approx(0.657, abs=2e-2)


class TestSheet:
    def test_counts_and_volumes(self):
        cfg = SheetConfig(n=300)
        ps = spherical_vortex_sheet(cfg)
        assert ps.n == 300
        assert np.allclose(ps.volumes, cfg.h)

    def test_kwargs_constructor(self):
        ps = spherical_vortex_sheet(n=50, radius=2.0)
        assert np.allclose(np.linalg.norm(ps.positions, axis=1), 2.0)

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            spherical_vortex_sheet(SheetConfig(n=10), n=20)

    def test_vorticity_is_azimuthal(self):
        """omega is tangential: perpendicular to both e_r and e_z x ... """
        ps = spherical_vortex_sheet(n=200)
        # omega . e_r = 0 (tangent to the sphere)
        radial = np.einsum("ni,ni->n", ps.vorticity, ps.positions)
        assert np.allclose(radial, 0.0, atol=1e-12)
        # omega has no z-component (e_phi is horizontal)
        assert np.allclose(ps.vorticity[:, 2], 0.0, atol=1e-12)

    def test_vorticity_magnitude_profile(self):
        """|omega| = (3/8pi) sin(theta)."""
        ps = spherical_vortex_sheet(n=500)
        z = np.clip(ps.positions[:, 2], -1, 1)
        sin_theta = np.sqrt(1 - z * z)
        mag = np.linalg.norm(ps.vorticity, axis=1)
        assert np.allclose(mag, 3 / (8 * np.pi) * sin_theta, atol=1e-12)

    def test_total_vorticity_cancels(self):
        """By symmetry the azimuthal vorticity sums to ~0."""
        ps = spherical_vortex_sheet(n=2000)
        total = np.abs(ps.charges.sum(axis=0))
        scale = np.abs(ps.charges).sum()
        assert np.all(total < 1e-2 * scale)

    def test_linear_impulse_along_z(self):
        """The sheet's impulse points along the z axis (flow direction)."""
        from repro.vortex.diagnostics import linear_impulse

        ps = spherical_vortex_sheet(n=2000)
        impulse = linear_impulse(ps)
        assert abs(impulse[2]) > 100 * max(abs(impulse[0]), abs(impulse[1]))

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            spherical_vortex_sheet(SheetConfig(n=10, radius=-1.0))
