"""Tests for the commgraph dynamic layer: vector clocks, message races,
determinism certificates and Chrome-trace DAG arrows."""

import numpy as np
import pytest

from repro.analysis.commcheck import VerificationError
from repro.analysis.commgraph.hb import (
    build_certificate,
    chrome_flow_events,
    find_races,
)
from repro.parallel import FaultPlan, MessageFault, Scheduler, tags
from repro.parallel.collectives import allreduce


def _pipeline(comm):
    """Eager pipeline + allreduce: deterministic, certifiable."""
    rank, size = comm.rank, comm.size
    if rank + 1 < size:
        yield comm.send(rank + 1, (tags.PRED, 0, 0, rank), float(rank))
    left = 0.0
    if rank > 0:
        left = yield comm.recv(rank - 1, (tags.PRED, 0, 0, rank - 1))
    total = yield from allreduce(comm, left + 1.0)
    return {"rank": rank, "total": total}


def _run(certify=True, **kw):
    sched = Scheduler(4, certify=certify, **kw)
    results = sched.run(_pipeline)
    return sched, results


class TestCertificate:
    def test_disabled_by_default(self):
        sched = Scheduler(4)
        sched.run(_pipeline)
        assert sched.certificate is None

    def test_race_free_pipeline(self):
        sched, results = _run()
        cert = sched.certificate
        assert cert is not None and cert.race_free
        assert cert.n_ranks == 4
        assert cert.n_messages == cert.n_deliveries > 0
        assert len(cert.digest) == 32  # blake2b-16 hex
        assert "race-free" in cert.summary()
        assert cert.to_json()["race_free"] is True

    def test_digest_is_schedule_independent(self):
        a, _ = _run(service_order="ascending")
        b, _ = _run(service_order="descending")
        assert a.certificate.digest == b.certificate.digest

    def test_digest_survives_verify_replay(self):
        sched, _ = _run(verify=True)
        assert sched.certificate.race_free

    def test_different_programs_differ(self):
        def other(comm):
            total = yield from allreduce(comm, 1.0)
            return total

        a, _ = _run()
        b = Scheduler(4, certify=True)
        b.run(other)
        assert a.certificate.digest != b.certificate.digest

    def test_census_matches_metrics(self):
        sched, _ = _run()
        counters = sched.metrics.as_dict()["counters"]
        assert counters["mpi.messages"] == sched.certificate.n_messages
        assert counters["comm.races"] == 0
        assert any(k.startswith("comm.certificate{")
                   for k in counters)

    def test_certificate_metric_carries_digest(self):
        sched, _ = _run()
        counters = sched.metrics.as_dict()["counters"]
        key = next(k for k in counters if k.startswith("comm.certificate{"))
        assert sched.certificate.digest in key


def _stream(comm):
    """Three same-tag messages 0 -> 1; extra recvs absorb duplicates."""
    if comm.rank == 0:
        for k in range(3):
            yield comm.send(1, (tags.PRED, 0, 0, 0), float(k))
    elif comm.rank == 1:
        got = []
        for _ in range(3):
            got.append((yield comm.recv(0, (tags.PRED, 0, 0, 0))))
        return got
    return None


class TestRaces:
    # the duplicated first message shifts the stream: the third original
    # stays queued at exit, which is exactly the point — ignore the
    # orphan warning and assert on the race instead
    @pytest.mark.filterwarnings(
        "ignore::repro.parallel.simmpi.OrphanMessageWarning")
    def test_duplicate_fault_is_a_race(self):
        plan = FaultPlan(messages=(
            MessageFault(kind="duplicate", tag=(tags.PRED, 0, 0, 0),
                         occurrences=(0,)),
        ))
        sched = Scheduler(2, certify=True, fault_plan=plan)
        sched.run(_stream)
        cert = sched.certificate
        assert not cert.race_free
        [race] = [r for r in cert.races
                  if r.kind == "duplicate-delivery"]
        assert race.source == 0 and race.dest == 1
        # the duplicate shares its original's send event, hence its clock
        assert race.first_vc == race.second_vc
        assert race.tag_class == "pred"
        assert "duplicate-delivery" in race.render()
        counters = sched.metrics.as_dict()["counters"]
        assert counters["comm.races"] >= 1

    @pytest.mark.filterwarnings(
        "ignore::repro.parallel.simmpi.OrphanMessageWarning")
    def test_race_survives_certified_verify(self):
        # digests still agree across the replay (the fault is replayed
        # identically) — the race itself marks the run as suspect
        plan = FaultPlan(messages=(
            MessageFault(kind="duplicate", tag=(tags.PRED, 0, 0, 0),
                         occurrences=(0,)),
        ))
        sched = Scheduler(2, certify=True, verify=True, fault_plan=plan)
        sched.run(_stream)
        assert not sched.certificate.race_free

    def test_find_races_kinds(self):
        # synthetic deliveries on one channel
        def dv(svc, rvc, t):
            return (0, 1, "t", svc, rvc, 0.0, t)

        dup = find_races([dv((1, 0), (1, 1), 1.0),
                          dv((1, 0), (1, 2), 2.0)])
        assert [r.kind for r in dup] == ["duplicate-delivery"]
        reorder = find_races([dv((2, 0), (2, 1), 1.0),
                              dv((1, 0), (2, 2), 2.0)])
        assert [r.kind for r in reorder] == ["reordered-delivery"]
        ordered = find_races([dv((1, 0), (1, 1), 1.0),
                              dv((2, 0), (2, 2), 2.0)])
        assert ordered == []

    def test_concurrent_send_kind(self):
        # incomparable clocks (can only arise with relaying/forwarding)
        deliveries = [
            (0, 1, "t", (1, 0, 0), (1, 1, 0), 0.0, 1.0),
            (0, 1, "t", (0, 0, 1), (1, 2, 1), 0.0, 2.0),
        ]
        [race] = find_races(deliveries)
        assert race.kind == "concurrent-send"


class TestVerifyIntegration:
    def test_schedule_dependent_program_still_caught(self):
        # the classic verify=True catch composes with certify=True
        shared = []

        def racy(comm):
            shared.append(comm.rank)
            yield comm.send((comm.rank + 1) % comm.size, ("pred", 0, 0, 0),
                            float(len(shared)))
            v = yield comm.recv((comm.rank - 1) % comm.size,
                                ("pred", 0, 0, 0))
            return v

        sched = Scheduler(2, certify=True, verify=True)
        with pytest.raises(VerificationError):
            sched.run(racy)


class TestChromeFlows:
    def test_flow_event_layout(self):
        deliveries = [
            (0, 1, (tags.PRED, 0, 0, 0), (1, 0), (1, 1), 0.25, 0.75),
        ]
        events = chrome_flow_events(deliveries)
        assert len(events) == 2
        start, finish = events
        assert start["ph"] == "s" and finish["ph"] == "f"
        assert finish["bp"] == "e"
        assert start["id"] == finish["id"] == 1
        assert start["pid"] == finish["pid"] == 0  # virtual-clock process
        assert start["tid"] == 0 and finish["tid"] == 1
        assert start["ts"] == pytest.approx(0.25e6)
        assert finish["ts"] == pytest.approx(0.75e6)
        assert "pred" in start["name"]

    def test_scheduler_deliveries_export(self):
        sched, _ = _run()
        events = chrome_flow_events(sched._deliveries)
        assert len(events) == 2 * sched.certificate.n_deliveries
        assert {e["ph"] for e in events} == {"s", "f"}


class TestBuildCertificate:
    def test_empty_run(self):
        cert = build_certificate(2, [], {}, [(0, 0), (0, 0)])
        assert cert.race_free and cert.n_messages == 0
        assert cert.digest  # still a stable digest

    def test_digest_sensitive_to_census(self):
        a = build_certificate(2, [], {(0, 1, "t"): 1}, [(1, 0), (0, 0)])
        b = build_certificate(2, [], {(0, 1, "t"): 2}, [(1, 0), (0, 0)])
        assert a.digest != b.digest


class TestPfasstIntegration:
    def test_run_pfasst_exposes_certificate(self, scalar_problem):
        from repro.pfasst.controller import PfasstConfig, run_pfasst
        from repro.pfasst.level import LevelSpec

        cfg = PfasstConfig(t0=0.0, t_end=0.4, n_steps=2, iterations=2)
        specs = [LevelSpec(scalar_problem, 3, sweeps=1),
                 LevelSpec(scalar_problem, 2, sweeps=1)]
        u0 = np.array([1.0])
        res = run_pfasst(cfg, specs, u0, p_time=2, certify=True,
                         verify=True)
        assert res.certificate is not None
        assert res.certificate.race_free
        plain = run_pfasst(cfg, specs, u0, p_time=2)
        assert plain.certificate is None
        np.testing.assert_array_equal(res.u_end, plain.u_end)
