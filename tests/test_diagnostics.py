"""Tests for flow diagnostics and their conservation under integration."""

import numpy as np
import pytest

from repro.integrators import get_integrator
from repro.vortex import (
    DirectEvaluator,
    ParticleSystem,
    VortexProblem,
    get_kernel,
    spherical_vortex_sheet,
)
from repro.vortex.diagnostics import (
    angular_impulse,
    compute_diagnostics,
    enstrophy,
    kinetic_energy,
    linear_impulse,
    total_vorticity,
)
from repro.vortex.sheet import SheetConfig


class TestDefinitions:
    def test_total_vorticity_single_particle(self):
        ps = ParticleSystem(
            np.array([[1.0, 0, 0]]), np.array([[0, 0, 2.0]]), np.array([3.0])
        )
        assert np.allclose(total_vorticity(ps), [0, 0, 6.0])

    def test_linear_impulse_single_particle(self):
        ps = ParticleSystem(
            np.array([[1.0, 0, 0]]), np.array([[0, 0, 2.0]]), np.array([1.0])
        )
        # 0.5 * x cross alpha = 0.5 * (1,0,0) x (0,0,2) = 0.5*(0,-2,0)
        assert np.allclose(linear_impulse(ps), [0, -1.0, 0])

    def test_angular_impulse_single_particle(self):
        ps = ParticleSystem(
            np.array([[1.0, 0, 0]]), np.array([[0, 0, 3.0]]), np.array([1.0])
        )
        inner = np.cross([1.0, 0, 0], [0, 0, 3.0])
        expected = np.cross([1.0, 0, 0], inner) / 3.0
        assert np.allclose(angular_impulse(ps), expected)

    def test_enstrophy_positive(self, small_sheet):
        ps, _ = small_sheet
        assert enstrophy(ps) > 0

    def test_kinetic_energy_positive(self, small_sheet):
        ps, cfg = small_sheet
        e = kinetic_energy(ps, get_kernel("algebraic6"), cfg.sigma)
        assert e > 0

    def test_compute_diagnostics_dict(self, small_sheet):
        ps, _ = small_sheet
        d = compute_diagnostics(ps, time=1.5).as_dict()
        assert d["time"] == 1.5
        assert set(d) >= {
            "total_vorticity_norm",
            "linear_impulse_norm",
            "angular_impulse_norm",
            "enstrophy",
        }


class TestConservation:
    """The flow invariants must be (nearly) conserved by accurate schemes."""

    @pytest.fixture(scope="class")
    def evolved(self):
        cfg = SheetConfig(n=150)
        ps = spherical_vortex_sheet(cfg)
        prob = VortexProblem(
            ps.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
        )
        rk4 = get_integrator("rk4")
        u_end = rk4.run(prob, ps.state(), 0.0, 2.0, 0.25)
        return ps, ps.with_state(u_end)

    def test_total_vorticity_conserved(self, evolved):
        before, after = evolved
        drift = np.linalg.norm(
            total_vorticity(after) - total_vorticity(before)
        )
        scale = np.abs(before.charges).sum()
        assert drift < 1e-8 * scale

    def test_linear_impulse_conserved(self, evolved):
        before, after = evolved
        drift = np.linalg.norm(linear_impulse(after) - linear_impulse(before))
        assert drift < 1e-4 * np.linalg.norm(linear_impulse(before))

    def test_angular_impulse_bounded_drift(self, evolved):
        before, after = evolved
        scale = max(np.linalg.norm(angular_impulse(before)), 1e-3)
        drift = np.linalg.norm(
            angular_impulse(after) - angular_impulse(before)
        )
        assert drift < 5e-2 * max(scale, 1.0)

    def test_sheet_translates_along_axis(self, evolved):
        """The vortex sheet self-propels along its impulse axis (+z here;
        the paper's figure uses the opposite orientation convention)."""
        from repro.vortex.diagnostics import linear_impulse

        before, after = evolved
        dz = after.positions[:, 2].mean() - before.positions[:, 2].mean()
        impulse_z = linear_impulse(before)[2]
        assert dz * impulse_z > 0  # translation follows the impulse
        assert abs(dz) > 1e-3
