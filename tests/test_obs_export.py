"""Tests for repro.obs.export — native round-trip, CSV, and the Fig. 6
acceptance check: a traced ``run_pfasst`` exports Chrome ``trace_event``
JSON whose per-rank spans reproduce the paper's schedule structure."""

import json
from collections import defaultdict

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    export_chrome_trace,
    load_trace,
    save_trace,
    spans_to_csv,
    use_metrics,
)
from repro.parallel import CommCostModel
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.vortex.problem import ODEProblem

P_TIME = 4
ITERATIONS = 2


class _Scalar(ODEProblem):
    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return -u * u + np.sin(3.0 * t)


@pytest.fixture(scope="module")
def traced():
    """One traced PFASST(2-level) run at P_T=4: (result, tracer, metrics)."""
    problem = _Scalar()
    cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=P_TIME,
                       iterations=ITERATIONS, trace=True)
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    tracer = Tracer(meta={"suite": "test_obs_export"})
    metrics = MetricsRegistry()
    with use_metrics(metrics):
        result = run_pfasst(cfg, specs, np.array([1.0]), p_time=P_TIME,
                            cost_model=CommCostModel(),
                            measure_compute=True, tracer=tracer)
    return result, tracer, metrics


@pytest.fixture(scope="module")
def chrome(traced):
    """The exported-and-reparsed Chrome trace (what Perfetto would load)."""
    _, tracer, _ = traced
    return chrome_trace(tracer)


def _complete_events_by_tid(chrome):
    """pid-0 (virtual time) "X" events grouped by thread id."""
    by_tid = defaultdict(list)
    for ev in chrome["traceEvents"]:
        if ev.get("ph") == "X" and ev["pid"] == 0:
            by_tid[ev["tid"]].append(ev)
    for events in by_tid.values():
        events.sort(key=lambda e: e["ts"])
    return dict(by_tid)


def _instants(chrome, name):
    return [ev for ev in chrome["traceEvents"]
            if ev.get("ph") == "i" and ev["name"] == name]


class TestNativeRoundTrip:
    def test_save_load_preserves_everything(self, traced, tmp_path):
        _, tracer, metrics = traced
        path = save_trace(tracer, tmp_path / "t.json", metrics=metrics,
                          meta={"extra": 1})
        data = load_trace(path)
        assert len(data.spans) == len(tracer.spans)
        assert len(data.instants) == len(tracer.instants)
        assert data.tracks() == tracer.tracks()
        assert data.meta["suite"] == "test_obs_export"
        assert data.meta["extra"] == 1
        assert data.metrics["counters"]["mpi.messages"] > 0
        first = data.spans[0]
        assert (first.name, first.track, first.t0, first.t1) == (
            tracer.spans[0].name, tracer.spans[0].track,
            tracer.spans[0].t0, tracer.spans[0].t1)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="not a repro-trace file"):
            load_trace(path)

    def test_spans_to_csv(self, traced):
        _, tracer, _ = traced
        lines = spans_to_csv(tracer).strip().splitlines()
        assert lines[0] == "track,name,clock,cat,t0,t1,duration"
        assert len(lines) == len(tracer.spans) + 1


class TestChromeTraceFig6:
    """Acceptance: the exported Chrome JSON reproduces Fig. 6 structure."""

    def test_export_is_valid_json_with_one_thread_per_rank(
            self, traced, tmp_path):
        _, tracer, _ = traced
        path = export_chrome_trace(tracer, tmp_path / "t.chrome.json")
        loaded = json.loads(path.read_text())  # parses cleanly
        names = {(ev["pid"], ev["tid"]): ev["args"]["name"]
                 for ev in loaded["traceEvents"]
                 if ev.get("ph") == "M" and ev["name"] == "thread_name"}
        for rank in range(P_TIME):
            assert names[(0, rank)] == f"rank{rank}"

    def test_every_rank_has_predictor_and_sweeps(self, chrome):
        by_tid = _complete_events_by_tid(chrome)
        for rank in range(P_TIME):
            labels = [ev["name"] for ev in by_tid[rank]]
            # Fig. 6 staircase: rank n performs n+1 predictor sweeps
            assert sum(1 for l in labels
                       if l.startswith("predict")) == rank + 1
            for k in range(ITERATIONS):
                assert f"sweep:L0:k{k}" in labels
                assert f"sweep:L1:k{k}" in labels

    def test_predictor_staircase_in_virtual_time(self, chrome):
        """Rank n's j-th predictor sweep starts only after rank n-1's
        (j-1)-th has finished — on the exported timeline itself."""
        by_tid = _complete_events_by_tid(chrome)
        start, end = {}, {}
        for rank in range(P_TIME):
            for ev in by_tid[rank]:
                if ev["name"].startswith("predict:"):
                    j = int(ev["name"].split(":")[1])
                    start[(rank, j)] = ev["ts"]
                    end[(rank, j)] = ev["ts"] + ev["dur"]
        for rank in range(1, P_TIME):
            for j in range(1, rank + 1):
                assert start[(rank, j)] >= end[(rank - 1, j - 1)] - 1e-6

    def test_neighbour_sends_precede_their_receives(self, chrome):
        """Every message between neighbours appears on the timeline with
        the send instant no later than the matching receive completes."""
        sends = defaultdict(list)
        recvs = defaultdict(list)
        for ev in _instants(chrome, "send"):
            sends[(ev["tid"], ev["args"]["dest"])].append(ev["ts"])
        for ev in _instants(chrome, "recv"):
            recvs[(ev["args"]["source"], ev["tid"])].append(ev["ts"])
        pairs = [(r, r + 1) for r in range(P_TIME - 1)]
        assert all(sends[p] for p in pairs), "no forward messages traced"
        for pair in pairs:
            assert len(sends[pair]) == len(recvs[pair])
            for t_send, t_recv in zip(sorted(sends[pair]),
                                      sorted(recvs[pair])):
                assert t_send <= t_recv + 1e-6

    def test_wall_spans_live_in_their_own_process(self, chrome):
        pids = {ev["pid"] for ev in chrome["traceEvents"]
                if ev.get("ph") == "X"}
        assert 0 in pids  # virtual-time schedule
        process_names = {ev["pid"]: ev["args"]["name"]
                         for ev in chrome["traceEvents"]
                         if ev.get("ph") == "M"
                         and ev["name"] == "process_name"}
        assert process_names[0] == "virtual time (simulated ranks)"
        if 1 in pids:
            wall = [ev for ev in chrome["traceEvents"]
                    if ev.get("ph") == "X" and ev["pid"] == 1]
            assert min(ev["ts"] for ev in wall) >= 0.0
            assert process_names[1] == "wall clock"

    def test_meta_travels_in_other_data(self, chrome):
        assert chrome["otherData"]["suite"] == "test_obs_export"


class TestRunPfasstMetrics:
    def test_result_carries_message_counters(self, traced):
        result, _, metrics = traced
        counters = result.metrics["counters"]
        assert counters["mpi.messages"] > 0
        assert counters["mpi.bytes"] > 0
        # per-pair series exist for every forward neighbour link
        for r in range(P_TIME - 1):
            assert counters[f"mpi.messages{{dest={r + 1},src={r}}}"] > 0
        # the globally-installed registry saw the same totals
        assert (metrics.as_dict()["counters"]["mpi.messages"]
                == counters["mpi.messages"])
