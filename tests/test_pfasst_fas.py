"""Tests for the FAS correction (paper Eq. 16)."""

import numpy as np
import pytest

from repro.pfasst.fas import fas_correction
from repro.pfasst.transfer import TimeSpaceTransfer
from repro.sdc.quadrature import make_rule
from repro.sdc.sweeper import ExplicitSDCSweeper


@pytest.fixture
def pair():
    return TimeSpaceTransfer(make_rule(3, "lobatto"), make_rule(2, "lobatto"))


class TestStructure:
    def test_shape_and_zero_first_entry(self, pair, rng):
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        tau = fas_correction(0.1, pair, F_f, F_c)
        assert tau.shape == (2, 2)
        assert np.allclose(tau[0], 0.0)

    def test_identical_integrals_give_zero_tau(self, pair):
        """If F is constant, both quadratures integrate it exactly
        and the FAS correction vanishes."""
        F_f = np.ones((3, 2))
        F_c = np.ones((2, 2))
        tau = fas_correction(0.3, pair, F_f, F_c)
        assert np.allclose(tau, 0.0, atol=1e-14)

    def test_quadratic_f_gives_nonzero_tau(self, pair):
        """A quadratic RHS is integrated exactly on 3 Lobatto nodes but
        NOT on 2 — tau captures exactly that defect."""
        tau_f = make_rule(3).nodes
        tau_c = make_rule(2).nodes
        F_f = (tau_f**2)[:, None]
        F_c = (tau_c**2)[:, None]
        dt = 1.0
        tau = fas_correction(dt, pair, F_f, F_c)
        # exact integral of t^2 over [0,1] = 1/3; trapezoid gives 1/2
        assert tau[1, 0] == pytest.approx(1.0 / 3.0 - 0.5, abs=1e-13)

    def test_linear_in_dt(self, pair, rng):
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        t1 = fas_correction(0.1, pair, F_f, F_c)
        t2 = fas_correction(0.2, pair, F_f, F_c)
        assert np.allclose(t2, 2 * t1)

    def test_tau_fine_accumulates(self, pair, rng):
        """Multi-level: the fine tau is restricted into the coarse tau."""
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        tau_f = np.zeros((3, 2))
        tau_f[1] = [1.0, 0.0]
        tau_f[2] = [0.0, 1.0]
        without = fas_correction(0.1, pair, F_f, F_c)
        with_tau = fas_correction(0.1, pair, F_f, F_c, tau_fine=tau_f)
        # cumulative fine tau at coarse nodes {0, 1} is [0, (1,1)]
        delta = with_tau - without
        assert np.allclose(np.cumsum(delta, axis=0)[-1], [1.0, 1.0])


class TestFixedPointProperty:
    def test_restricted_fine_solution_solves_corrected_coarse_problem(
        self, linear_problem
    ):
        """The PFASST fixed point: solve the fine collocation problem,
        restrict, compute tau — the coarse residual *with tau* is zero."""
        dt = 0.2
        u0 = np.array([1.0, 0.0])
        fine_rule, coarse_rule = make_rule(3), make_rule(2)
        pair = TimeSpaceTransfer(fine_rule, coarse_rule)
        fine = ExplicitSDCSweeper(linear_problem, fine_rule)
        coarse = ExplicitSDCSweeper(linear_problem, coarse_rule)

        U, F = fine.initialize(0.0, dt, u0)
        for _ in range(80):
            U, F = fine.sweep(0.0, dt, U, F)
        assert fine.residual(dt, U, F, u0) < 1e-13

        U_c = pair.restrict_nodes(U)
        F_c = np.stack([
            linear_problem.rhs(t, u)
            for t, u in zip(coarse.node_times(0.0, dt), U_c)
        ])
        tau = fas_correction(dt, pair, F, F_c)
        assert coarse.residual(dt, U_c, F_c, u0, tau=tau) < 1e-13

    def test_coarse_sweep_leaves_fixed_point_invariant(self, linear_problem):
        dt = 0.2
        u0 = np.array([1.0, 0.0])
        fine_rule, coarse_rule = make_rule(3), make_rule(2)
        pair = TimeSpaceTransfer(fine_rule, coarse_rule)
        fine = ExplicitSDCSweeper(linear_problem, fine_rule)
        coarse = ExplicitSDCSweeper(linear_problem, coarse_rule)

        U, F = fine.initialize(0.0, dt, u0)
        for _ in range(80):
            U, F = fine.sweep(0.0, dt, U, F)
        U_c = pair.restrict_nodes(U)
        F_c = np.stack([
            linear_problem.rhs(t, u)
            for t, u in zip(coarse.node_times(0.0, dt), U_c)
        ])
        tau = fas_correction(dt, pair, F, F_c)
        U_c2, _ = coarse.sweep(0.0, dt, U_c, F_c, tau=tau)
        assert np.allclose(U_c2, U_c, atol=1e-12)
