"""Tests for the FAS correction (paper Eq. 16)."""

import numpy as np
import pytest

from repro.pfasst.fas import fas_correction
from repro.pfasst.transfer import TimeSpaceTransfer
from repro.sdc.quadrature import make_rule
from repro.sdc.sweeper import ExplicitSDCSweeper


@pytest.fixture
def pair():
    return TimeSpaceTransfer(make_rule(3, "lobatto"), make_rule(2, "lobatto"))


class TestStructure:
    def test_shape_and_zero_first_entry(self, pair, rng):
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        tau = fas_correction(0.1, pair, F_f, F_c)
        assert tau.shape == (2, 2)
        assert np.allclose(tau[0], 0.0)

    def test_identical_integrals_give_zero_tau(self, pair):
        """If F is constant, both quadratures integrate it exactly
        and the FAS correction vanishes."""
        F_f = np.ones((3, 2))
        F_c = np.ones((2, 2))
        tau = fas_correction(0.3, pair, F_f, F_c)
        assert np.allclose(tau, 0.0, atol=1e-14)

    def test_quadratic_f_gives_nonzero_tau(self, pair):
        """A quadratic RHS is integrated exactly on 3 Lobatto nodes but
        NOT on 2 — tau captures exactly that defect."""
        tau_f = make_rule(3).nodes
        tau_c = make_rule(2).nodes
        F_f = (tau_f**2)[:, None]
        F_c = (tau_c**2)[:, None]
        dt = 1.0
        tau = fas_correction(dt, pair, F_f, F_c)
        # exact integral of t^2 over [0,1] = 1/3; trapezoid gives 1/2
        assert tau[1, 0] == pytest.approx(1.0 / 3.0 - 0.5, abs=1e-13)

    def test_linear_in_dt(self, pair, rng):
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        t1 = fas_correction(0.1, pair, F_f, F_c)
        t2 = fas_correction(0.2, pair, F_f, F_c)
        assert np.allclose(t2, 2 * t1)

    def test_radau_first_entry_carries_sub_interval_defect(self, rng):
        """Non-left families: node 0 sits at ``tau_0 > 0``, so entry 0
        is the genuine quadrature defect over ``[0, tau_0]``."""
        pair = TimeSpaceTransfer(
            make_rule(3, "radau-right"), make_rule(2, "radau-right")
        )
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        dt = 0.1
        tau = fas_correction(dt, pair, F_f, F_c)
        fine_cum = dt * pair.fine_rule.integrate_from_start(F_f)
        coarse_cum = dt * pair.coarse_rule.integrate_from_start(F_c)
        expect0 = pair.restrict_nodes(fine_cum)[0] - coarse_cum[0]
        assert np.allclose(tau[0], expect0)
        assert np.abs(tau[0]).max() > 1e-6  # genuinely nonzero

    def test_tau_fine_accumulates(self, pair, rng):
        """Multi-level: the fine tau is restricted into the coarse tau."""
        F_f = rng.normal(size=(3, 2))
        F_c = rng.normal(size=(2, 2))
        tau_f = np.zeros((3, 2))
        tau_f[1] = [1.0, 0.0]
        tau_f[2] = [0.0, 1.0]
        without = fas_correction(0.1, pair, F_f, F_c)
        with_tau = fas_correction(0.1, pair, F_f, F_c, tau_fine=tau_f)
        # cumulative fine tau at coarse nodes {0, 1} is [0, (1,1)]
        delta = with_tau - without
        assert np.allclose(np.cumsum(delta, axis=0)[-1], [1.0, 1.0])


class TestFixedPointProperty:
    @pytest.mark.parametrize("node_type", ["lobatto", "radau-right"])
    def test_restricted_fine_solution_solves_corrected_coarse_problem(
        self, linear_problem, node_type
    ):
        """The PFASST fixed point: solve the fine collocation problem,
        restrict, compute tau — the coarse residual *with tau* is zero."""
        dt = 0.2
        u0 = np.array([1.0, 0.0])
        fine_rule = make_rule(3, node_type)
        coarse_rule = make_rule(2, node_type)
        pair = TimeSpaceTransfer(fine_rule, coarse_rule)
        fine = ExplicitSDCSweeper(linear_problem, fine_rule)
        coarse = ExplicitSDCSweeper(linear_problem, coarse_rule)
        fu0 = None if fine_rule.node_set.includes_left else u0

        U, F = fine.initialize(0.0, dt, u0)
        for _ in range(80):
            U, F = fine.sweep(0.0, dt, U, F, u0=fu0)
        assert fine.residual(dt, U, F, u0) < 1e-13

        U_c = pair.restrict_nodes(U)
        F_c = np.stack([
            linear_problem.rhs(t, u)
            for t, u in zip(coarse.node_times(0.0, dt), U_c)
        ])
        tau = fas_correction(dt, pair, F, F_c)
        assert coarse.residual(dt, U_c, F_c, u0, tau=tau) < 1e-13

    @pytest.mark.parametrize("node_type", ["lobatto", "radau-right"])
    def test_coarse_sweep_leaves_fixed_point_invariant(self, linear_problem,
                                                       node_type):
        dt = 0.2
        u0 = np.array([1.0, 0.0])
        fine_rule = make_rule(3, node_type)
        coarse_rule = make_rule(2, node_type)
        pair = TimeSpaceTransfer(fine_rule, coarse_rule)
        fine = ExplicitSDCSweeper(linear_problem, fine_rule)
        coarse = ExplicitSDCSweeper(linear_problem, coarse_rule)
        fu0 = None if fine_rule.node_set.includes_left else u0
        cu0 = None if coarse_rule.node_set.includes_left else u0

        U, F = fine.initialize(0.0, dt, u0)
        for _ in range(80):
            U, F = fine.sweep(0.0, dt, U, F, u0=fu0)
        U_c = pair.restrict_nodes(U)
        F_c = np.stack([
            linear_problem.rhs(t, u)
            for t, u in zip(coarse.node_times(0.0, dt), U_c)
        ])
        tau = fas_correction(dt, pair, F, F_c)
        U_c2, _ = coarse.sweep(0.0, dt, U_c, F_c, u0=cu0, tau=tau)
        assert np.allclose(U_c2, U_c, atol=1e-12)
