"""Tests for repro.obs.tracer — recording semantics and, critically, the
zero-cost contract of the disabled (null) path.

The null-tracer tests mirror the ``REPRO_SANITIZE`` identity-decorator
contract in ``test_sanitize.py``: when observability is off, the
instrumented call sites must not allocate.
"""

import gc
import sys

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestNullFastPath:
    def test_default_tracer_is_the_null_singleton(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_span_returns_shared_singleton(self):
        """No per-call allocation: every span() is the same object."""
        a = NULL_TRACER.span("tree_build")
        b = NULL_TRACER.span("moments", track="rank3", cat="phase")
        assert a is b
        with a as ctx:
            assert ctx.add(n=1) is a

    def test_event_methods_return_none(self):
        assert NULL_TRACER.vspan("x", 0.0, 1.0) is None
        assert NULL_TRACER.instant("x", t=0.5) is None
        assert NULL_TRACER.annotate("rank0", "begin:sweep", 0.0) is None

    def test_disabled_span_loop_allocates_nothing(self):
        """The zero-allocation regression: a hot loop over the disabled
        tracer must not grow the heap (one attribute check, a shared
        context manager, no garbage)."""
        def hot_loop(n):
            tracer = get_tracer()
            for _ in range(n):
                if tracer.enabled:
                    with tracer.span("phase"):
                        pass
                tracer.instant("ev", t=1.0)

        hot_loop(100)  # warm up: caches, bytecode specialisation
        gc.collect()
        before = sys.getallocatedblocks()
        hot_loop(10_000)
        after = sys.getallocatedblocks()
        assert after - before <= 2  # interpreter noise only, O(1) not O(n)

    def test_null_tracer_has_no_instance_dict(self):
        assert not hasattr(NullTracer(), "__dict__")


class TestUtilsTimingShim:
    def test_shim_reexports_the_obs_implementation(self):
        """repro.utils.timing must stay import-compatible but share the
        classes with repro.obs.timing (one implementation, two names)."""
        import repro.obs.timing as obs_timing
        import repro.utils.timing as utils_timing

        assert utils_timing.Timer is obs_timing.Timer
        assert utils_timing.TimingRegistry is obs_timing.TimingRegistry
        assert utils_timing.timed is obs_timing.timed


class TestTracerRecording:
    def test_wall_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("tree_build", track="main", cat="phase") as sp:
            sp.add(n=64)
        (span,) = tracer.spans
        assert span.name == "tree_build"
        assert span.clock == "wall"
        assert span.cat == "phase"
        assert span.args == {"n": 64}
        assert span.duration >= 0.0

    def test_vspan_records_virtual_interval(self):
        tracer = Tracer()
        tracer.vspan("compute", 1.0, 2.5, track="rank1", cat="compute")
        (span,) = tracer.spans
        assert (span.clock, span.t0, span.t1) == ("virtual", 1.0, 2.5)
        assert span.duration == 1.5

    def test_instant_defaults_to_wall_clock_stamp(self):
        tracer = Tracer()
        tracer.instant("checkpoint")
        (inst,) = tracer.instants
        assert inst.clock == "wall"
        assert inst.t > 0.0

    def test_instant_with_virtual_time(self):
        tracer = Tracer()
        tracer.instant("send", t=0.25, track="rank0", cat="comm",
                       args={"dest": 1})
        (inst,) = tracer.instants
        assert (inst.clock, inst.t, inst.args) == ("virtual", 0.25,
                                                   {"dest": 1})

    def test_annotate_folds_begin_end_into_span(self):
        tracer = Tracer()
        tracer.annotate("rank2", "begin:sweep:L0:k1", 3.0, data={"k": 1})
        tracer.annotate("rank2", "end:sweep:L0:k1", 4.5, data={"res": 0.1})
        (span,) = tracer.spans
        assert span.name == "sweep:L0:k1"
        assert (span.t0, span.t1, span.track) == (3.0, 4.5, "rank2")
        assert span.cat == "phase"
        assert span.args == {"k": 1, "res": 0.1}
        assert not tracer.instants

    def test_annotate_interleaves_across_tracks(self):
        tracer = Tracer()
        tracer.annotate("rank0", "begin:predict:0", 0.0)
        tracer.annotate("rank1", "begin:predict:0", 0.5)
        tracer.annotate("rank0", "end:predict:0", 1.0)
        tracer.annotate("rank1", "end:predict:0", 1.5)
        assert [(s.track, s.t0, s.t1) for s in tracer.spans] == [
            ("rank0", 0.0, 1.0), ("rank1", 0.5, 1.5)]

    def test_annotate_plain_label_becomes_instant(self):
        tracer = Tracer()
        tracer.annotate("rank0", "residual", 2.0, data={"k": 0})
        assert not tracer.spans
        (inst,) = tracer.instants
        assert inst.name == "residual"
        assert inst.cat == "mark"

    def test_annotate_end_without_begin_stays_visible(self):
        tracer = Tracer()
        tracer.annotate("rank0", "end:sweep:L0:k0", 1.0)
        (inst,) = tracer.instants
        assert inst.name == "end:sweep:L0:k0"

    def test_tracks_and_clear(self):
        tracer = Tracer(meta={"run": "t"})
        tracer.vspan("a", 0.0, 1.0, track="rank1")
        tracer.instant("b", t=0.5, track="rank0")
        assert tracer.tracks() == ["rank0", "rank1"]
        tracer.clear()
        assert tracer.tracks() == []
        assert tracer.meta == {"run": "t"}  # meta survives clear


class TestActiveTracer:
    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
