"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vortex import (
    DirectEvaluator,
    ParticleSystem,
    SheetConfig,
    VortexProblem,
    get_kernel,
    spherical_vortex_sheet,
)
from repro.vortex.problem import ODEProblem


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_sheet() -> tuple[ParticleSystem, SheetConfig]:
    cfg = SheetConfig(n=200)
    return spherical_vortex_sheet(cfg), cfg


@pytest.fixture
def random_cloud(rng) -> tuple[np.ndarray, np.ndarray]:
    """Random positions and vector charges for tree/direct comparisons."""
    n = 300
    positions = rng.normal(size=(n, 3))
    charges = rng.normal(size=(n, 3)) * 0.1
    return positions, charges


class ScalarODE(ODEProblem):
    """Nonlinear scalar test problem u' = -u^2 + sin(3t), u(0) = 1."""

    def __init__(self) -> None:
        self.evals = 0

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        self.evals += 1
        return -u * u + np.sin(3.0 * t)


class LinearODE(ODEProblem):
    """Dahlquist-style linear system u' = A u with known solution."""

    def __init__(self, lam: complex = -1.0) -> None:
        self.matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.matrix @ u

    def exact(self, t: float, u0: np.ndarray) -> np.ndarray:
        from scipy.linalg import expm

        return expm(self.matrix * t) @ u0


@pytest.fixture
def scalar_problem() -> ScalarODE:
    return ScalarODE()


@pytest.fixture
def linear_problem() -> LinearODE:
    return LinearODE()


@pytest.fixture
def vortex_problem(small_sheet) -> tuple[VortexProblem, np.ndarray, float]:
    ps, cfg = small_sheet
    prob = VortexProblem(
        ps.volumes, DirectEvaluator(get_kernel("algebraic6"), cfg.sigma)
    )
    return prob, ps.state(), cfg.sigma
