"""Tests for particle state containers (repro.vortex.particles)."""

import numpy as np
import pytest

from repro.vortex.particles import (
    ParticleSystem,
    pack_state,
    state_like,
    unpack_state,
)


class TestPackUnpack:
    def test_roundtrip(self, rng):
        x = rng.normal(size=(10, 3))
        w = rng.normal(size=(10, 3))
        u = pack_state(x, w)
        assert u.shape == (2, 10, 3)
        x2, w2 = unpack_state(u)
        assert np.array_equal(x2, x)
        assert np.array_equal(w2, w)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError, match="identical shapes"):
            pack_state(rng.normal(size=(10, 3)), rng.normal(size=(9, 3)))

    def test_unpack_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(2, N, 3\)"):
            unpack_state(np.zeros((3, 4, 3)))

    def test_state_like_shape(self):
        u = np.zeros((2, 5, 3))
        assert state_like(u).shape == u.shape


class TestParticleSystem:
    def test_default_volumes(self, rng):
        ps = ParticleSystem(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        assert np.array_equal(ps.volumes, np.ones(4))

    def test_charges_definition(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(4, 3))
        vol = np.array([1.0, 2.0, 3.0, 4.0])
        ps = ParticleSystem(x, w, vol)
        assert np.allclose(ps.charges, w * vol[:, None])

    def test_negative_volume_rejected(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            ParticleSystem(
                rng.normal(size=(2, 3)), rng.normal(size=(2, 3)),
                np.array([1.0, -1.0]),
            )

    def test_state_is_a_copy(self, rng):
        ps = ParticleSystem(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        u = ps.state()
        u[0, 0, 0] = 99.0
        assert ps.positions[0, 0] != 99.0

    def test_with_state_roundtrip(self, rng):
        ps = ParticleSystem(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        ps2 = ps.with_state(ps.state())
        assert np.allclose(ps2.positions, ps.positions)
        assert np.allclose(ps2.vorticity, ps.vorticity)
        assert np.allclose(ps2.volumes, ps.volumes)

    def test_with_state_wrong_count(self, rng):
        ps = ParticleSystem(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        with pytest.raises(ValueError, match="particles"):
            ps.with_state(np.zeros((2, 5, 3)))

    def test_bounding_box(self):
        x = np.array([[0.0, 0, 0], [1.0, 2.0, 3.0]])
        ps = ParticleSystem(x, np.zeros_like(x))
        lo, hi = ps.bounding_box()
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [1, 2, 3])

    def test_copy_is_deep(self, rng):
        ps = ParticleSystem(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        ps2 = ps.copy()
        ps2.positions[0, 0] = 77.0
        assert ps.positions[0, 0] != 77.0

    def test_n(self, rng):
        ps = ParticleSystem(rng.normal(size=(7, 3)), rng.normal(size=(7, 3)))
        assert ps.n == 7
