"""Tests for spectral integration matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sdc.quadrature import (
    barycentric_weights,
    lagrange_integration_weights,
    lagrange_interpolation_matrix,
    make_rule,
)


class TestBarycentric:
    def test_two_nodes(self):
        w = barycentric_weights(np.array([0.0, 1.0]))
        assert np.allclose(w, [-1.0, 1.0])

    def test_interpolation_reproduces_nodes(self):
        nodes = np.array([0.0, 0.3, 0.7, 1.0])
        P = lagrange_interpolation_matrix(nodes, nodes)
        assert np.allclose(P, np.eye(4), atol=1e-14)

    def test_interpolation_exact_for_polynomials(self):
        nodes = np.array([0.0, 0.25, 0.6, 1.0])
        x = np.linspace(0, 1, 17)
        P = lagrange_interpolation_matrix(nodes, x)
        for deg in range(4):
            vals = nodes**deg
            assert np.allclose(P @ vals, x**deg, atol=1e-12)

    def test_partition_of_unity(self):
        nodes = np.array([0.0, 0.5, 1.0])
        P = lagrange_interpolation_matrix(nodes, np.linspace(-0.2, 1.2, 9))
        assert np.allclose(P.sum(axis=1), 1.0)


class TestIntegrationWeights:
    def test_exact_polynomial_integrals(self):
        nodes = np.array([0.0, 0.5, 1.0])
        W = lagrange_integration_weights(nodes, [(0.0, 1.0), (0.25, 0.75)])
        for deg in range(3):
            vals = nodes**deg
            exact_full = 1.0 / (deg + 1)
            exact_mid = (0.75 ** (deg + 1) - 0.25 ** (deg + 1)) / (deg + 1)
            assert W[0] @ vals == pytest.approx(exact_full, abs=1e-14)
            assert W[1] @ vals == pytest.approx(exact_mid, abs=1e-14)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError, match="b < a"):
            lagrange_integration_weights(np.array([0.0, 1.0]), [(1.0, 0.0)])


@pytest.mark.parametrize("family", ["lobatto", "radau-right", "legendre", "equidistant"])
@pytest.mark.parametrize("n", [2, 3, 5])
class TestRuleStructure:
    def test_full_integral_of_one(self, family, n):
        rule = make_rule(n, family)
        assert rule.q_end @ np.ones(n) == pytest.approx(1.0, abs=1e-13)

    def test_cumsum_s_equals_q(self, family, n):
        rule = make_rule(n, family)
        assert np.allclose(np.cumsum(rule.S, axis=0), rule.Q, atol=1e-13)

    def test_q_exact_on_polynomials(self, family, n):
        rule = make_rule(n, family)
        tau = rule.nodes
        for deg in range(n):
            vals = tau**deg
            exact = tau ** (deg + 1) / (deg + 1)
            assert np.allclose(rule.Q @ vals, exact, atol=1e-12)

    def test_delta_positive(self, family, n):
        rule = make_rule(n, family)
        assert np.all(rule.delta > 0)
        assert rule.delta.shape == (n - 1,)


class TestRuleApply:
    def test_integrate_tensor_shapes(self):
        rule = make_rule(3)
        f = np.ones((3, 4, 5))
        assert rule.integrate_from_start(f).shape == (3, 4, 5)
        assert rule.integrate_node_to_node(f).shape == (3, 4, 5)
        assert rule.integrate_full(f).shape == (4, 5)

    def test_integrate_constant_vector_field(self):
        rule = make_rule(3)
        f = np.ones((3, 2))
        out = rule.integrate_from_start(f)
        assert np.allclose(out[:, 0], rule.nodes)

    def test_gauss_lobatto_superconvergent_end_weight(self):
        """3-pt Lobatto integrates cubics over the full step exactly."""
        rule = make_rule(3, "lobatto")
        tau = rule.nodes
        assert rule.q_end @ tau**3 == pytest.approx(0.25, abs=1e-13)

    def test_legendre_high_order_full_integral(self):
        """n-pt Gauss-Legendre is exact through degree 2n-1."""
        rule = make_rule(3, "legendre")
        tau = rule.nodes
        for deg in range(6):
            assert rule.q_end @ tau**deg == pytest.approx(
                1.0 / (deg + 1), abs=1e-12
            )


@settings(max_examples=30, deadline=None)
@given(
    coeffs=st.lists(st.floats(-3, 3), min_size=1, max_size=3),
    family=st.sampled_from(["lobatto", "equidistant"]),
)
def test_q_matrix_integrates_arbitrary_polys(coeffs, family):
    """Q applied to p(tau) equals the exact primitive at every node."""
    rule = make_rule(3, family)
    tau = rule.nodes
    vals = sum(c * tau**i for i, c in enumerate(coeffs))
    exact = sum(c * tau ** (i + 1) / (i + 1) for i, c in enumerate(coeffs))
    assert np.allclose(rule.Q @ vals, exact, atol=1e-10)
