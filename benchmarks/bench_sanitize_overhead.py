"""Sanitizer overhead — the REPRO_SANITIZE gate must cost nothing when off.

The :func:`repro.analysis.sanitize.boundary` decorator checks its gate at
*decoration* time: with ``REPRO_SANITIZE`` unset it returns the function
object unchanged, so the shipped hot path carries no wrapper at all.  This
benchmark documents that contract two ways on the paper's fine+coarse RHS
pair (theta = 0.3 / 0.6 tree evaluations at N = 8192):

* **structurally** — the shipped boundary functions are the raw functions
  (``is``-identity, no ``__wrapped__``);
* **empirically** — two independent timing sessions of the pair differ by
  less than 1% (they execute identical code objects, so the measured
  "overhead" is pure timer noise), and, for the record, a third session
  with the sanitizers *enabled* (modules reloaded under REPRO_SANITIZE=1)
  reports the real cost of the active checks.

Results go to ``BENCH_sanitize.json`` at the repository root.  Run
directly (``python benchmarks/bench_sanitize_overhead.py``); the pytest
entry point is marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import importlib
import json
import os
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

import pytest

import repro.analysis.sanitize as sanitize_mod
import repro.tree.evaluator as evaluator_mod
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig

N_DEFAULT = 8192
THETA_FINE, THETA_COARSE = 0.3, 0.6
LEAF_SIZE = 48
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sanitize.json"


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_pair(evaluator_cls, pos, ch, sigma):
    """Closure running one fine+coarse RHS pair, cold cache each call."""
    kernel = get_kernel("algebraic6")
    fine = evaluator_cls(kernel, sigma, theta=THETA_FINE, leaf_size=LEAF_SIZE)
    coarse = fine.coarsened(THETA_COARSE)

    def pair():
        fine.cache.clear()
        fine.field(pos, ch)
        coarse.field(pos, ch)

    return pair


def _pair_timer(evaluator_cls, pos, ch, sigma, repeats: int) -> float:
    """Best-of time for the fine+coarse pair on a fresh evaluator."""
    pair = _make_pair(evaluator_cls, pos, ch, sigma)
    pair()  # warm-up outside the timed region
    return _best_of(pair, repeats)


def _paired_sessions(fn, repeats: int):
    """Per-round (raw, decorated) timings of the same closure.

    With the gate off, ``boundary`` is the identity, so the "decorated"
    and "raw" pair are the *same function object* (see
    :func:`structural_zero_overhead`); the overhead comparison therefore
    reduces to two timing sessions of one closure.  Pairing the sessions
    round by round and taking the *median* relative difference cancels
    machine drift and load spikes that would otherwise dominate a sub-1%
    comparison on a shared machine — a single spike skews a best-of
    comparison but moves a median of paired differences by one rank.
    """
    fn()  # warm before either session is timed
    rounds = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        t_a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn()
        rounds.append((t_a, time.perf_counter() - t0))
    return rounds


def structural_zero_overhead() -> bool:
    """With the flag unset, decoration is the identity function."""
    if sanitize_mod.enabled():
        return False

    def probe(x):
        return x

    decorated = sanitize_mod.boundary("probe", arrays=["x"])(probe)
    shipped_plain = not hasattr(
        evaluator_mod.TreeEvaluator._evaluate, "__wrapped__"
    )
    return decorated is probe and shipped_plain


def measure(n: int = N_DEFAULT, repeats: int = 5,
            probe_active: bool = True) -> Dict:
    """Time the fine+coarse pair off/off-again/on and report overheads."""
    assert not sanitize_mod.enabled(), (
        "run this benchmark with REPRO_SANITIZE unset; the off-path is "
        "what the <1% contract is about"
    )
    cfg = SheetConfig(n=n, sigma_over_h=3.0)
    ps = spherical_vortex_sheet(cfg)
    pos, ch = ps.positions, ps.charges

    pair = _make_pair(evaluator_mod.TreeEvaluator, pos, ch, cfg.sigma)
    rounds = _paired_sessions(pair, repeats)
    raw_s = min(t_a for t_a, _ in rounds)
    unset_s = min(t_b for _, t_b in rounds)
    unset_pct = max(
        0.0,
        100.0 * statistics.median((t_b - t_a) / t_a for t_a, t_b in rounds),
    )

    active_pct = None
    active_s = None
    if probe_active:
        os.environ["REPRO_SANITIZE"] = "1"
        try:
            importlib.reload(sanitize_mod)
            importlib.reload(evaluator_mod)
            active_s = _pair_timer(
                evaluator_mod.TreeEvaluator, pos, ch, cfg.sigma, repeats
            )
            active_pct = (active_s - raw_s) / raw_s * 100.0
        finally:
            del os.environ["REPRO_SANITIZE"]
            importlib.reload(sanitize_mod)
            importlib.reload(evaluator_mod)

    return {
        "n": n,
        "pair_raw_s": round(raw_s, 6),
        "pair_unset_s": round(unset_s, 6),
        "overhead_unset_pct": round(unset_pct, 4),
        "pair_active_s": round(active_s, 6) if active_s else None,
        "overhead_active_pct": (
            round(active_pct, 4) if active_pct is not None else None
        ),
        "structural_zero_overhead": structural_zero_overhead(),
    }


# ---------------------------------------------------------------------------
# pytest entry point (excluded from tier-1 by the `slow` marker)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_unset_overhead_below_one_percent():
    """Acceptance: sanitizers off must cost < 1% on the RHS pair."""
    row = measure(n=2048, repeats=5, probe_active=False)
    assert row["structural_zero_overhead"]
    assert row["overhead_unset_pct"] < 1.0, row


def main(argv: List[str]) -> None:
    n = 2048 if "--quick" in argv else N_DEFAULT
    row = measure(n=n)
    data = {
        "benchmark": "sanitize_overhead",
        "description": "REPRO_SANITIZE off-path cost on the fine+coarse "
                       "RHS pair (theta 0.3/0.6 tree evaluations)",
        "config": {
            "theta_fine": THETA_FINE,
            "theta_coarse": THETA_COARSE,
            "leaf_size": LEAF_SIZE,
            "kernel": "algebraic6",
        },
        "results": [row],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    print(f"N={row['n']}: raw {row['pair_raw_s']:.3f}s, "
          f"unset {row['pair_unset_s']:.3f}s "
          f"({row['overhead_unset_pct']:.2f}% overhead), "
          f"active {row['pair_active_s']}s "
          f"({row['overhead_active_pct']}%), "
          f"structural zero-overhead: {row['structural_zero_overhead']}")


if __name__ == "__main__":
    main(sys.argv[1:])
