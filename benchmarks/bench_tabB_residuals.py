"""Tab. B (inline, Sec. IV-B) — PFASST residuals with MAC coarsening.

Paper numbers: with P_T = 2 slices, PFASST(2,2) residuals after the last
iteration are 1.93e-5 / 1.90e-5 per slice when *both* levels use theta =
0.3, and 1.93e-5 / 5.22e-5 when the coarse level is relaxed to theta =
0.6; with P_T = 32 the first/last slice residuals are 6.64e-7 / 1.1e-6.
Conclusion drawn in the paper: coarsening via the MAC does not inhibit
PFASST's convergence.

This benchmark reproduces exactly that comparison on our tree code:
same-theta vs coarsened-theta residual per slice, plus a larger-P_T run.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst

N_CI, N_PAPER = 600, 125_000
LARGE_PT_CI, LARGE_PT_PAPER = 8, 32


def run_residuals(n: int, p_time: int, theta_coarse: float,
                  sigma_over_h: float = 4.0) -> List[float]:
    """Final-iteration residual on each time slice of one PFASST block."""
    fine_problem, u0, cfg = sheet_problem(
        n, evaluator="tree", theta=0.3, sigma_over_h=sigma_over_h
    )
    # coarse level shares the fine tree-state cache (theta-coarsening only)
    coarse_problem = fine_problem.coarsened(theta=theta_coarse)
    config = PfasstConfig(t0=0.0, t_end=0.5 * p_time, n_steps=p_time,
                          iterations=2)
    specs = [
        LevelSpec(fine_problem, num_nodes=3, sweeps=1),
        LevelSpec(coarse_problem, num_nodes=2, sweeps=2),
    ]
    res = run_pfasst(config, specs, u0, p_time=p_time)
    return [r[-1] for r in res.residuals]


@pytest.fixture(scope="module")
def residuals():
    return {
        "same": run_residuals(N_CI, 2, theta_coarse=0.3),
        "coarsened": run_residuals(N_CI, 2, theta_coarse=0.6),
        "large_pt": run_residuals(N_CI, LARGE_PT_CI, theta_coarse=0.6,
                                  sigma_over_h=6.0),
    }


def test_residuals_are_small(residuals):
    """PFASST(2,2,2) converges toward the SDC solution (paper: ~1e-5)."""
    for key in ("same", "coarsened"):
        assert max(residuals[key]) < 1e-3


def test_coarsening_does_not_inhibit_convergence(residuals):
    """The paper's conclusion: theta-coarsening costs at most a small
    factor in the residual (1.90e-5 -> 5.22e-5 there)."""
    same = max(residuals["same"])
    coarsened = max(residuals["coarsened"])
    assert coarsened < 50 * same


def test_first_slice_converges_deepest(residuals):
    """Paper P_T = 32 run: residual 6.64e-7 on slice 1 vs 1.1e-6 on the
    last slice — earlier slices see more effective iterations."""
    r = residuals["large_pt"]
    assert r[0] <= r[-1]


def test_large_pt_still_converges(residuals):
    assert max(residuals["large_pt"]) < 1e-2


def test_benchmark_pfasst22_two_slices(benchmark):
    fine_problem, u0, cfg = sheet_problem(N_CI, evaluator="tree",
                                          theta=0.3)
    coarse_problem = fine_problem.coarsened(theta=0.6)
    config = PfasstConfig(t0=0.0, t_end=1.0, n_steps=2, iterations=2)
    specs = [
        LevelSpec(fine_problem, num_nodes=3, sweeps=1),
        LevelSpec(coarse_problem, num_nodes=2, sweeps=2),
    ]
    benchmark(lambda: run_pfasst(config, specs, u0, p_time=2))


def main(argv: List[str]) -> None:
    paper = "--paper-scale" in argv
    n = N_PAPER if paper else N_CI
    large_pt = LARGE_PT_PAPER if paper else LARGE_PT_CI
    soh = 18.53 if paper else 4.0
    soh_big = 18.53 if paper else 6.0

    same = run_residuals(n, 2, 0.3, soh)
    coarsened = run_residuals(n, 2, 0.6, soh)
    print("Tab. B — PFASST(2,2,2) residuals per slice "
          f"(N={n})")
    print(format_table(
        ["slice", "theta 0.3/0.3", "theta 0.3/0.6",
         "paper 0.3/0.3", "paper 0.3/0.6"],
        [[1, same[0], coarsened[0], 1.93e-5, 1.93e-5],
         [2, same[1], coarsened[1], 1.90e-5, 5.22e-5]],
    ))
    big = run_residuals(n, large_pt, 0.6, soh_big)
    print(f"\nPFASST(2,2,{large_pt}) first/last slice residuals: "
          f"{big[0]:.3e} / {big[-1]:.3e} "
          "(paper at P_T=32: 6.64e-7 / 1.1e-6)")


if __name__ == "__main__":
    main(sys.argv[1:])
