"""Pytest configuration and shared fixtures for the benchmark harness."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2012)
