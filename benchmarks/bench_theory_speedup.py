"""Eqs. 21-25 — theoretical speedup/efficiency landscape.

Regenerates the theory curves of Fig. 8 (dashed lines) at the paper's
alpha values, the Eq. 25 bound, and the PFASST-vs-parareal efficiency
contrast the paper highlights (Ks/Kp vs 1/K).
"""

from __future__ import annotations

import sys
from typing import List

import numpy as np
import pytest

from common import format_table
from repro.pfasst import (
    alpha_from_measurements,
    efficiency_two_level,
    parareal_speedup,
    speedup_bound,
    speedup_two_level,
)

P_T = (1, 2, 4, 8, 16, 32, 64, 128)
ALPHA_SMALL = alpha_from_measurements(2, 3, 2.65)  # paper Eq. 26
ALPHA_LARGE = alpha_from_measurements(2, 3, 3.23)
KS, KP, NL = 4, 2, 2


def run_experiment():
    return {
        "p_t": list(P_T),
        "S_small": list(speedup_two_level(np.array(P_T), ALPHA_SMALL,
                                          KS, KP, NL)),
        "S_large": list(speedup_two_level(np.array(P_T), ALPHA_LARGE,
                                          KS, KP, NL)),
        "bound": list(speedup_bound(np.array(P_T), KS, KP)),
        "parareal_K2": list(parareal_speedup(np.array(P_T), ALPHA_SMALL, 2)),
        "eff_small": list(efficiency_two_level(np.array(P_T), ALPHA_SMALL,
                                               KS, KP, NL)),
    }


@pytest.fixture(scope="module")
def theory():
    return run_experiment()


def test_paper_fig8_endpoints(theory):
    """At P_T = 32 the paper reads ~5x (small) and ~7x (large)."""
    idx = P_T.index(32)
    assert 4.0 < theory["S_small"][idx] < 7.0
    assert 5.5 < theory["S_large"][idx] < 8.5


def test_large_alpha_curve_above_small(theory):
    for s, l in zip(theory["S_small"][1:], theory["S_large"][1:]):
        assert l > s


def test_bound_respected(theory):
    for key in ("S_small", "S_large"):
        for s, b in zip(theory[key], theory["bound"]):
            assert s <= b + 1e-12


def test_efficiency_monotone_decreasing(theory):
    eff = theory["eff_small"]
    assert all(eff[i] >= eff[i + 1] - 1e-12 for i in range(len(eff) - 1))


def test_pfasst_exceeds_parareal_at_scale(theory):
    idx = P_T.index(128)
    assert theory["S_small"][idx] > theory["parareal_K2"][idx]


def test_benchmark_theory_eval(benchmark):
    p = np.arange(1, 4097)
    benchmark(lambda: speedup_two_level(p, ALPHA_SMALL, KS, KP, NL))


def main(argv: List[str]) -> None:
    t = run_experiment()
    rows = list(zip(t["p_t"], t["S_small"], t["S_large"], t["bound"],
                    t["parareal_K2"], t["eff_small"]))
    print("Eqs. 21-25 — theoretical speedup "
          f"(alpha_small={ALPHA_SMALL:.3f}, alpha_large={ALPHA_LARGE:.3f},"
          f" Ks={KS}, Kp={KP})")
    print(format_table(
        ["P_T", "S(alpha_small)", "S(alpha_large)", "Ks/Kp*P_T bound",
         "parareal K=2", "efficiency"], rows,
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
