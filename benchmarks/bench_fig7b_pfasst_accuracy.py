"""Fig. 7b — PFASST accuracy vs serial SDC (direct solver).

Paper: PFASST(X, Y, P_T) with X iterations, Y = 2 coarse sweeps, 3 fine +
2 coarse Gauss-Lobatto nodes, compared against SDC(3) and SDC(4).
Expected shape: one PFASST iteration tracks SDC(3); two iterations track
SDC(4); the number of time slices (8 vs 16) barely changes the error.

Scaled default: N = 150, T = 2, P_T in {4, 8} (multi-block when dt is
large).  The paper's P_T in {8, 16} is available via --paper-scale.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

from common import (
    Scale,
    format_table,
    observed_orders,
    reference_solution,
    rel_max_position_error,
    sheet_problem,
)
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import SDCStepper

CI_SCALE = Scale(n_particles=150, t_end=2.0, dts=(0.5, 0.25),
                 ref_dt=0.025, sigma_over_h=3.0)
PAPER_SCALE = Scale(n_particles=10_000, t_end=16.0, dts=(1.0, 0.5, 0.25),
                    ref_dt=0.01, sigma_over_h=18.53)

#: PFASST(X, Y=2, P_T) variants of Fig. 7b, scaled P_T
CI_VARIANTS: Tuple[Tuple[int, int, int], ...] = (
    (1, 2, 4), (1, 2, 8), (2, 2, 4), (2, 2, 8),
)
PAPER_VARIANTS: Tuple[Tuple[int, int, int], ...] = (
    (1, 2, 8), (1, 2, 16), (2, 2, 8), (2, 2, 16),
)


def run_experiment(
    scale: Scale = CI_SCALE,
    variants: Sequence[Tuple[int, int, int]] = CI_VARIANTS,
) -> Dict[str, List[float]]:
    """Error-vs-dt curves for SDC(3), SDC(4) and the PFASST variants."""
    problem, u0, _ = sheet_problem(scale.n_particles,
                                   sigma_over_h=scale.sigma_over_h)
    u_ref = reference_solution(problem, u0, scale.t_end, scale.ref_dt)
    curves: Dict[str, List[float]] = {}
    for sweeps in (3, 4):
        errors = []
        for dt in scale.dts:
            u = SDCStepper(problem, num_nodes=3, sweeps=sweeps).run(
                u0, 0.0, scale.t_end, dt
            )
            errors.append(rel_max_position_error(u, u_ref))
        curves[f"SDC({sweeps})"] = errors
    for x, y, p_t in variants:
        errors = []
        for dt in scale.dts:
            n_steps = int(round(scale.t_end / dt))
            if n_steps % p_t:
                errors.append(float("nan"))
                continue
            cfg = PfasstConfig(t0=0.0, t_end=scale.t_end, n_steps=n_steps,
                               iterations=x)
            specs = [
                LevelSpec(problem, num_nodes=3, sweeps=1),
                LevelSpec(problem, num_nodes=2, sweeps=y),
            ]
            res = run_pfasst(cfg, specs, u0, p_time=p_t)
            errors.append(rel_max_position_error(res.u_end, u_ref))
        curves[f"PFASST({x},{y},{p_t})"] = errors
    return curves


@pytest.fixture(scope="module")
def curves():
    return run_experiment(CI_SCALE, CI_VARIANTS)


def test_two_iterations_track_sdc4(curves):
    """Fig. 7b: PFASST(2,2,.) reaches SDC(4)-comparable accuracy."""
    for p_t in (4, 8):
        for i, dt in enumerate(CI_SCALE.dts):
            if np.isnan(curves[f"PFASST(2,2,{p_t})"][i]):
                continue
            assert curves[f"PFASST(2,2,{p_t})"][i] < 10 * curves["SDC(4)"][i]


def test_one_iteration_tracks_sdc3(curves):
    """Fig. 7b: PFASST(1,2,.) is a good approximation to SDC(3)."""
    for p_t in (4, 8):
        for i in range(len(CI_SCALE.dts)):
            val = curves[f"PFASST(1,2,{p_t})"][i]
            if np.isnan(val):
                continue
            assert val < 10 * curves["SDC(3)"][i]


def test_second_iteration_improves_accuracy(curves):
    for p_t in (4, 8):
        for i in range(len(CI_SCALE.dts)):
            one = curves[f"PFASST(1,2,{p_t})"][i]
            two = curves[f"PFASST(2,2,{p_t})"][i]
            if np.isnan(one) or np.isnan(two):
                continue
            assert two < one


def test_slice_count_insensitivity(curves):
    """Doubling P_T changes the error by at most ~an order of magnitude
    (the paper's 8 vs 16 curves nearly coincide)."""
    for x in (1, 2):
        for i in range(len(CI_SCALE.dts)):
            a = curves[f"PFASST({x},2,4)"][i]
            b = curves[f"PFASST({x},2,8)"][i]
            if np.isnan(a) or np.isnan(b):
                continue
            assert 0.05 < a / b < 20.0


def test_benchmark_pfasst_block(benchmark):
    """Timing of one PFASST(2,2,4) block on the model problem."""
    problem, u0, _ = sheet_problem(CI_SCALE.n_particles,
                                   sigma_over_h=CI_SCALE.sigma_over_h)
    cfg = PfasstConfig(t0=0.0, t_end=2.0, n_steps=4, iterations=2)
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    benchmark(lambda: run_pfasst(cfg, specs, u0, p_time=4))


def main(argv: List[str]) -> None:
    paper = "--paper-scale" in argv
    scale = PAPER_SCALE if paper else CI_SCALE
    variants = PAPER_VARIANTS if paper else CI_VARIANTS
    curves = run_experiment(scale, variants)
    names = list(curves)
    rows = []
    for i, dt in enumerate(scale.dts):
        rows.append([dt] + [curves[n][i] for n in names])
    print("Fig. 7b — relative max position error vs dt "
          f"(N={scale.n_particles}, T={scale.t_end})")
    print(format_table(["dt"] + names, rows))


if __name__ == "__main__":
    main(sys.argv[1:])
