"""Ablation — collocation node family for SDC.

The paper uses Gauss-Lobatto nodes and cites Layton & Minion (2005) for
the choice.  This ablation compares Lobatto against equidistant nodes at
equal node counts on the model problem.  Note 3-node Lobatto and 3-node
equidistant coincide ({0, 1/2, 1}); the comparison uses 4 nodes with 5
sweeps, where the spectral rule sustains order 5-6 while the equidistant
rule caps at its quadrature order 4.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import (
    Scale,
    format_table,
    observed_orders,
    reference_solution,
    rel_max_position_error,
    sheet_problem,
)
from repro.sdc import SDCStepper

SCALE = Scale(n_particles=150, t_end=2.0, dts=(0.5, 0.25, 0.125),
              ref_dt=0.025, sigma_over_h=3.0)
FAMILIES = ("lobatto", "equidistant")


def run_experiment(scale: Scale = SCALE, num_nodes: int = 4,
                   sweeps: int = 5) -> Dict[str, List[float]]:
    problem, u0, _ = sheet_problem(scale.n_particles,
                                   sigma_over_h=scale.sigma_over_h)
    u_ref = reference_solution(problem, u0, scale.t_end, scale.ref_dt)
    curves: Dict[str, List[float]] = {}
    for family in FAMILIES:
        errors = []
        for dt in scale.dts:
            stepper = SDCStepper(problem, num_nodes=num_nodes,
                                 sweeps=sweeps, node_type=family)
            u = stepper.run(u0, 0.0, scale.t_end, dt)
            errors.append(rel_max_position_error(u, u_ref))
        curves[family] = errors
    return curves


@pytest.fixture(scope="module")
def curves():
    return run_experiment()


def test_both_families_converge(curves):
    for family in FAMILIES:
        errs = curves[family]
        assert all(errs[i] > errs[i + 1] for i in range(len(errs) - 1))


def test_lobatto_reaches_order_five(curves):
    orders = observed_orders(SCALE.dts, curves["lobatto"])
    assert orders[-1] > 4.4


def test_equidistant_capped_at_quadrature_order(curves):
    """4 equidistant nodes (Simpson 3/8) cap at order 4 < 5 sweeps."""
    orders = observed_orders(SCALE.dts, curves["equidistant"])
    assert orders[-1] < 4.6


def test_lobatto_strictly_more_accurate(curves):
    assert curves["lobatto"][-1] < 0.2 * curves["equidistant"][-1]


def test_benchmark_lobatto_sweep(benchmark):
    from repro.sdc.quadrature import make_rule
    from repro.sdc.sweeper import ExplicitSDCSweeper

    problem, u0, _ = sheet_problem(SCALE.n_particles)
    sweeper = ExplicitSDCSweeper(problem, make_rule(3, "lobatto"))
    U, F = sweeper.initialize(0.0, 0.5, u0)
    benchmark(lambda: sweeper.sweep(0.0, 0.5, U, F))


def main(argv: List[str]) -> None:
    curves = run_experiment()
    rows = []
    for i, dt in enumerate(SCALE.dts):
        rows.append([dt] + [curves[f][i] for f in FAMILIES])
    print("Ablation — SDC(5) node family (4 nodes)")
    print(format_table(["dt"] + list(FAMILIES), rows))
    for f in FAMILIES:
        print(f"orders {f}: "
              + ", ".join(f"{o:.2f}"
                          for o in observed_orders(SCALE.dts, curves[f])))


if __name__ == "__main__":
    main(sys.argv[1:])
