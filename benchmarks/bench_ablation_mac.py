"""Ablation — MAC variant and theta sweep: accuracy/cost frontier.

DESIGN.md calls out the multipole acceptance criterion as *the* spatial
coarsening knob (paper Sec. III-A / IV-B) and the paper's outlook asks
for "more elaborate strategies".  This ablation maps the error-vs-work
frontier of the classical Barnes-Hut MAC against the Salmon-Warren style
``bmax`` MAC over a theta sweep, quantifying how much headroom a better
acceptance criterion buys for the coarse propagator.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.tree import TreeEvaluator
from repro.vortex import DirectEvaluator, get_kernel

N_CI = 800
THETAS = (0.2, 0.4, 0.6, 0.9)


def run_experiment(n: int = N_CI, sigma_over_h: float = 3.0) -> List[Dict]:
    problem, u0, cfg = sheet_problem(n, sigma_over_h=sigma_over_h)
    kernel = get_kernel("algebraic6")
    positions, vorticity = u0[0], u0[1]
    charges = vorticity * problem.volumes[:, None]
    ref = DirectEvaluator(kernel, cfg.sigma).field(positions, charges)
    rows = []
    for variant in ("bh", "bmax"):
        for theta in THETAS:
            ev = TreeEvaluator(kernel, cfg.sigma, theta=theta,
                               leaf_size=48, mac_variant=variant)
            out = ev.field(positions, charges)
            err = np.max(np.abs(out.velocity - ref.velocity)) / np.max(
                np.abs(ref.velocity)
            )
            stats = ev.last_stats
            rows.append({
                "variant": variant,
                "theta": theta,
                "rel_error": float(err),
                "interactions": stats.far_interactions
                + stats.near_interactions,
                "seconds": ev.mean_cost,
            })
    return rows


@pytest.fixture(scope="module")
def frontier():
    return run_experiment()


def _select(rows, variant):
    return [r for r in rows if r["variant"] == variant]


def test_error_monotone_in_theta(frontier):
    for variant in ("bh", "bmax"):
        errs = [r["rel_error"] for r in _select(frontier, variant)]
        assert all(errs[i] <= errs[i + 1] * 1.2 for i in range(len(errs) - 1))


def test_work_monotone_in_theta(frontier):
    for variant in ("bh", "bmax"):
        work = [r["interactions"] for r in _select(frontier, variant)]
        assert all(work[i] > work[i + 1] for i in range(len(work) - 1))


def test_bmax_frontier_not_dominated(frontier):
    """At equal theta, bmax must not be both slower AND less accurate."""
    bh = {r["theta"]: r for r in _select(frontier, "bh")}
    bm = {r["theta"]: r for r in _select(frontier, "bmax")}
    for theta in THETAS:
        worse_error = bm[theta]["rel_error"] > 2.0 * bh[theta]["rel_error"]
        worse_work = (bm[theta]["interactions"]
                      > 1.5 * bh[theta]["interactions"])
        assert not (worse_error and worse_work)


def test_coarse_propagator_band(frontier):
    """theta = 0.6 (the paper's coarse level) stays accurate enough to
    serve as a PFASST coarse propagator (error well below 10%)."""
    bh = {r["theta"]: r for r in _select(frontier, "bh")}
    assert bh[0.6]["rel_error"] < 0.05


def test_benchmark_bh_mac_traversal(benchmark):
    from repro.tree import build_octree, compute_vortex_moments, dual_traversal

    problem, u0, cfg = sheet_problem(N_CI)
    tree = build_octree(u0[0], leaf_size=48)
    charges = u0[1] * problem.volumes[:, None]
    mom = compute_vortex_moments(tree, charges)
    benchmark(lambda: dual_traversal(tree, 0.6, node_bmax=mom.bmax))


def main(argv: List[str]) -> None:
    rows = run_experiment()
    print("Ablation — MAC variants over theta (vortex sheet RHS)")
    print(format_table(
        ["variant", "theta", "rel error", "interactions", "seconds"],
        [[r["variant"], r["theta"], r["rel_error"], r["interactions"],
          r["seconds"]] for r in rows],
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
