"""Evaluator hot path — batched engine + state cache vs the seed loops.

Times the full fine/coarse RHS pair (theta = 0.3 / 0.6, the paper's
PFASST coarsening) at N in {2048, 8192, 32768}:

* **seed**: the preserved per-group implementation
  (:mod:`repro.tree.reference`), one full build + moments + traversal +
  per-group far/near loops *per theta*;
* **batched cold**: :class:`~repro.tree.TreeEvaluator` and its
  ``coarsened(0.6)`` twin sharing one state cache — one build + one
  moment pass, two traversals, batched far/near passes;
* **batched warm**: the fine evaluation repeated at the identical state —
  every pipeline stage is a cache hit, only the far/near summation runs.

Also reports the per-phase breakdown (tree_build / moments / traverse /
layout / far_field / near_field) and the cache counters, and writes
everything to ``BENCH_evaluator.json`` at the repository root.

The hot path carries observability hooks (:mod:`repro.obs`): every row
additionally times a warm evaluation with an *active* tracer and metrics
registry and reports the relative overhead (``tracer_on_overhead_pct``,
expected single-digit percent; with the default null tracer the hooks
reduce to one attribute check per phase).  Pass ``--traced`` to also
write ``BENCH_evaluator_trace.json`` — the wall-clock phase spans of one
traced evaluation, viewable with ``repro-trace summarize``.

Every row is tagged with the kernel backend it ran on
(:mod:`repro.backends`); pass ``--backend NAME`` (repeatable) to choose
the set, defaulting to every usable backend.  Non-NumPy rows carry a
``vs_numpy_speedup`` against the NumPy row of the same size, and the
output records a ``machine`` block (CPU count, platform, library
versions) — threaded speedups are only meaningful relative to
``machine.cpu_count``.

Run directly (``python benchmarks/bench_evaluator_hotpath.py``); the
pytest entry points are marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.backends import get_backend, usable_backends
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.tree import TreeEvaluator
from repro.tree.reference import reference_vortex_field
from repro.vortex import get_kernel, spherical_vortex_sheet
from repro.vortex.sheet import SheetConfig

SIZES = (2048, 8192, 32768)
THETA_FINE, THETA_COARSE = 0.3, 0.6
LEAF_SIZE = 48
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_evaluator.json"


def machine_spec() -> Dict:
    """The hardware/software context a reader needs to judge the rows."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends_usable": list(usable_backends()),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_size(n: int, repeats: int = 3, backend: str = "numpy",
               seed_s: Optional[float] = None) -> Dict:
    """One measurement row for ``n`` particles on one kernel backend.

    ``seed_s`` lets :func:`run_experiment` time the (backend-independent)
    seed reference once per size and share it across backend rows.
    """
    cfg = SheetConfig(n=n, sigma_over_h=3.0)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    pos, ch = ps.positions, ps.charges

    def seed_pair():
        reference_vortex_field(pos, ch, kernel, cfg.sigma,
                               theta=THETA_FINE, leaf_size=LEAF_SIZE)
        reference_vortex_field(pos, ch, kernel, cfg.sigma,
                               theta=THETA_COARSE, leaf_size=LEAF_SIZE)

    if seed_s is None:
        seed_s = _best_of(seed_pair, repeats)

    fine = TreeEvaluator(kernel, cfg.sigma, theta=THETA_FINE,
                         leaf_size=LEAF_SIZE, backend=backend)
    coarse = fine.coarsened(THETA_COARSE)

    def batched_pair_cold():
        fine.cache.clear()
        fine.field(pos, ch)
        coarse.field(pos, ch)

    cold_s = _best_of(batched_pair_cold, repeats)

    # warm: identical state, every pipeline stage cached
    fine.field(pos, ch)
    warm_fine_s = _best_of(lambda: fine.field(pos, ch), repeats)

    # same warm evaluation with tracing + metrics actually recording
    with use_tracer(Tracer()), use_metrics(MetricsRegistry()):
        traced_warm_s = _best_of(lambda: fine.field(pos, ch), repeats)

    fine.cache.clear()
    fine.phases.reset()
    t0 = time.perf_counter()
    fine.field(pos, ch)
    cold_fine_s = time.perf_counter() - t0
    phases = {k: round(v, 6) for k, v in fine.phases.as_dict().items()}

    return {
        "n": n,
        "backend": fine.backend.name,
        "seed_pair_s": round(seed_s, 6),
        "batched_pair_cold_s": round(cold_s, 6),
        "pair_speedup": round(seed_s / cold_s, 3),
        "batched_fine_cold_s": round(cold_fine_s, 6),
        "batched_fine_warm_s": round(warm_fine_s, 6),
        "traced_fine_warm_s": round(traced_warm_s, 6),
        "tracer_on_overhead_pct": round(
            (traced_warm_s / warm_fine_s - 1.0) * 100.0, 2),
        "cache_hit_speedup": round(cold_fine_s / warm_fine_s, 3),
        "phases_cold_fine": phases,
        "cache_stats": fine.cache_stats.as_dict(),
    }


def run_experiment(sizes=SIZES, backends=None) -> Dict:
    if backends is None:
        backends = list(usable_backends())
    if "numpy" in backends:  # numpy first: baseline for vs_numpy_speedup
        backends = ["numpy"] + [b for b in backends if b != "numpy"]
    rows = []
    for n in sizes:
        repeats = 3 if n <= 8192 else 1
        seed_s = None
        numpy_cold = None
        for backend in backends:
            row = bench_size(n, repeats=repeats, backend=backend,
                             seed_s=seed_s)
            seed_s = row["seed_pair_s"]
            if backend == "numpy":
                numpy_cold = row["batched_pair_cold_s"]
            elif numpy_cold is not None:
                row["vs_numpy_speedup"] = round(
                    numpy_cold / row["batched_pair_cold_s"], 3)
            rows.append(row)
    return {
        "benchmark": "evaluator_hotpath",
        "description": "fine+coarse RHS pair: batched engine + TreeState "
                       "cache vs seed per-group implementation, per "
                       "kernel backend",
        "config": {
            "theta_fine": THETA_FINE,
            "theta_coarse": THETA_COARSE,
            "leaf_size": LEAF_SIZE,
            "kernel": "algebraic6",
            "gradient": True,
            "backends": [get_backend(b).describe() for b in backends],
        },
        "machine": machine_spec(),
        "results": rows,
    }


# ---------------------------------------------------------------------------
# pytest entry points (excluded from tier-1 by the `slow` marker)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_pair_speedup_at_8k():
    """Acceptance: >= 3x over the seed path for the full theta pair."""
    row = bench_size(8192, repeats=2)
    assert row["pair_speedup"] >= 3.0


@pytest.mark.slow
def test_cache_hit_speedup():
    """A state-cache hit must skip the position-keyed pipeline stages.

    The batched engine left the cached stages (build/moments/traversal)
    a single-digit percentage of an evaluation, so the contract is
    asserted structurally — the counters must show hits and a warm call
    must not be slower than a cold one — rather than via a large timing
    ratio that the faster pipeline can no longer produce.
    """
    row = bench_size(2048, repeats=2)
    stats = row["cache_stats"]
    assert stats["build_hits"] > 0
    assert stats["moment_hits"] > 0
    assert stats["traversal_hits"] > 0
    assert row["batched_fine_warm_s"] <= 1.05 * row["batched_fine_cold_s"]


def export_phase_trace(n: int = 8192) -> Path:
    """One cold traced evaluation; writes the phase spans as a trace file."""
    from repro.obs import save_trace

    cfg = SheetConfig(n=n, sigma_over_h=3.0)
    ps = spherical_vortex_sheet(cfg)
    fine = TreeEvaluator(get_kernel("algebraic6"), cfg.sigma,
                         theta=THETA_FINE, leaf_size=LEAF_SIZE)
    tracer = Tracer(meta={"benchmark": "evaluator_hotpath", "n": n})
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        fine.field(ps.positions, ps.charges)
    out = OUT_PATH.with_name("BENCH_evaluator_trace.json")
    return save_trace(tracer, out, metrics=metrics)


def _parse_backends(argv: List[str]) -> Optional[List[str]]:
    """Collect ``--backend NAME`` occurrences; None means 'all usable'."""
    names: List[str] = []
    it = iter(range(len(argv)))
    for i in it:
        if argv[i] == "--backend":
            if i + 1 >= len(argv):
                raise SystemExit("--backend requires a name "
                                 f"(one of: {', '.join(usable_backends())})")
            names.append(argv[i + 1])
            next(it, None)
        elif argv[i].startswith("--backend="):
            names.append(argv[i].split("=", 1)[1])
    for name in names:
        get_backend(name).require()  # fail fast with the actionable message
    return names or None


def main(argv: List[str]) -> None:
    sizes = SIZES[:2] if "--quick" in argv else SIZES
    data = run_experiment(sizes, backends=_parse_backends(argv))
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH} (cpu_count={data['machine']['cpu_count']})")
    for row in data["results"]:
        extra = (f", vs numpy {row['vs_numpy_speedup']:.2f}x"
                 if "vs_numpy_speedup" in row else "")
        print(f"N={row['n']:>6} [{row['backend']}]: "
              f"seed pair {row['seed_pair_s']:.3f}s, "
              f"batched pair {row['batched_pair_cold_s']:.3f}s "
              f"({row['pair_speedup']:.1f}x), cache-hit "
              f"{row['cache_hit_speedup']:.1f}x, tracer-on overhead "
              f"{row['tracer_on_overhead_pct']:+.1f}%{extra}")
    if "--traced" in argv:
        trace_path = export_phase_trace(sizes[-1])
        print(f"wrote {trace_path} "
              f"(inspect with:  repro-trace summarize {trace_path})")


if __name__ == "__main__":
    main(sys.argv[1:])
