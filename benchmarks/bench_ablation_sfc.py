"""Ablation — space-filling curve choice for the domain decomposition.

PEPC partitions particles along a space-filling curve (paper Fig. 3).
Morton (Z-order) is cheap but produces stripy partitions; Hilbert costs
more bit-twiddling but yields compact ranks.  This ablation measures
partition compactness (total bounding-box surface) and branch-node counts
(the Fig. 5 communication driver) for both curves on uniform and
clustered particle sets.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import format_table
from repro.tree.domain import (
    branch_counts,
    partition_box_surface,
    sfc_partition,
)

N_CI = 4000
RANKS = (8, 32)


def make_cloud(kind: str, n: int = N_CI, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        return rng.random((n, 3))
    if kind == "clustered":
        centers = rng.random((8, 3)) * 4
        idx = rng.integers(0, 8, n)
        return centers[idx] + rng.normal(0, 0.05, (n, 3))
    raise ValueError(kind)


def run_experiment(n: int = N_CI) -> List[Dict]:
    rows = []
    for kind in ("uniform", "clustered"):
        pos = make_cloud(kind, n)
        for curve in ("morton", "hilbert"):
            for ranks in RANKS:
                d = sfc_partition(pos, ranks, curve=curve)
                rows.append({
                    "cloud": kind,
                    "curve": curve,
                    "ranks": ranks,
                    "surface": partition_box_surface(pos, d),
                    "branches_total": int(branch_counts(d).sum()),
                    "imbalance": d.imbalance,
                })
    return rows


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_balanced_everywhere(results):
    for r in results:
        assert r["imbalance"] < 1.01


def test_hilbert_more_compact_on_uniform_cloud(results):
    for ranks in RANKS:
        morton = next(r for r in results if r["cloud"] == "uniform"
                      and r["curve"] == "morton" and r["ranks"] == ranks)
        hilbert = next(r for r in results if r["cloud"] == "uniform"
                       and r["curve"] == "hilbert" and r["ranks"] == ranks)
        assert hilbert["surface"] <= morton["surface"] * 1.05


def test_branch_totals_grow_with_ranks(results):
    for kind in ("uniform", "clustered"):
        for curve in ("morton", "hilbert"):
            sel = [r for r in results
                   if r["cloud"] == kind and r["curve"] == curve]
            assert sel[0]["branches_total"] < sel[1]["branches_total"]


def test_benchmark_hilbert_partition(benchmark):
    pos = make_cloud("uniform")
    benchmark(lambda: sfc_partition(pos, 32, curve="hilbert"))


def test_benchmark_morton_partition(benchmark):
    pos = make_cloud("uniform")
    benchmark(lambda: sfc_partition(pos, 32, curve="morton"))


def main(argv: List[str]) -> None:
    rows = run_experiment()
    print("Ablation — SFC partition quality (Morton vs Hilbert)")
    print(format_table(
        ["cloud", "curve", "ranks", "box surface", "total branches",
         "imbalance"],
        [[r["cloud"], r["curve"], r["ranks"], r["surface"],
          r["branches_total"], r["imbalance"]] for r in rows],
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
