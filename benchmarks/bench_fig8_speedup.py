"""Fig. 8 — speedup of PEPC+PFASST(2,2,P_T) over time-serial SDC(4).

Paper setup: spherical vortex sheet, dt = 0.5, tree code with theta = 0.3
(fine) / 0.6 (coarse), spatial parallelism fixed at its saturation point
(P_S = 512 nodes small / 2048 nodes large); speedup measured against
serial SDC(4) *on the same saturated spatial partition* as P_T grows to
32 (x-axis: total cores = P_T x P_S x 4).  Dashed line: theory Eq. 24
with alpha from the measured theta-cost ratio (Eq. 26).

Here the same algorithm runs on the simulated MPI: every rank executes
the *real* tree code (so per-sweep compute costs are real measured wall
time) and the scheduler's virtual clocks measure the pipeline's parallel
makespan, including modelled message costs.  The spatial dimension enters
exactly as in the paper — as a fixed multiplier on the core count and
through the measured fine/coarse evaluation-cost ratio.

Deviation note: the measured ratio between theta = 0.3 and theta = 0.6
runs of our NumPy tree code at CI particle counts is smaller than the
paper's Fortran-at-4M-particles factor (2.65-3.23), so alpha is larger
and the speedup saturates earlier; the *theory-tracks-measurement* claim
is scale-independent and is what the tests assert.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.parallel import CommCostModel, Scheduler
from repro.pfasst import (
    LevelSpec,
    PfasstConfig,
    run_pfasst,
    speedup_bound,
    speedup_two_level,
)
from repro.sdc import SDCStepper


@dataclass(frozen=True)
class SpeedupScale:
    n_particles: int
    n_steps: int
    dt: float
    p_times: Sequence[int]
    theta_fine: float = 0.3
    theta_coarse: float = 0.6
    sigma_over_h: float = 3.0
    leaf_size: int = 48
    #: modelled spatial ranks per time slice (x-axis bookkeeping only)
    p_space_nodes: int = 512
    cores_per_node: int = 4


#: scale used by the pytest checks — the smallest size at which the
#: theta cost ratio is reliably measurable above tree overheads
TEST_SCALE = SpeedupScale(n_particles=800, n_steps=4, dt=0.5,
                          p_times=(1, 4), p_space_nodes=512)
CI_SMALL = SpeedupScale(n_particles=800, n_steps=8, dt=0.5,
                        p_times=(1, 2, 4, 8), p_space_nodes=512)
CI_LARGE = SpeedupScale(n_particles=2500, n_steps=8, dt=0.5,
                        p_times=(1, 2, 4, 8), p_space_nodes=2048)
PAPER_SMALL = SpeedupScale(n_particles=125_000, n_steps=32, dt=0.5,
                           p_times=(1, 2, 4, 8, 16, 32),
                           sigma_over_h=18.53, p_space_nodes=512)
PAPER_LARGE = SpeedupScale(n_particles=4_000_000, n_steps=32, dt=0.5,
                           p_times=(1, 2, 4, 8, 16, 32),
                           sigma_over_h=18.53, p_space_nodes=2048)

KS, KP, N_COARSE = 4, 2, 2  # SDC(4) baseline, PFASST(2,2,.)


def _problems(scale: SpeedupScale):
    fine_problem, u0, cfg = sheet_problem(
        scale.n_particles, evaluator="tree", theta=scale.theta_fine,
        leaf_size=scale.leaf_size, sigma_over_h=scale.sigma_over_h,
    )
    # the coarse evaluator shares the fine tree-state cache (one tree +
    # moment pass per configuration, theta-specific traversals only)
    coarse_problem = fine_problem.coarsened(theta=scale.theta_coarse)
    return fine_problem, coarse_problem, u0


def measure_theta_ratio(scale: SpeedupScale, repeats: int = 3) -> float:
    """Measured RHS cost ratio theta_fine vs theta_coarse (paper: 2.65 /
    3.23 for the small / large setup)."""
    fine_problem, coarse_problem, u0 = _problems(scale)
    for problem in (fine_problem, coarse_problem):
        problem.evaluator.reset_stats()
        for _ in range(repeats):
            problem.rhs(0.0, u0)
    return (
        fine_problem.evaluator.mean_cost
        / coarse_problem.evaluator.mean_cost
    )


def measure_serial_time(scale: SpeedupScale) -> float:
    """Virtual wall-clock of time-serial SDC(4) on one rank."""
    fine_problem, _, u0 = _problems(scale)

    def rank_program(comm):
        stepper = SDCStepper(fine_problem, num_nodes=3, sweeps=KS)
        t_end = scale.n_steps * scale.dt
        stepper.run(u0, 0.0, t_end, scale.dt)
        yield comm.work(0.0)

    sched = Scheduler(1, measure_compute=True)
    sched.run(rank_program)
    return sched.makespan


def measure_pfasst_time(scale: SpeedupScale, p_time: int) -> float:
    """Virtual makespan of PFASST(2,2,p_time) over the same interval."""
    fine_problem, coarse_problem, u0 = _problems(scale)
    cfg = PfasstConfig(
        t0=0.0, t_end=scale.n_steps * scale.dt, n_steps=scale.n_steps,
        iterations=KP,
    )
    specs = [
        LevelSpec(fine_problem, num_nodes=3, sweeps=1),
        LevelSpec(coarse_problem, num_nodes=2, sweeps=N_COARSE),
    ]
    res = run_pfasst(
        cfg, specs, u0, p_time=p_time,
        cost_model=CommCostModel(), measure_compute=True,
    )
    return res.makespan


def run_experiment(scale: SpeedupScale) -> Dict[str, List[float]]:
    ratio = measure_theta_ratio(scale)
    alpha = (2.0 / 3.0) / ratio  # Eq. 26: (M_c/M_f) / ratio
    serial = measure_serial_time(scale)
    rows: Dict[str, List[float]] = {
        "p_time": [], "cores": [], "measured": [], "theory": [],
        "bound": [],
    }
    for p_t in scale.p_times:
        parallel = measure_pfasst_time(scale, p_t)
        rows["p_time"].append(p_t)
        rows["cores"].append(
            p_t * scale.p_space_nodes * scale.cores_per_node
        )
        rows["measured"].append(serial / parallel)
        rows["theory"].append(
            float(speedup_two_level(p_t, alpha, KS, KP, N_COARSE))
        )
        rows["bound"].append(float(speedup_bound(p_t, KS, KP)))
    rows["alpha"] = [alpha]
    rows["theta_ratio"] = [ratio]
    rows["serial_seconds"] = [serial]
    return rows


@pytest.fixture(scope="module")
def small_results():
    return run_experiment(TEST_SCALE)


def test_speedup_grows_with_time_parallelism(small_results):
    """The paper's headline: PFASST provides speedup beyond spatial
    saturation."""
    measured = small_results["measured"]
    assert measured[-1] > measured[0]
    assert measured[-1] > 1.0


def test_speedup_below_eq25_bound(small_results):
    for s, b in zip(small_results["measured"], small_results["bound"]):
        assert s <= b * 1.15  # small tolerance for timing noise


def test_measurement_tracks_theory(small_results):
    """Fig. 8: measured points follow S(P_T; alpha) within a factor."""
    for s, t in zip(small_results["measured"][1:],
                    small_results["theory"][1:]):
        assert 0.4 < s / t < 2.0


def test_theta_ratio_above_one(small_results):
    """Coarsening must actually be cheaper (Sec. IV-B)."""
    assert small_results["theta_ratio"][0] > 1.0


def test_benchmark_tree_rhs_fine_theta(benchmark):
    """The fine propagator's unit of work (one theta=0.3 evaluation)."""
    problem, u0, _ = sheet_problem(
        CI_SMALL.n_particles, evaluator="tree",
        theta=CI_SMALL.theta_fine, sigma_over_h=CI_SMALL.sigma_over_h,
    )
    benchmark(lambda: problem.rhs(0.0, u0))


def test_benchmark_tree_rhs_coarse_theta(benchmark):
    """The coarse propagator's unit of work (one theta=0.6 evaluation)."""
    problem, u0, _ = sheet_problem(
        CI_SMALL.n_particles, evaluator="tree",
        theta=CI_SMALL.theta_coarse, sigma_over_h=CI_SMALL.sigma_over_h,
    )
    benchmark(lambda: problem.rhs(0.0, u0))


def main(argv: List[str]) -> None:
    if "--paper-scale" in argv:
        setups = [("small", PAPER_SMALL), ("large", PAPER_LARGE)]
    else:
        setups = [("small", CI_SMALL), ("large", CI_LARGE)]
    for name, scale in setups:
        res = run_experiment(scale)
        print(f"\nFig. 8{'a' if name == 'small' else 'b'} — {name} setup "
              f"(N={scale.n_particles}, {scale.n_steps} steps, "
              f"theta {scale.theta_fine}/{scale.theta_coarse})")
        print(f"measured theta cost ratio: {res['theta_ratio'][0]:.2f} "
              f"(paper: {'2.65' if name == 'small' else '3.23'}), "
              f"alpha = {res['alpha'][0]:.3f}, serial SDC(4) = "
              f"{res['serial_seconds'][0]:.2f}s virtual")
        rows = list(zip(res["p_time"], res["cores"], res["measured"],
                        res["theory"], res["bound"]))
        print(format_table(
            ["P_T", "cores", "S measured", "S theory Eq.24",
             "bound Eq.25"], rows,
        ))


if __name__ == "__main__":
    main(sys.argv[1:])
