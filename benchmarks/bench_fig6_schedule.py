"""Fig. 6 — graphical depiction of the PFASST schedule.

The paper's Fig. 6 shows the initialisation staircase (rank n performs
n+1 coarse sweeps, each waiting on its left neighbour) followed by the
pipelined V-cycle iterations with fine sweeps overlapping across ranks.
This benchmark runs PFASST with schedule tracing enabled, renders the
per-rank timeline as an ASCII Gantt chart, and asserts the structural
properties the figure illustrates:

* the predictor forms a staircase (rank n's j-th sweep starts after rank
  n-1's j-th sweep has finished),
* fine sweeps of the *same* iteration overlap across ranks (pipelining —
  the whole point of the parallel-in-time construction),
* every rank performs exactly the prescribed number of sweep phases.

Run directly, the benchmark also records the schedule with a
:class:`repro.obs.Tracer` and writes ``BENCH_fig6_trace.json`` (native
repro-trace format, inspect with ``repro-trace summarize``) and
``BENCH_fig6_trace.chrome.json`` (open at https://ui.perfetto.dev) next
to the repository root.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.parallel import CommCostModel
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.vortex.problem import ODEProblem

P_TIME = 3
ITERATIONS = 2


class _CostedScalar(ODEProblem):
    """Scalar ODE whose evaluations carry a deterministic virtual cost
    via a large-but-fast busy loop — keeps the schedule legible."""

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return -u * u + np.sin(3.0 * t)


def run_schedule(p_time: int = P_TIME, iterations: int = ITERATIONS,
                 tracer=None):
    problem = _CostedScalar()
    cfg = PfasstConfig(t0=0.0, t_end=1.0 * p_time, n_steps=p_time,
                       iterations=iterations, trace=True)
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    res = run_pfasst(
        cfg, specs, np.array([1.0]), p_time=p_time,
        cost_model=CommCostModel(), measure_compute=True,
        tracer=tracer,
    )
    return res


def intervals_by_rank(trace) -> Dict[int, List[Tuple[str, float, float]]]:
    """Pair begin/end annotations into (label, t0, t1) per rank."""
    open_events: Dict[Tuple[int, str], float] = {}
    out: Dict[int, List[Tuple[str, float, float]]] = defaultdict(list)
    for ev in trace:
        kind, _, label = ev.label.partition(":")
        if kind == "begin":
            open_events[(ev.rank, label)] = ev.time
        elif kind == "end":
            t0 = open_events.pop((ev.rank, label))
            out[ev.rank].append((label, t0, ev.time))
    return dict(out)


@pytest.fixture(scope="module")
def schedule():
    res = run_schedule()
    return intervals_by_rank(res.trace)


def test_every_rank_has_all_phases(schedule):
    for rank in range(P_TIME):
        labels = [name for name, _, _ in schedule[rank]]
        # rank n: n+1 predictor sweeps
        assert sum(1 for l in labels if l.startswith("predict")) == rank + 1
        for k in range(ITERATIONS):
            assert f"sweep:L0:k{k}" in labels
            assert f"sweep:L1:k{k}" in labels


def test_predictor_staircase(schedule):
    """Fig. 6's lower-left staircase: rank n's j-th predictor sweep
    cannot start before rank n-1's j-th sweep has finished."""
    start = {}
    end = {}
    for rank, items in schedule.items():
        for name, t0, t1 in items:
            if name.startswith("predict:"):
                j = int(name.split(":")[1])
                start[(rank, j)] = t0
                end[(rank, j)] = t1
    for rank in range(1, P_TIME):
        for j in range(1, rank + 1):
            assert start[(rank, j)] >= end[(rank - 1, j - 1)] - 1e-12


def test_fine_sweeps_pipeline_across_ranks(schedule):
    """Fig. 6's main region: same-iteration fine sweeps on different
    ranks overlap in virtual time (they only exchange boundary values)."""
    overlaps = 0
    for k in range(ITERATIONS):
        spans = []
        for rank in range(P_TIME):
            for name, t0, t1 in schedule[rank]:
                if name == f"sweep:L0:k{k}":
                    spans.append((t0, t1))
        for a in range(len(spans)):
            for b in range(a + 1, len(spans)):
                lo = max(spans[a][0], spans[b][0])
                hi = min(spans[a][1], spans[b][1])
                if hi > lo:
                    overlaps += 1
    assert overlaps > 0


def test_coarse_sweep_serialisation(schedule):
    """Coarse sweeps of one iteration are (nearly) serialised left to
    right: rank n's coarse sweep k ends after rank n-1's begins."""
    for k in range(ITERATIONS):
        prev_start = -np.inf
        for rank in range(P_TIME):
            for name, t0, t1 in schedule[rank]:
                if name == f"sweep:L1:k{k}":
                    assert t0 >= prev_start - 1e-12
                    prev_start = t0


def test_benchmark_traced_run(benchmark):
    benchmark(lambda: run_schedule(p_time=2, iterations=1))


def main(argv: List[str]) -> None:
    from repro.obs import Tracer, export_chrome_trace, render_ascii, save_trace

    tracer = Tracer(meta={"benchmark": "fig6_schedule", "p_time": P_TIME,
                          "iterations": ITERATIONS})
    res = run_schedule(tracer=tracer)
    print(f"Fig. 6 — PFASST schedule, {P_TIME} time ranks, "
          f"{ITERATIONS} iterations, PFASST(2,2)")
    print(render_ascii(tracer.spans))
    print(f"\nmakespan: {res.makespan * 1e3:.2f} ms virtual")
    root = Path(__file__).resolve().parent.parent
    trace_path = save_trace(tracer, root / "BENCH_fig6_trace.json",
                            metrics=res.metrics)
    chrome_path = export_chrome_trace(
        tracer, root / "BENCH_fig6_trace.chrome.json")
    print(f"wrote {trace_path} and {chrome_path}")
    print(f"inspect with:  repro-trace summarize {trace_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
