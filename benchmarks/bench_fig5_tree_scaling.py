"""Fig. 5 — strong scaling of the parallel Barnes-Hut tree code.

Paper: per-step wall-clock of PEPC (total, tree traversal, branch
exchange) vs core count on JUGENE, for N = 0.125M / 8M / 2048M particles
of a homogeneous neutral Coulomb system.  Shape: near-ideal scaling while
particles/core stay large, then saturation — the branch-exchange term
grows with P and eventually dominates.

Reproduction: (1) *measure* interaction counts and branch-node counts on
our own tree code / SFC decomposition at small N and P; (2) calibrate the
analytic scaling model with those measurements and a Blue Gene/P machine
description; (3) sweep the model over the paper's N and core counts.
The curves' crossover structure then comes from measured work counts, not
hand-picked constants.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence

import numpy as np
import pytest

from common import format_table
from repro.perfmodel import JUGENE, PepcScalingModel, calibrate_interactions
from repro.tree import TreeCoulombSolver
from repro.tree.domain import branch_counts, sfc_partition

PAPER_N = (125_000, 8_000_000, 2_048_000_000)
#: several sizes: interactions/particle oscillates with N (leaf fill
#: parity), so the log-law fit needs averaging across the swing
CI_CALIBRATION_N = (1000, 2000, 4000, 8000, 16000)
CORES = tuple(4**k for k in range(10))  # 1 .. 262144


def neutral_coulomb_cloud(n: int, seed: int = 0):
    """The Fig. 5 workload: homogeneous, charge-neutral plasma cube."""
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    q = np.concatenate([np.ones(n // 2), -np.ones(n - n // 2)])
    return pos, q


def calibrate_model(
    sizes: Sequence[int] = CI_CALIBRATION_N, theta: float = 0.6
) -> PepcScalingModel:
    """Fit I(N) and branch counts from real runs of our tree code."""
    interactions: Dict[int, float] = {}
    for n in sizes:
        pos, q = neutral_coulomb_cloud(n)
        solver = TreeCoulombSolver(theta=theta, leaf_size=48)
        solver.compute(pos, q)
        interactions[n] = solver.last_stats.interactions_per_particle
    ipp_a, ipp_b = calibrate_interactions(interactions)

    # branch counts per rank at a few decompositions -> log-law fit
    pos, _ = neutral_coulomb_cloud(max(sizes))
    pts = []
    for ranks in (4, 16, 64):
        counts = branch_counts(sfc_partition(pos, ranks))
        n_local = max(sizes) / ranks
        pts.append((np.log2(n_local + 1), counts.mean()))
    xs = np.array([p[0] for p in pts])
    ys = np.array([p[1] for p in pts])
    br_b, br_a = np.polyfit(xs, ys, 1)
    return PepcScalingModel(
        machine=JUGENE, ipp_a=ipp_a, ipp_b=ipp_b,
        br_a=float(br_a), br_b=float(max(br_b, 0.0)),
    )


def run_experiment(model: PepcScalingModel | None = None,
                   sizes: Sequence[int] = PAPER_N):
    model = model or calibrate_model()
    curves = {}
    for n in sizes:
        cores = [c for c in CORES if c <= JUGENE.max_cores and n / c >= 1]
        curves[n] = model.sweep(n, cores)
    return model, curves


@pytest.fixture(scope="module")
def calibrated():
    return run_experiment()


def test_saturation_within_machine(calibrated):
    """Each N has a strong-scaling knee inside the swept range."""
    _, curves = calibrated
    for n, pts in curves.items():
        totals = [p.total for p in pts]
        knee = int(np.argmin(totals))
        assert knee > 0
        if n <= 8_000_000:  # small problems saturate before 262k cores
            assert knee < len(pts) - 1


def test_knee_moves_right_with_n(calibrated):
    model, _ = calibrated
    knees = [model.saturation_cores(n) for n in PAPER_N]
    assert knees[0] < knees[1] <= knees[2]


def test_branch_exchange_dominates_at_scale(calibrated):
    """The Fig. 5 message: branch exchange overtakes traversal for the
    small problem at large core counts."""
    model, curves = calibrated
    small = curves[125_000]
    assert small[0].branch_exchange < small[0].traversal
    assert small[-1].branch_exchange > small[-1].traversal


def test_big_problem_scales_across_machine(calibrated):
    """N = 2048M keeps gaining to (nearly) the full machine."""
    model, curves = calibrated
    pts = curves[2_048_000_000]
    assert pts[-1].total < pts[len(pts) // 2].total


def test_calibration_reflects_measured_interactions(calibrated):
    """The fitted log-law passes through the measured band.

    Interactions/particle oscillates with N around the trend (leaf fill
    parity of the batched tree), so the fit is only expected to land
    within the swing, not on each sample."""
    model, _ = calibrated
    pos, q = neutral_coulomb_cloud(4000)
    solver = TreeCoulombSolver(theta=0.6, leaf_size=48)
    solver.compute(pos, q)
    measured = solver.last_stats.interactions_per_particle
    predicted = model.interactions_per_particle(4000)
    assert 0.3 * measured < predicted < 3.0 * measured


def test_benchmark_coulomb_tree_solve(benchmark):
    pos, q = neutral_coulomb_cloud(CI_CALIBRATION_N[-1])
    solver = TreeCoulombSolver(theta=0.6, leaf_size=48)
    benchmark(lambda: solver.compute(pos, q))


def main(argv: List[str]) -> None:
    model, curves = run_experiment()
    print("Fig. 5 — modelled PEPC strong scaling on JUGENE "
          f"(calibrated: I(N) = {model.ipp_a:.1f} + {model.ipp_b:.1f} "
          f"log2 N; branches/rank = {model.br_a:.1f} + {model.br_b:.2f} "
          "log2 n_local)")
    for n, pts in curves.items():
        print(f"\nN = {n:,}")
        rows = [
            [p.cores, p.total, p.traversal, p.branch_exchange, p.build]
            for p in pts
        ]
        print(format_table(
            ["cores", "total (s)", "traversal", "branch exch", "build"],
            rows,
        ))
        print(f"saturation at ~{model.saturation_cores(n):,} cores")


if __name__ == "__main__":
    main(sys.argv[1:])
