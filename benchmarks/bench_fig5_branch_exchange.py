"""Fig. 5 (measured) — branch-exchange traffic of the *executed* space
parallelism.

`bench_fig5_tree_scaling.py` reproduces the paper's strong-scaling
curves from a calibrated analytic model.  This companion measures the
same quantities directly from the space-parallel evaluator
(`repro.tree.parallel`): each P_S-rank world really exchanges branch
payloads over the simulated link, so branch bytes, branch-node counts
and exchange/wait spans come from counters and virtual-time traces, not
from a fitted log-law.  The qualitative Fig. 5 driver — total exchange
volume growing with P_S while per-rank compute shrinks — is asserted at
CI scale.

CLI::

    python benchmarks/bench_fig5_branch_exchange.py [--smoke]

``--smoke`` additionally runs the P_T=2 x P_S=2 PFASST grid against the
P_S=1 run and exits non-zero unless the solutions agree to 1e-12.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence

import numpy as np
import pytest

from common import format_table
from repro.obs.tracer import Tracer
from repro.parallel import CommCostModel, Scheduler
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec
from repro.tree.parallel import SpaceParallelTreeEvaluator
from repro.vortex.particles import pack_state
from repro.vortex.problem import VortexProblem

#: JUGENE-flavoured link: measured compute, modelled messages
LINK = CommCostModel(latency=3.5e-6, bandwidth=380e6, send_overhead=1e-6)

P_SWEEP = (1, 2, 4, 8)


def cloud(n: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    charges = rng.normal(size=(n, 3)) * 0.1
    return positions, charges


def measure(n: int, p_space: int, theta: float = 0.3) -> Dict[str, float]:
    """One space-parallel field evaluation; returns measured Fig. 5 data."""
    positions, charges = cloud(n)
    evaluator = SpaceParallelTreeEvaluator(
        "algebraic2", sigma=0.05, theta=theta, leaf_size=16
    )

    def program(comm):
        field = yield from evaluator.field_program(
            comm, positions, charges, gradient=True
        )
        return field

    tracer = Tracer()
    sched = Scheduler(p_space, cost_model=LINK, tracer=tracer)
    sched.run(program)
    counters = sched.metrics.as_dict()["counters"]

    def span_total(name: str) -> float:
        return sum(s.t1 - s.t0 for s in tracer.spans if s.name == name)

    return {
        "p_space": p_space,
        "branch_bytes": counters.get("space.branch_bytes", 0),
        "branch_cells": sum(
            v for k, v in counters.items()
            if k.startswith("space.branch_cells")
        ),
        "makespan": max(sched.clocks),
        "exchange_s": span_total("space:branch-exchange"),
        "compute_s": span_total("space:compute"),
        "wait_s": span_total("wait:recv"),
    }


def run_experiment(
    n: int = 2000, p_list: Sequence[int] = P_SWEEP
) -> List[Dict[str, float]]:
    return [measure(n, p) for p in p_list]


def grid_equivalence(n: int = 120, seed: int = 3) -> float:
    """Max relative deviation of the P_T=2 x P_S=2 grid vs P_S=1."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    vorticity = rng.normal(size=(n, 3)) * 0.2
    volumes = np.full(n, 1.0 / n)
    u0 = pack_state(positions, vorticity)

    def specs():
        ev = SpaceParallelTreeEvaluator(
            "algebraic2", sigma=0.1, theta=0.3, leaf_size=16
        )
        fine = VortexProblem(volumes, ev)
        return [LevelSpec(fine, 3, sweeps=1),
                LevelSpec(fine.coarsened(0.6), 2, sweeps=1)]

    cfg = PfasstConfig(t0=0.0, t_end=0.05, n_steps=2, iterations=3)
    ref = run_pfasst(cfg, specs(), u0, p_time=2, p_space=1)
    res = run_pfasst(cfg, specs(), u0, p_time=2, p_space=2)
    scale = float(np.abs(ref.u_end).max())
    return float(np.abs(res.u_end - ref.u_end).max()) / scale


# ----------------------------------------------------------------------
# pytest checks: the Fig. 5 shape from measured data
@pytest.fixture(scope="module")
def sweep():
    return run_experiment()


def test_branch_volume_grows_with_p_space(sweep):
    """More space ranks => more branch nodes and bytes on the wire in
    total — the saturation driver of Fig. 5."""
    bytes_ = [row["branch_bytes"] for row in sweep]
    cells = [row["branch_cells"] for row in sweep]
    assert bytes_[0] == 0 and cells[0] == 0  # serial path: no exchange
    assert bytes_[1] < bytes_[2] < bytes_[3]
    assert cells[1] < cells[2] < cells[3]


def test_exchange_spans_present_per_rank(sweep):
    row = measure(2000, 3)
    assert row["exchange_s"] > 0 and row["compute_s"] > 0


def test_grid_matches_serial_solution():
    assert grid_equivalence() < 1e-12


def test_benchmark_space_parallel_field(benchmark):
    benchmark(lambda: measure(2000, 2))


# ----------------------------------------------------------------------
def main(argv: List[str]) -> None:
    rows = run_experiment()
    print("Fig. 5 (measured) — branch exchange of the executed space "
          "parallelism, N = 2000")
    print(format_table(
        ["P_S", "branch bytes", "branch cells", "exchange (s)",
         "compute (s)", "wait (s)", "makespan (s)"],
        [[r["p_space"], r["branch_bytes"], r["branch_cells"],
          r["exchange_s"], r["compute_s"], r["wait_s"], r["makespan"]]
         for r in rows],
    ))
    if "--smoke" in argv:
        dev = grid_equivalence()
        ok = dev < 1e-12
        print(f"smoke: P_T=2 x P_S=2 vs P_S=1 max rel deviation = "
              f"{dev:.3e} -> {'PASS' if ok else 'FAIL'}")
        if not ok:
            sys.exit(1)


if __name__ == "__main__":
    main(sys.argv[1:])
