"""Shared helpers for the paper-reproduction benchmark harness.

Every ``bench_*.py`` file reproduces one table or figure of the paper
(see DESIGN.md for the index).  Each file offers:

* ``run_experiment(scale)`` — produces the figure/table data as plain
  Python structures;
* ``test_*`` functions — pytest checks asserting the paper's qualitative
  *shape* (orders, orderings, crossovers) at a small scale, plus at least
  one ``pytest-benchmark`` timing of the underlying kernel;
* a ``main()`` CLI — prints the full table (used to fill EXPERIMENTS.md):
  ``python benchmarks/bench_xxx.py [--paper-scale]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sdc import SDCStepper
from repro.vortex import (
    DirectEvaluator,
    ParticleSystem,
    SheetConfig,
    VortexProblem,
    get_kernel,
    spherical_vortex_sheet,
)

__all__ = [
    "Scale",
    "sheet_problem",
    "reference_solution",
    "rel_max_position_error",
    "observed_orders",
    "format_table",
]


@dataclass(frozen=True)
class Scale:
    """Experiment scale knobs (defaults are CI-friendly).

    ``sigma_over_h``: the paper's core/spacing ratio is 18.53, which at
    paper particle counts (10k+) gives sigma ~ 0.66.  At CI particle
    counts that ratio would smooth the field into near-rigid motion and
    push all integrators to the round-off floor, so scaled runs shrink
    the ratio to keep sigma (and hence the field's roughness) at
    paper-like *absolute* values.  Paper-scale runs use 18.53.
    """

    n_particles: int
    t_end: float
    dts: Sequence[float]
    ref_dt: float
    sigma_over_h: float = 3.0


def sheet_problem(n: int, evaluator: str = "direct", theta: float = 0.3,
                  leaf_size: int = 48, sigma_over_h: float = 3.0):
    """Build the paper's model problem: spherical vortex sheet + RHS.

    Returns ``(problem, u0, sheet_config)``.
    """
    cfg = SheetConfig(n=n, sigma_over_h=sigma_over_h)
    ps = spherical_vortex_sheet(cfg)
    kernel = get_kernel("algebraic6")
    if evaluator == "direct":
        ev = DirectEvaluator(kernel, cfg.sigma)
    elif evaluator == "tree":
        from repro.tree import TreeEvaluator

        ev = TreeEvaluator(kernel, cfg.sigma, theta=theta, leaf_size=leaf_size)
    else:
        raise ValueError(f"unknown evaluator {evaluator!r}")
    problem = VortexProblem(ps.volumes, ev)
    return problem, ps.state(), cfg


def reference_solution(problem, u0, t_end: float, ref_dt: float) -> np.ndarray:
    """Paper Sec. IV-A reference: 8 sweeps of SDC on 5 Gauss-Lobatto
    nodes with a very fine step."""
    stepper = SDCStepper(problem, num_nodes=5, sweeps=8)
    return stepper.run(u0, 0.0, t_end, ref_dt)


def rel_max_position_error(u: np.ndarray, u_ref: np.ndarray) -> float:
    """Relative maximum error of the particle positions (paper metric)."""
    diff = np.max(np.abs(u[0] - u_ref[0]))
    scale = np.max(np.abs(u_ref[0]))
    return float(diff / scale)


def observed_orders(dts: Sequence[float], errors: Sequence[float]) -> List[float]:
    """Pairwise convergence orders log(e_i/e_{i+1}) / log(dt_i/dt_{i+1})."""
    out = []
    for i in range(len(dts) - 1):
        out.append(
            math.log(errors[i] / errors[i + 1])
            / math.log(dts[i] / dts[i + 1])
        )
    return out


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table for benchmark CLIs."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
