"""Tab. A (inline, Sec. IV-B) — coarse/fine cost ratio from the MAC.

Paper: running the tree code with theta = 0.6 instead of 0.3 is 2.65x
cheaper for the small setup (125k particles on 512 nodes) and 3.23x for
the large one (4M on 2048 nodes), giving alpha = 2/(2.65*3) and
2/(3.23*3) in the speedup model (Eq. 26).

Here: measure the same ratio on our tree code at two particle counts and
derive alpha the same way.  The ratio grows with N (near-field work
shrinks relative to fixed overheads), reproducing the small < large
ordering; absolute values differ from the Fortran/BGP measurements.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

import pytest

from common import format_table, sheet_problem
from repro.pfasst import alpha_from_measurements

CI_SIZES = {"small": 1000, "large": 4000}
PAPER_SIZES = {"small": 125_000, "large": 4_000_000}

THETA_FINE, THETA_COARSE = 0.3, 0.6


def measure_ratio(n: int, repeats: int = 3, sigma_over_h: float = 3.0) -> Dict[str, float]:
    """Wall-clock ratio of theta-fine to theta-coarse RHS evaluations."""
    out = {}
    for label, theta in (("fine", THETA_FINE), ("coarse", THETA_COARSE)):
        problem, u0, _ = sheet_problem(
            n, evaluator="tree", theta=theta, sigma_over_h=sigma_over_h
        )
        problem.rhs(0.0, u0)  # warm-up outside the timer
        problem.evaluator.reset_stats()
        for _ in range(repeats):
            problem.rhs(0.0, u0)
        out[label] = problem.evaluator.mean_cost
        out[f"{label}_interactions"] = (
            problem.evaluator.last_stats.far_interactions
            + problem.evaluator.last_stats.near_interactions
        )
    out["ratio"] = out["fine"] / out["coarse"]
    out["work_ratio"] = (
        out["fine_interactions"] / out["coarse_interactions"]
    )
    out["alpha"] = alpha_from_measurements(2, 3, out["ratio"])
    return out


@pytest.fixture(scope="module")
def ratios():
    return {name: measure_ratio(n) for name, n in CI_SIZES.items()}


def test_coarse_is_cheaper(ratios):
    """The algorithmic claim is asserted on interaction counts (exact,
    machine-independent); wall-clock only gets a noise-tolerant floor —
    at CI particle counts the timing ratio is ~1.4 nominally but can dip
    under concurrent load."""
    for name in CI_SIZES:
        assert ratios[name]["work_ratio"] > 1.3
        assert ratios[name]["ratio"] > 0.8


def test_interaction_work_ratio_exceeds_time_ratio_floor(ratios):
    """The algorithmic work drop (interaction counts) backs the timing."""
    for name in CI_SIZES:
        assert ratios[name]["work_ratio"] > 1.3


def test_larger_problem_coarsens_better(ratios):
    """Paper ordering: ratio(large) > ratio(small) (3.23 vs 2.65).
    Asserted on the overhead-free interaction-count ratio, which is the
    machine-independent part of the claim."""
    assert (ratios["large"]["work_ratio"]
            >= ratios["small"]["work_ratio"] * 0.95)


def test_alpha_in_plausible_band(ratios):
    for name in CI_SIZES:
        assert 0.1 < ratios[name]["alpha"] < 0.7


def test_benchmark_theta_fine(benchmark):
    problem, u0, _ = sheet_problem(CI_SIZES["small"], evaluator="tree",
                                   theta=THETA_FINE)
    benchmark(lambda: problem.rhs(0.0, u0))


def main(argv: List[str]) -> None:
    sizes = PAPER_SIZES if "--paper-scale" in argv else CI_SIZES
    soh = 18.53 if "--paper-scale" in argv else 3.0
    rows = []
    paper_vals = {"small": 2.65, "large": 3.23}
    for name, n in sizes.items():
        r = measure_ratio(n, sigma_over_h=soh)
        rows.append([
            name, n, r["ratio"], r["work_ratio"], paper_vals[name],
            r["alpha"],
        ])
    print("Tab. A — tree-code cost ratio theta=0.3 vs theta=0.6 and the "
          "derived alpha (Eq. 26)")
    print(format_table(
        ["setup", "N", "time ratio", "interaction ratio",
         "paper ratio", "alpha"], rows,
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
