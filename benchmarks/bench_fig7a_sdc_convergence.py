"""Fig. 7a — SDC order verification on the vortex sheet (direct solver).

Paper setup: N = 10,000 particles, T = 16, direct summation, 3
Gauss-Lobatto nodes; SDC(2)/SDC(3)/SDC(4) vs dt against an 8th-order SDC
reference with dt = 0.01.  Expected: the error curves follow 2nd/3rd/4th
order slopes down to the node-count-limited floor.

Scaled default here: N = 150, T = 2 (same code path, same slopes).
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import (
    Scale,
    format_table,
    observed_orders,
    reference_solution,
    rel_max_position_error,
    sheet_problem,
)
from repro.sdc import SDCStepper

CI_SCALE = Scale(n_particles=150, t_end=2.0, dts=(0.5, 0.25, 0.125),
                 ref_dt=0.025, sigma_over_h=3.0)
PAPER_SCALE = Scale(n_particles=10_000, t_end=16.0,
                    dts=(1.0, 0.5, 0.25, 0.125), ref_dt=0.01,
                    sigma_over_h=18.53)

SWEEP_COUNTS = (2, 3, 4)


def run_experiment(scale: Scale = CI_SCALE) -> Dict[int, List[float]]:
    """Error-vs-dt curves for SDC(K), K in SWEEP_COUNTS."""
    problem, u0, _ = sheet_problem(scale.n_particles,
                                   sigma_over_h=scale.sigma_over_h)
    u_ref = reference_solution(problem, u0, scale.t_end, scale.ref_dt)
    curves: Dict[int, List[float]] = {}
    for sweeps in SWEEP_COUNTS:
        errors = []
        for dt in scale.dts:
            stepper = SDCStepper(problem, num_nodes=3, sweeps=sweeps)
            u = stepper.run(u0, 0.0, scale.t_end, dt)
            errors.append(rel_max_position_error(u, u_ref))
        curves[sweeps] = errors
    return curves


@pytest.fixture(scope="module")
def curves():
    return run_experiment(CI_SCALE)


@pytest.mark.parametrize("sweeps,expected_order", [(2, 2), (3, 3), (4, 4)])
def test_sdc_k_converges_at_order_k(curves, sweeps, expected_order):
    """The headline claim of Fig. 7a."""
    orders = observed_orders(CI_SCALE.dts, curves[sweeps])
    assert orders[-1] > expected_order - 0.7


def test_more_sweeps_is_more_accurate(curves):
    for dt_idx in range(len(CI_SCALE.dts)):
        errs = [curves[k][dt_idx] for k in SWEEP_COUNTS]
        assert errs[0] > errs[1] > errs[2]


def test_errors_decrease_with_dt(curves):
    for sweeps in SWEEP_COUNTS:
        errs = curves[sweeps]
        assert all(errs[i] > errs[i + 1] for i in range(len(errs) - 1))


def test_benchmark_sdc4_step(benchmark):
    """Timing of one SDC(4) step of the model problem (the unit whose
    serial cost defines the speedup baseline, Eq. 21)."""
    problem, u0, _ = sheet_problem(CI_SCALE.n_particles,
                                   sigma_over_h=CI_SCALE.sigma_over_h)
    stepper = SDCStepper(problem, num_nodes=3, sweeps=4)
    benchmark(lambda: stepper.step(0.0, 0.5, u0))


def main(argv: List[str]) -> None:
    scale = PAPER_SCALE if "--paper-scale" in argv else CI_SCALE
    curves = run_experiment(scale)
    rows = []
    for dt_idx, dt in enumerate(scale.dts):
        rows.append([dt] + [curves[k][dt_idx] for k in SWEEP_COUNTS])
    print("Fig. 7a — relative max position error vs dt "
          f"(N={scale.n_particles}, T={scale.t_end})")
    print(format_table(["dt", "SDC(2)", "SDC(3)", "SDC(4)"], rows))
    for k in SWEEP_COUNTS:
        orders = observed_orders(scale.dts, curves[k])
        print(f"observed orders SDC({k}): "
              + ", ".join(f"{o:.2f}" for o in orders))


if __name__ == "__main__":
    main(sys.argv[1:])
