"""Recovery overhead of fault-tolerant PFASST vs the fault-free baseline.

Runs PFASST(P_T=4) on the linear-oscillator model problem three ways —
fault-free, and with a single injected rank crash recovered by each
policy — plus a lossy-link row (drops + corruption repaired by bounded
link-layer retransmission), and repeats the crash experiment on the
P_T x P_S = 2x2 space-time grid, where the failed *space* rank is
row-resynced from its surviving peer before the time-dimension rebuild.
For every run it records the virtual-time makespan under the
paper-calibrated communication cost model, the iteration counts
(attempted vs converged), and the scheduler's resilience report, so the
JSON quantifies the claim the tests assert: warm restarts rebuild the
lost rank from its neighbour's coarse solution and therefore pay fewer
extra iterations than a cold block restart.

Results go to ``BENCH_resilience.json`` at the repository root.  Run
directly (``python benchmarks/bench_resilience.py``); the pytest entry
point is marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List

import numpy as np
import pytest

from repro.parallel import CommCostModel
from repro.parallel.faults import FaultPlan, MessageFault, RankCrash
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.vortex.problem import ODEProblem

P_TIME = 4
N_STEPS = 8  # two blocks
TOL = 1e-11
CRASH = RankCrash(rank=2, after_ops=26)  # inside V-cycle iteration 2
GRID_P_TIME, GRID_P_SPACE = 2, 2
#: world rank 3 = (t=1, s=1): a *space* rank of the 2x2 grid, hit
#: inside a V-cycle iteration (the recoverable window)
GRID_CRASH = RankCrash(rank=3, after_ops=20)
#: LogP-flavoured figures of the paper's interconnect era
MODEL = CommCostModel(latency=5e-6, bandwidth=1.2e9, send_overhead=1e-6)
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


class Oscillator(ODEProblem):
    matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.matrix @ u


def _setup():
    problem = Oscillator()
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    return specs, np.array([1.0, 2.0])


def _config(recovery: str = "fail") -> PfasstConfig:
    # detection timeout sized to the model problem's makespan — with the
    # default (0.05 virtual seconds) the timeout wait would swamp every
    # other cost on a problem this small
    return PfasstConfig(
        t0=0.0, t_end=1.0, n_steps=N_STEPS, iterations=30,
        residual_tol=TOL, recovery=recovery, recovery_timeout=2e-4,
    )


def _row(label: str, res, baseline=None) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "label": label,
        "makespan_s": res.makespan,
        "iterations_done": res.iterations_done,
        "total_iterations": res.total_iterations,
        "recovery_iterations": res.recovery_iterations,
        "recoveries": res.recoveries,
        "fault_events": res.resilience.counts(),
        "link_recovery_cost_s": res.resilience.recovery_cost,
    }
    if baseline is not None:
        row["error_vs_fault_free"] = float(
            np.abs(res.u_end - baseline.u_end).max()
        )
        row["makespan_overhead_pct"] = (
            100.0 * (res.makespan - baseline.makespan) / baseline.makespan
        )
    return row


def measure() -> List[Dict[str, Any]]:
    specs, u0 = _setup()
    kw = dict(p_time=P_TIME, cost_model=MODEL)

    baseline = run_pfasst(_config(), specs, u0, **kw)
    rows = [_row("fault-free", baseline)]

    crash_plan = FaultPlan(crashes=(CRASH,))
    for policy in ("cold-restart", "warm-restart"):
        res = run_pfasst(
            _config(policy), specs, u0, fault_plan=crash_plan, **kw
        )
        rows.append(_row(f"crash + {policy}", res, baseline))

    # lossy link: one dropped and one corrupted neighbour message, both
    # repaired below the algorithmic layer by bounded retransmission
    lossy_plan = FaultPlan(messages=(
        MessageFault(kind="drop", source=1, dest=2,
                     tag=("lvl", 0, 0, 0, 1)),
        MessageFault(kind="corrupt", source=2, dest=3,
                     tag=("lvl", 0, 0, 1, 2)),
    ))
    res = run_pfasst(
        _config("warm-restart"), specs, u0, fault_plan=lossy_plan, **kw
    )
    rows.append(_row("lossy link + retransmit", res, baseline))

    # P_T x P_S grid: the same experiment with the crash on a *space*
    # rank — recovery row-resyncs the survivor's level state across the
    # space communicator before rejoining the time iteration
    grid_kw = dict(p_time=GRID_P_TIME, p_space=GRID_P_SPACE,
                   cost_model=MODEL)
    grid_base = run_pfasst(_config(), specs, u0, **grid_kw)
    rows.append(_row(
        f"grid {GRID_P_TIME}x{GRID_P_SPACE} fault-free", grid_base
    ))
    grid_plan = FaultPlan(crashes=(GRID_CRASH,))
    for policy in ("cold-restart", "warm-restart"):
        res = run_pfasst(
            _config(policy), specs, u0, fault_plan=grid_plan, **grid_kw
        )
        rows.append(_row(
            f"grid {GRID_P_TIME}x{GRID_P_SPACE} space-rank crash + "
            f"{policy}",
            res, grid_base,
        ))
    return rows


# ---------------------------------------------------------------------------
# pytest entry point (excluded from tier-1 by the `slow` marker)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_recovery_overhead_ordering():
    """Acceptance: both policies reconverge; warm is cheaper than cold."""
    rows = {r["label"]: r for r in measure()}
    cold = rows["crash + cold-restart"]
    warm = rows["crash + warm-restart"]
    assert cold["error_vs_fault_free"] < 100 * TOL
    assert warm["error_vs_fault_free"] < 100 * TOL
    assert warm["recovery_iterations"] < cold["recovery_iterations"]
    assert warm["makespan_overhead_pct"] < cold["makespan_overhead_pct"]
    lossy = rows["lossy link + retransmit"]
    assert lossy["error_vs_fault_free"] == 0.0  # retransmit is exact
    assert lossy["fault_events"]["retransmit"] == 2
    for policy in ("cold-restart", "warm-restart"):
        grid = rows[f"grid 2x2 space-rank crash + {policy}"]
        assert grid["error_vs_fault_free"] < 100 * TOL
        assert grid["recoveries"], "grid crash must be recovered, not missed"


def main(argv: List[str]) -> None:
    rows = measure()
    data = {
        "benchmark": "resilience",
        "description": "PFASST recovery-policy overhead vs fault-free "
                       "baseline (single rank crash at P_T=4; lossy-link "
                       "retransmission; space-rank crash on the 2x2 "
                       "space-time grid), virtual-time cost model",
        "config": {
            "p_time": P_TIME,
            "n_steps": N_STEPS,
            "residual_tol": TOL,
            "crash": {"rank": CRASH.rank, "after_ops": CRASH.after_ops},
            "grid": {
                "p_time": GRID_P_TIME,
                "p_space": GRID_P_SPACE,
                "crash": {"rank": GRID_CRASH.rank,
                          "after_ops": GRID_CRASH.after_ops},
            },
            "cost_model": {
                "latency": MODEL.latency,
                "bandwidth": MODEL.bandwidth,
                "send_overhead": MODEL.send_overhead,
            },
        },
        "results": rows,
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    for r in rows:
        extra = (
            f", +{r['makespan_overhead_pct']:.1f}% makespan, "
            f"{r['recovery_iterations']} recovery iteration(s)"
            if "makespan_overhead_pct" in r else ""
        )
        print(f"  {r['label']:26s} makespan {r['makespan_s']:.6f}s{extra}")


if __name__ == "__main__":
    main(sys.argv[1:])
