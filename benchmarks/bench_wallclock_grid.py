"""Real-core wall-clock speedup of the P_T x 1 grid — executed, not modelled.

Every speedup number so far (`bench_fig8_speedup.py`,
`bench_theory_speedup.py`) comes from *virtual* clocks: the simulated-MPI
cost model replays the paper's Eq. 21-25 arithmetic.  The execution
backend (`docs/architecture.md`, "Execution backends") changes that: the
same PFASST run is executed once with every compute payload inline
(``SerialExecutor``) and once with payloads fanned out to a real
``ProcessPoolExecutor`` over shared memory, and the two wall times are
compared directly.  A byte-identity gate (same frozen results, the
`tests/test_executor.py` contract) guards the comparison — a speedup of a
*different* computation is meaningless.

Honesty about cores: CI containers often expose a single core, where a
process pool can at best break even.  The benchmark therefore always
reports ``cores_available`` and pairs the *measured* speedup with a
critical-path *projection* for the requested worker count, computed from
the recorded per-batch task wall times (LPT packing of each
ready-set batch onto W workers + the non-dispatched main-loop time).
When ``cores_available`` is at least the worker count the projection is
redundant and the result carries ``"projected": false``; when it is
smaller the projection is the honest headline and the measured number
documents the contention floor.

Results go to ``BENCH_wallclock.json`` at the repository root.  Run
directly (``python benchmarks/bench_wallclock_grid.py``); ``--smoke``
shrinks the problem and uses 2 workers (the CI process-executor job).
The pytest entry point is marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis.commcheck import freeze
from repro.parallel.executor import ProcessExecutor, SerialExecutor
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst

from common import sheet_problem

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"

N_DEFAULT, N_SMOKE = 384, 96
P_TIME = 4
WORKERS_DEFAULT, WORKERS_SMOKE = 4, 2


class _BatchRecorder:
    """Wraps an executor's ``dispatch`` to log per-batch task wall times.

    The scheduler flushes compute batches only at event-loop stalls, so
    each recorded batch is exactly one ready-set -> dispatch -> barrier
    phase — the unit the critical-path projection packs onto workers.
    """

    def __init__(self, executor):
        self.executor = executor
        self.batches: List[List[float]] = []
        self._orig = executor.dispatch
        executor.dispatch = self._dispatch

    def _dispatch(self, batch):
        results = self._orig(batch)
        self.batches.append([r.elapsed for r in results])
        return results


def _frozen(res):
    """Backend-invariant fingerprint (same shape as tests/test_executor)."""
    return (
        freeze(res.u_end),
        tuple(freeze(v) for v in res.slice_end_values),
        tuple(tuple(r) for r in res.residuals),
        tuple(res.clocks),
        res.iterations_done,
    )


def _lpt_makespan(tasks: List[float], workers: int) -> float:
    """Longest-processing-time greedy packing of one batch onto W workers."""
    loads = [0.0] * workers
    for t in sorted(tasks, reverse=True):
        i = loads.index(min(loads))
        loads[i] += t
    return max(loads)


def _setup(n: int):
    problem, u0, _ = sheet_problem(n)
    specs = [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]
    config = PfasstConfig(t0=0.0, t_end=0.4, n_steps=P_TIME, iterations=3)
    return config, specs, u0


def measure(n: int = N_DEFAULT, workers: int = WORKERS_DEFAULT) -> Dict:
    """Run serial vs process once each, gate on identity, report both."""
    config, specs, u0 = _setup(n)
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = run_pfasst(
        config, specs, u0, p_time=P_TIME, executor=SerialExecutor()
    )
    serial_s = time.perf_counter() - t0

    with ProcessExecutor(max_workers=workers) as ex:
        # pre-register the same payloads run_pfasst will (register is
        # idempotent for identical objects) so pool spin-up + payload
        # shipping happen outside the timed region
        for i, spec in enumerate(specs):
            ex.register(f"level{i}", spec.problem)
        ex.start()
        t0 = time.perf_counter()
        process = run_pfasst(config, specs, u0, p_time=P_TIME, executor=ex)
        process_s = time.perf_counter() - t0

    if _frozen(process) != _frozen(serial):
        raise RuntimeError(
            "byte-identity gate failed: process backend changed the results"
        )

    # Projection inputs come from a one-worker pool: batching is
    # scheduler-side, so the batch structure is identical, and a single
    # worker runs each batch sequentially — per-task wall times are
    # contention-free even on a one-core machine.
    with ProcessExecutor(max_workers=1) as ex1:
        for i, spec in enumerate(specs):
            ex1.register(f"level{i}", spec.problem)
        recorder = _BatchRecorder(ex1)
        probe = run_pfasst(config, specs, u0, p_time=P_TIME, executor=ex1)
    if _frozen(probe) != _frozen(serial):
        raise RuntimeError("byte-identity gate failed on the probe run")

    dispatched_s = sum(sum(b) for b in recorder.batches)
    main_loop_s = max(0.0, serial_s - dispatched_s)
    projected_s = main_loop_s + sum(
        _lpt_makespan(b, workers) for b in recorder.batches
    )
    return {
        "n": n,
        "p_time": P_TIME,
        "workers": workers,
        "cores_available": cores,
        "serial_s": round(serial_s, 4),
        "process_s": round(process_s, 4),
        "measured_speedup": round(serial_s / process_s, 4),
        "dispatched_s": round(dispatched_s, 4),
        "main_loop_s": round(main_loop_s, 4),
        "batches": len(recorder.batches),
        "max_batch_width": max(len(b) for b in recorder.batches),
        "projected": cores < workers,
        "critical_path_speedup": round(serial_s / projected_s, 4),
        "byte_identical": True,
    }


# ---------------------------------------------------------------------------
# pytest entry point (excluded from tier-1 by the `slow` marker)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_smoke_identity_and_projection():
    """Acceptance: identity gate holds; projection beats 1x on width>1."""
    row = measure(n=N_SMOKE, workers=WORKERS_SMOKE)
    assert row["byte_identical"]
    assert row["max_batch_width"] > 1  # P_T=4 pipeline really overlaps
    assert row["critical_path_speedup"] > 1.0


def main(argv: List[str]) -> None:
    smoke = "--smoke" in argv
    n = N_SMOKE if smoke else N_DEFAULT
    workers = WORKERS_SMOKE if smoke else WORKERS_DEFAULT
    row = measure(n=n, workers=workers)
    data = {
        "benchmark": "wallclock_grid",
        "description": "executed real-core wall-clock speedup of the "
                       "P_T=4 PFASST run, serial vs process backend, "
                       "gated on byte-identical results",
        "config": {
            "evaluator": "direct",
            "kernel": "algebraic6",
            "iterations": 3,
            "smoke": smoke,
        },
        "results": [row],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    headline = "critical_path_speedup" if row["projected"] else \
        "measured_speedup"
    print(f"N={row['n']} P_T={row['p_time']} workers={row['workers']} "
          f"cores={row['cores_available']}: serial {row['serial_s']:.2f}s, "
          f"process {row['process_s']:.2f}s, measured "
          f"{row['measured_speedup']:.2f}x, critical-path "
          f"{row['critical_path_speedup']:.2f}x "
          f"(headline: {headline}, projected={row['projected']})")


if __name__ == "__main__":
    main(sys.argv[1:])
