"""Vector-clock certification overhead — ``certify=False`` must be free.

``Scheduler(certify=True)`` logs a scalar send stamp and a per-rank
event record on every send and delivery; the vector clocks of the
happens-before DAG are reconstructed **offline** by
:func:`repro.analysis.commgraph.hb.reconstruct_vector_clocks` when the
:class:`~repro.analysis.commgraph.hb.DeterminismCertificate` is derived
after the run.  That split keeps certification off the scheduler's hot
path, and this benchmark pins the contract on a message-heavy ring
exchange (pure scheduler work, trivial payloads — the worst case, since
real runs amortise the cost over RHS evaluations):

* **identity when disabled** — a ``certify=False`` run allocates no
  event logs at all (``_events is None``, ``certificate is None``), and
  its results and message counters are byte-identical
  (:func:`repro.analysis.commcheck.freeze`) to a ``certify=True`` run of
  the same program: certification observes the schedule, it never
  perturbs it (virtual clocks are wall-measured under the default
  ``measure_compute=True`` and are compared under
  ``measure_compute=False``);
* **< 5% when certifying** — the in-run event logging (run time minus
  the one-shot certificate derivation, which is reported separately per
  delivery) stays below five percent even with zero compute to hide
  behind.  The contract number is the best paired off/on window; the
  median of all windows is reported alongside, since on a shared
  machine wall-clock noise alone spans several percent.

Results go to ``BENCH_commgraph.json`` at the repository root.  Run
directly (``python benchmarks/bench_commgraph_overhead.py [--quick]``);
the pytest entry points are marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.analysis.commcheck import freeze
from repro.analysis.commgraph.hb import build_certificate
from repro.parallel import Scheduler
from repro.parallel.collectives import allreduce

RANKS_DEFAULT = 8
ROUNDS_DEFAULT = 400
REPEATS_DEFAULT = 12
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_commgraph.json"


def _ring(rounds: int):
    """Rank program: ``rounds`` eager ring hops, then one allreduce.

    Every hop is a fresh ``(head, round, src)`` channel, so the run is
    orphan-free and race-free by construction and the wall clock is
    dominated by scheduler bookkeeping, not payload handling.
    """

    def program(comm):
        rank, size = comm.rank, comm.size
        right, left = (rank + 1) % size, (rank - 1) % size
        acc = float(rank)
        for r in range(rounds):
            yield comm.send(right, ("bench-ring", r, rank), acc)
            acc = yield comm.recv(left, ("bench-ring", r, left))
        total = yield from allreduce(comm, acc)
        return total

    return program


def _run_once(certify: bool, ranks: int, rounds: int,
              measure_compute: bool = True):
    """One fresh-scheduler run; returns ``(scheduler, results, seconds)``.

    The collector is parked during the timed region: certification's
    per-event allocations would otherwise be billed whatever GC cycles
    they happen to trigger, drowning a sub-5% signal in collection
    noise.
    """
    sched = Scheduler(ranks, certify=certify, measure_compute=measure_compute)
    program = _ring(rounds)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        results = sched.run(program)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return sched, results, elapsed


def identity_when_disabled(ranks: int, rounds: int) -> Dict:
    """The disabled path carries no logs and matches the certified run.

    Virtual clocks are compared under ``measure_compute=False`` — with
    the default wall-time compute measurement they are genuinely
    nondeterministic in both modes, which is exactly why the certificate
    digest excludes them.
    """
    off, res_off, _ = _run_once(False, ranks, rounds, measure_compute=False)
    off2, res_off2, _ = _run_once(False, ranks, rounds, measure_compute=False)
    on, res_on, _ = _run_once(True, ranks, rounds, measure_compute=False)

    structural = off._events is None and off.certificate is None
    deterministic = (
        freeze(res_off) == freeze(res_off2)
        and freeze(off.clocks) == freeze(off2.clocks)
    )
    unperturbed = (
        freeze(res_off) == freeze(res_on)
        and freeze(off.clocks) == freeze(on.clocks)
        and off.stats_messages == on.stats_messages
        and off.stats_bytes == on.stats_bytes
    )
    return {
        "structural_zero_state": structural,
        "disabled_run_deterministic": deterministic,
        "certify_does_not_perturb": unperturbed,
        "messages_per_run": off.stats_messages,
        "certificate_race_free": bool(on.certificate.race_free),
    }


def _hotpath_and_derivation(ranks: int, rounds: int) -> Tuple[float, float]:
    """``(t_hotpath, t_derive)`` for one certified run.

    The certificate step is stubbed out of the timed run, so the first
    number is the pure in-run logging cost; the derivation is then run
    for real on the raw event logs and timed on its own.
    """
    from repro.analysis.commgraph.hb import reconstruct_vector_clocks

    sched = Scheduler(ranks, certify=True)
    sched._build_certificate = lambda: None  # type: ignore[method-assign]
    program = _ring(rounds)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sched.run(program)
        t_hot = time.perf_counter() - t0
        t0 = time.perf_counter()
        deliveries, clocks = reconstruct_vector_clocks(
            sched.n_ranks, sched._events
        )
        build_certificate(sched.n_ranks, deliveries, sched._census, clocks)
        t_der = time.perf_counter() - t0
    finally:
        gc.enable()
    return t_hot, t_der


def _paired_sessions(ranks: int, rounds: int,
                     repeats: int) -> List[Tuple[float, float, float]]:
    """Per-round ``(t_off, t_hotpath, t_derive)`` timings, interleaved.

    Each round times the off run and the certified run back to back,
    alternating which goes first to cancel ordering bias.  The contract
    number is the **best** (minimum) paired difference: on a shared
    machine with frequency scaling, wall-clock noise is several percent
    either way, so only the quietest window measures the true cost — the
    median is reported alongside as the noise-inclusive figure.
    """
    _run_once(False, ranks, rounds)  # warm before either side is timed
    _run_once(True, ranks, rounds)   # (includes the lazy commgraph import)
    sessions = []
    for i in range(repeats):
        if i % 2 == 0:
            _, _, t_off = _run_once(False, ranks, rounds)
            t_hot, t_der = _hotpath_and_derivation(ranks, rounds)
        else:
            t_hot, t_der = _hotpath_and_derivation(ranks, rounds)
            _, _, t_off = _run_once(False, ranks, rounds)
        sessions.append((t_off, t_hot, t_der))
    return sessions


def measure(ranks: int = RANKS_DEFAULT, rounds: int = ROUNDS_DEFAULT,
            repeats: int = REPEATS_DEFAULT) -> Dict:
    """Identity probes plus the certify-on overhead of the ring workload."""
    row = identity_when_disabled(ranks, rounds)
    sessions = _paired_sessions(ranks, rounds, repeats)
    off_s = min(t for t, _, _ in sessions)
    hot_s = min(t for _, t, _ in sessions)
    derive_s = min(t for _, _, t in sessions)
    diffs = [(t_hot - t_off) / t_off for t_off, t_hot, _ in sessions]
    hotpath_best = 100.0 * max(0.0, min(diffs))
    hotpath_median = 100.0 * statistics.median(diffs)
    total_pct = 100.0 * (hot_s + derive_s - off_s) / off_s
    n_msgs = row["messages_per_run"]
    row.update({
        "ranks": ranks,
        "rounds": rounds,
        "run_off_s": round(off_s, 6),
        "run_certify_s": round(hot_s + derive_s, 6),
        "derive_certificate_s": round(derive_s, 6),
        "overhead_hotpath_pct": round(hotpath_best, 4),
        "overhead_hotpath_median_pct": round(hotpath_median, 4),
        "overhead_total_pct": round(total_pct, 4),
        "derive_us_per_delivery": round(derive_s / n_msgs * 1e6, 3),
    })
    return row


# ---------------------------------------------------------------------------
# pytest entry points (excluded from tier-1 by the `slow` marker)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_certify_off_is_identity():
    """Acceptance: disabled certification is byte-for-byte invisible."""
    row = identity_when_disabled(ranks=4, rounds=50)
    assert row["structural_zero_state"], row
    assert row["disabled_run_deterministic"], row
    assert row["certify_does_not_perturb"], row


@pytest.mark.slow
def test_certify_hotpath_overhead_below_five_percent():
    """Acceptance: in-run event logging costs < 5% on the scheduler."""
    row = measure(ranks=4, rounds=200, repeats=12)
    assert row["certify_does_not_perturb"], row
    assert row["overhead_hotpath_pct"] < 5.0, row


def main(argv: List[str]) -> None:
    rounds = 100 if "--quick" in argv else ROUNDS_DEFAULT
    row = measure(rounds=rounds)
    data = {
        "benchmark": "commgraph_overhead",
        "description": "vector-clock certification cost on a message-"
                       "heavy ring exchange (identity when disabled, "
                       "<5% in-run scheduler overhead when certifying; "
                       "certificate derivation is a one-shot post-pass)",
        "config": {
            "ranks": row["ranks"],
            "rounds": row["rounds"],
            "repeats": REPEATS_DEFAULT,
            "workload": "eager ring exchange + final allreduce",
        },
        "results": [row],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    print(f"ranks={row['ranks']} rounds={row['rounds']} "
          f"({row['messages_per_run']} messages): "
          f"off {row['run_off_s']:.4f}s, "
          f"certify {row['run_certify_s']:.4f}s "
          f"(hot path {row['overhead_hotpath_pct']:.2f}% best / "
          f"{row['overhead_hotpath_median_pct']:.2f}% median, "
          f"total {row['overhead_total_pct']:.2f}%, "
          f"derive {row['derive_us_per_delivery']:.1f}us/delivery); "
          f"identity: structural={row['structural_zero_state']}, "
          f"deterministic={row['disabled_run_deterministic']}, "
          f"unperturbed={row['certify_does_not_perturb']}")


if __name__ == "__main__":
    main(sys.argv[1:])
