"""Fig. 8 extended to the third dimension — P_T x P_N speedup study.

The paper parallelizes time (PFASST) and space (PEPC) but runs the
method itself serially: within one sweep the Gauss-Seidel substitution
visits the collocation nodes one after another.  PFASST-ER replaces the
lower-triangular preconditioner with a diagonal one, making the node
updates mutually independent — a third process-grid dimension ``P_N``
on top of the paper's ``P_T x P_S``.  This benchmark reruns the Fig. 8
speedup measurement on the 3D grid: time-serial SDC(4) is the baseline,
and PFASST(2,2,P_T) runs with the Gauss-Seidel sweeper (``P_N`` can
only shard the non-sweep RHS rounds: initialization, restriction and
interpolation re-evaluations) are compared against the diagonal sweeper
(``P_N`` shards *every* evaluation round, including the sweeps that
dominate the budget).

As in ``bench_fig8_speedup.py`` every rank executes the real tree code
(``measure_compute=True``) and the scheduler's virtual clocks measure
the pipeline makespan including modelled message costs.  Honesty about
cores, following ``bench_wallclock_grid.py``: the virtual makespan is a
critical-path projection — each rank's compute is measured on the host
but the ranks are *simulated* concurrently.  Every row therefore
carries ``"projected"``: ``false`` only when the host has at least
``p_time * p_nodes`` cores, so a 1-core CI host flags every parallel
row as projected.

Results go to ``BENCH_nodeparallel.json`` at the repository root.  Run
directly (``python benchmarks/bench_fig8_node_parallel.py``);
``--smoke`` shrinks the problem and additionally asserts the byte-
identity gate (Gauss-Seidel ``p_nodes=2`` bitwise equal to
``p_nodes=1``) before writing the file — the CI node-parallel job runs
exactly that.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.parallel import CommCostModel, Scheduler
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import DiagonalSDCSweeper, SDCStepper, make_rule

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_nodeparallel.json"

KS, KP, N_COARSE = 4, 2, 2  # SDC(4) baseline, PFASST(2,2,.)
M_FINE, M_COARSE = 3, 2  # collocation nodes per level


@dataclass(frozen=True)
class NodeScale:
    n_particles: int
    n_steps: int
    dt: float
    #: (p_time, p_nodes) grid points; p_space enters as bookkeeping only
    combos: Sequence[Tuple[int, int]]
    theta_fine: float = 0.3
    theta_coarse: float = 0.6
    sigma_over_h: float = 3.0
    leaf_size: int = 48
    p_space_nodes: int = 512
    cores_per_node: int = 4


#: scale used by the pytest checks and ``--smoke``
TEST_SCALE = NodeScale(n_particles=300, n_steps=4, dt=0.5,
                       combos=((1, 1), (2, 1), (2, 3)))
CI_SCALE = NodeScale(n_particles=800, n_steps=8, dt=0.5,
                     combos=((1, 1), (2, 1), (2, 3), (4, 1), (4, 3),
                             (8, 3)))
PAPER_SCALE = NodeScale(n_particles=125_000, n_steps=32, dt=0.5,
                        combos=((1, 1), (8, 1), (8, 3), (16, 3), (32, 3)),
                        sigma_over_h=18.53)

SWEEPERS = ("gauss-seidel", "diagonal")


def _problems(scale: NodeScale):
    fine_problem, u0, _ = sheet_problem(
        scale.n_particles, evaluator="tree", theta=scale.theta_fine,
        leaf_size=scale.leaf_size, sigma_over_h=scale.sigma_over_h,
    )
    coarse_problem = fine_problem.coarsened(theta=scale.theta_coarse)
    return fine_problem, coarse_problem, u0


def _specs(fine_problem, coarse_problem, sweeper: str):
    return [
        LevelSpec(fine_problem, num_nodes=M_FINE, sweeps=1,
                  sweeper=sweeper),
        LevelSpec(coarse_problem, num_nodes=M_COARSE, sweeps=N_COARSE,
                  sweeper=sweeper),
    ]


def measure_serial_time(scale: NodeScale) -> float:
    """Virtual wall-clock of time-serial SDC(4) on one rank."""
    fine_problem, _, u0 = _problems(scale)

    def rank_program(comm):
        stepper = SDCStepper(fine_problem, num_nodes=M_FINE, sweeps=KS)
        stepper.run(u0, 0.0, scale.n_steps * scale.dt, scale.dt)
        yield comm.work(0.0)

    sched = Scheduler(1, measure_compute=True)
    sched.run(rank_program)
    return sched.makespan


def run_grid(scale: NodeScale, sweeper: str, p_time: int, p_nodes: int,
             measure: bool = True):
    """One PFASST(2,2,p_time) run on the P_T x 1 x P_N grid."""
    fine_problem, coarse_problem, u0 = _problems(scale)
    cfg = PfasstConfig(
        t0=0.0, t_end=scale.n_steps * scale.dt, n_steps=scale.n_steps,
        iterations=KP,
    )
    return run_pfasst(
        cfg, _specs(fine_problem, coarse_problem, sweeper), u0,
        p_time=p_time, p_nodes=p_nodes,
        cost_model=CommCostModel(), measure_compute=measure,
    )


def check_bitwise_gate(scale: NodeScale) -> None:
    """Node sharding must not change a single bit of the trajectory.

    A speedup of a *different* computation is meaningless, so the same
    gate that guards ``bench_wallclock_grid.py`` guards this study:
    Gauss-Seidel on ``p_nodes=2`` must reproduce ``p_nodes=1`` exactly.
    (Timing is irrelevant here, so compute measurement stays off.)
    """
    ref = run_grid(scale, "gauss-seidel", 2, 1, measure=False)
    res = run_grid(scale, "gauss-seidel", 2, 2, measure=False)
    if not np.array_equal(res.u_end, ref.u_end):
        raise RuntimeError("byte-identity gate failed: p_nodes=2 "
                           "changed u_end")
    if res.residuals != ref.residuals:
        raise RuntimeError("byte-identity gate failed: p_nodes=2 "
                           "changed the residual history")


def run_experiment(scale: NodeScale) -> Dict:
    serial = measure_serial_time(scale)
    cores = os.cpu_count() or 1
    rows: List[Dict] = []
    for sweeper in SWEEPERS:
        for p_t, p_n in scale.combos:
            res = run_grid(scale, sweeper, p_t, p_n)
            rows.append({
                "sweeper": sweeper,
                "p_time": p_t,
                "p_nodes": p_n,
                "world": p_t * p_n,
                "cores": (p_t * p_n * scale.p_space_nodes
                          * scale.cores_per_node),
                "makespan_s": round(res.makespan, 4),
                "speedup": round(serial / res.makespan, 4),
                "residual": float(max(r[-1] for r in res.residuals)),
                "projected": cores < p_t * p_n,
            })
    return {
        "serial_seconds": serial,
        "cores_available": cores,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# pytest checks (run by pointing pytest at benchmarks/)
# ---------------------------------------------------------------------------

def test_gauss_seidel_bitwise_identical_across_p_nodes():
    check_bitwise_gate(TEST_SCALE)  # raises on violation


def test_diagonal_gains_from_node_parallelism():
    """The point of the third dimension: with the diagonal sweeper the
    virtual makespan drops when the fine level's nodes are sharded."""
    one = run_grid(TEST_SCALE, "diagonal", 2, 1).makespan
    three = run_grid(TEST_SCALE, "diagonal", 2, 3).makespan
    assert three < one * 0.9


def test_gauss_seidel_gains_little_from_node_parallelism():
    """Gauss-Seidel sweeps are node-sequential — ``P_N`` shards only
    the auxiliary RHS rounds, so the makespan barely moves (and must
    not *grow* materially either)."""
    one = run_grid(TEST_SCALE, "gauss-seidel", 2, 1).makespan
    three = run_grid(TEST_SCALE, "gauss-seidel", 2, 3).makespan
    assert three < one * 1.1


def test_rows_carry_projection_flag():
    res = run_experiment(TEST_SCALE)
    assert len(res["rows"]) == len(SWEEPERS) * len(TEST_SCALE.combos)
    for row in res["rows"]:
        assert row["projected"] == (
            res["cores_available"] < row["world"]
        )
        assert row["speedup"] > 0
        assert row["residual"] < 1.0


def test_benchmark_diagonal_sweep(benchmark):
    """Unit of work the node dimension shards: one diagonal sweep."""
    problem, u0, _ = sheet_problem(
        TEST_SCALE.n_particles, evaluator="tree",
        theta=TEST_SCALE.theta_fine,
        sigma_over_h=TEST_SCALE.sigma_over_h,
    )
    sw = DiagonalSDCSweeper(problem, make_rule(M_FINE))
    U, F = sw.initialize(0.0, TEST_SCALE.dt, u0)
    benchmark(lambda: sw.sweep(0.0, TEST_SCALE.dt, U, F, u0=u0))


def main(argv: List[str]) -> None:
    smoke = "--smoke" in argv
    if "--paper-scale" in argv:
        scale = PAPER_SCALE
    elif smoke:
        scale = TEST_SCALE
    else:
        scale = CI_SCALE
    if smoke:
        check_bitwise_gate(scale)
        print("byte-identity gate passed: gauss-seidel p_nodes=2 == "
              "p_nodes=1")
    res = run_experiment(scale)
    data = {
        "benchmark": "fig8_node_parallel",
        "description": "Fig. 8-style speedup over time-serial SDC(4) on "
                       "the P_T x 1 x P_N grid, Gauss-Seidel vs "
                       "PFASST-ER diagonal sweeper, virtual makespans "
                       "with measured compute",
        "config": {
            "n_particles": scale.n_particles,
            "n_steps": scale.n_steps,
            "dt": scale.dt,
            "theta": [scale.theta_fine, scale.theta_coarse],
            "iterations": KP,
            "coarse_sweeps": N_COARSE,
            "p_space_nodes": scale.p_space_nodes,
            "smoke": smoke,
        },
        "serial_seconds": round(res["serial_seconds"], 4),
        "cores_available": res["cores_available"],
        "results": res["rows"],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    print(f"\nserial SDC(4): {res['serial_seconds']:.2f}s virtual, "
          f"{res['cores_available']} core(s) available")
    table = [
        (r["sweeper"], r["p_time"], r["p_nodes"], r["cores"],
         r["speedup"], "yes" if r["projected"] else "no")
        for r in res["rows"]
    ]
    print(format_table(
        ["sweeper", "P_T", "P_N", "cores", "speedup", "projected"],
        table,
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
