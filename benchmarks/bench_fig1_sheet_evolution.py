"""Fig. 1 — time evolution of the spherical vortex sheet.

Paper: N = 20,000 particles, second-order Runge-Kutta with dt = 1,
sixth-order algebraic kernel; the sheet translates along its symmetry
axis, collapses from the top, rolls into its own interior and forms a
travelling vortex ring (qualitative figure at t = 1 and t = 25).

Reproduction: evolve the same setup (scaled N by default) and check the
quantitative signatures of that picture: net axial translation, loss of
spherical shape, growth of the velocity spread (the large/red particles
of the figure), and vortex stretching (enstrophy growth).  The main()
CLI prints a per-snapshot summary table (the "numerical version" of the
figure) and can dump CSV snapshots for external visualisation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.integrators import get_integrator
from repro.vortex import unpack_state
from repro.vortex.diagnostics import enstrophy
from repro.vortex.particles import ParticleSystem

CI_N, PAPER_N = 400, 20_000
CI_T, PAPER_T = 8.0, 25.0


@dataclass
class Snapshot:
    time: float
    mean_z: float
    radius_mean: float
    radius_std: float
    speed_max: float
    speed_mean: float
    enstrophy: float


def run_experiment(n: int = CI_N, t_end: float = CI_T, dt: float = 1.0,
                   sigma_over_h: float = 3.0,
                   evaluator: str = "direct") -> List[Snapshot]:
    problem, u0, cfg = sheet_problem(n, evaluator=evaluator,
                                     sigma_over_h=sigma_over_h)
    rk2 = get_integrator("rk2")
    snapshots: List[Snapshot] = []

    def record(t: float, u: np.ndarray) -> None:
        x, w = unpack_state(u)
        center = x.mean(axis=0)
        radii = np.linalg.norm(x - center, axis=1)
        field = problem.evaluator.field(
            x, w * problem.volumes[:, None], gradient=False
        )
        speed = np.linalg.norm(field.velocity, axis=1)
        ps = ParticleSystem(x, w, problem.volumes)
        snapshots.append(Snapshot(
            time=t,
            mean_z=float(x[:, 2].mean()),
            radius_mean=float(radii.mean()),
            radius_std=float(radii.std()),
            speed_max=float(speed.max()),
            speed_mean=float(speed.mean()),
            enstrophy=enstrophy(ps),
        ))

    rk2.run(problem, u0, 0.0, t_end, dt, callback=record)
    return snapshots


@pytest.fixture(scope="module")
def evolution():
    return run_experiment()


def test_sheet_translates_along_axis(evolution):
    """The sphere moves along z (paper: 'moving downwards'; sign is an
    orientation convention)."""
    dz = evolution[-1].mean_z - evolution[0].mean_z
    assert abs(dz) > 0.05


def test_sphere_deforms(evolution):
    """'The sphere collapses from the top and wraps into its interior':
    the radius spread grows far beyond its initial value."""
    assert evolution[-1].radius_std > 3 * evolution[0].radius_std


def test_velocity_contrast_grows(evolution):
    """Fig. 1's color scale: the max/mean speed contrast increases as the
    ring forms."""
    first = evolution[0].speed_max / evolution[0].speed_mean
    last = evolution[-1].speed_max / evolution[-1].speed_mean
    assert last > first


def test_enstrophy_grows_by_stretching(evolution):
    """3D vortex stretching amplifies |omega|^2."""
    assert evolution[-1].enstrophy > evolution[0].enstrophy


def test_motion_is_sane(evolution):
    for snap in evolution:
        assert np.isfinite(snap.speed_max)
        assert snap.radius_mean < 10.0  # nothing blew up


def test_benchmark_rk2_step(benchmark):
    """Paper Fig. 1 inner loop: one RK2 step of the sheet."""
    problem, u0, _ = sheet_problem(CI_N)
    rk2 = get_integrator("rk2")
    benchmark(lambda: rk2.step(problem, 0.0, 1.0, u0))


def main(argv: List[str]) -> None:
    paper = "--paper-scale" in argv
    n = PAPER_N if paper else CI_N
    t_end = PAPER_T if paper else CI_T
    soh = 18.53 if paper else 3.0
    evaluator = "tree" if paper else "direct"
    snaps = run_experiment(n, t_end, 1.0, soh, evaluator)
    print(f"Fig. 1 — spherical vortex sheet, N={n}, RK2, dt=1")
    rows = [
        [s.time, s.mean_z, s.radius_mean, s.radius_std, s.speed_mean,
         s.speed_max, s.enstrophy]
        for s in snaps
    ]
    print(format_table(
        ["t", "mean z", "<r>", "std r", "<|u|>", "max |u|", "enstrophy"],
        rows,
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
