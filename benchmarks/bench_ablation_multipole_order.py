"""Ablation — multipole expansion order (monopole/dipole/quadrupole).

The tree code's far field truncates the streamfunction expansion; the
order trades per-interaction flops against MAC-limited accuracy.  The
paper's PEPC uses fixed-order expansions — this ablation quantifies what
each order buys on the actual model problem, at the paper's two thetas.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np
import pytest

from common import format_table, sheet_problem
from repro.tree import TreeEvaluator
from repro.vortex import DirectEvaluator, get_kernel

N_CI = 800
ORDERS = (0, 1, 2)
THETAS = (0.3, 0.6)


def run_experiment(n: int = N_CI) -> List[Dict]:
    problem, u0, cfg = sheet_problem(n)
    kernel = get_kernel("algebraic6")
    positions = u0[0]
    charges = u0[1] * problem.volumes[:, None]
    ref = DirectEvaluator(kernel, cfg.sigma).field(positions, charges)
    rows = []
    for theta in THETAS:
        for order in ORDERS:
            ev = TreeEvaluator(kernel, cfg.sigma, theta=theta, order=order,
                               leaf_size=48)
            out = ev.field(positions, charges)
            err_u = np.max(np.abs(out.velocity - ref.velocity)) / np.max(
                np.abs(ref.velocity)
            )
            err_g = np.max(np.abs(out.gradient - ref.gradient)) / np.max(
                np.abs(ref.gradient)
            )
            rows.append({
                "theta": theta, "order": order,
                "rel_err_u": float(err_u), "rel_err_gradu": float(err_g),
                "seconds": ev.mean_cost,
            })
    return rows


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_higher_order_more_accurate(results):
    for theta in THETAS:
        errs = [r["rel_err_u"] for r in results if r["theta"] == theta]
        assert errs[2] < errs[0]
        assert errs[1] < errs[0]


def test_quadrupole_at_coarse_theta_beats_monopole_at_fine(results):
    """Order can substitute for theta: order-2 at 0.6 is competitive
    with order-0 at 0.3."""
    by = {(r["theta"], r["order"]): r for r in results}
    assert by[(0.6, 2)]["rel_err_u"] < by[(0.3, 0)]["rel_err_u"]


def test_gradient_error_tracks_velocity_error(results):
    for r in results:
        assert r["rel_err_gradu"] < 100 * max(r["rel_err_u"], 1e-12)


def test_benchmark_far_field_order2(benchmark, rng):
    from repro.tree.evaluate import evaluate_vortex_far

    k = get_kernel("algebraic6")
    targets = rng.normal(size=(48, 3))
    centers = rng.normal(size=(300, 3)) * 5
    m0 = rng.normal(size=(300, 3))
    m1 = rng.normal(size=(300, 3, 3))
    m2 = rng.normal(size=(300, 3, 3, 3))
    m2 = 0.5 * (m2 + m2.swapaxes(2, 3))
    benchmark(lambda: evaluate_vortex_far(
        targets, centers, m0, m1, m2, k, 0.5, order=2, gradient=True,
    ))


def main(argv: List[str]) -> None:
    rows = run_experiment()
    print("Ablation — multipole order vs accuracy/cost")
    print(format_table(
        ["theta", "order", "rel err u", "rel err grad u", "seconds"],
        [[r["theta"], r["order"], r["rel_err_u"], r["rel_err_gradu"],
          r["seconds"]] for r in rows],
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
