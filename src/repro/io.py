"""Checkpoint I/O for particle states and run metadata.

Long vortex-method runs (and the paper-scale benchmark configurations)
need restartable state.  Particle systems are stored as compressed ``.npz``
archives with a format version; run summaries as plain JSON.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.vortex.particles import ParticleSystem

__all__ = ["save_particles", "load_particles", "save_run_summary",
           "load_run_summary"]

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_particles(
    path: PathLike, ps: ParticleSystem, time: float = 0.0,
    metadata: Dict[str, Any] | None = None,
) -> pathlib.Path:
    """Write a particle system (and simulation time) to ``path`` (.npz)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        time=np.float64(time),
        positions=ps.positions,
        vorticity=ps.vorticity,
        volumes=ps.volumes,
        metadata=json.dumps(metadata or {}),
    )
    return path


def load_particles(path: PathLike) -> tuple[ParticleSystem, float, Dict[str, Any]]:
    """Read a particle checkpoint; returns ``(system, time, metadata)``."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version > _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format version {version}; "
                f"this build reads up to {_FORMAT_VERSION}"
            )
        ps = ParticleSystem(
            data["positions"].copy(),
            data["vorticity"].copy(),
            data["volumes"].copy(),
        )
        time = float(data["time"])
        metadata = json.loads(str(data["metadata"]))
    return ps, time, metadata


def save_run_summary(path: PathLike, summary: Dict[str, Any]) -> pathlib.Path:
    """Write a JSON run summary (numpy scalars are converted)."""
    path = pathlib.Path(path)

    def convert(obj: Any) -> Any:
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"cannot serialise {type(obj)!r}")

    path.write_text(json.dumps(summary, indent=2, default=convert,
                               sort_keys=True))
    return path


def load_run_summary(path: PathLike) -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())
