"""Checkpoint I/O for particle states and run metadata.

Long vortex-method runs (and the paper-scale benchmark configurations)
need restartable state.  Particle systems are stored as compressed ``.npz``
archives with a format version; run summaries as plain JSON.

Durability contract (shared by the particle checkpoints here and the
PFASST :class:`~repro.pfasst.checkpoint.RunCheckpoint` container built on
:func:`atomic_write_bytes`):

* every write goes to a temp file in the destination directory, is
  flushed and ``fsync``'d, then moved into place with ``os.replace`` —
  a reader never observes a half-written checkpoint, only the old or the
  new one;
* payload bytes carry a CRC32 so truncation or bit rot is reported as a
  :class:`CheckpointCorruptionError` with a clear message instead of a
  cryptic decoder traceback (or, worse, silently wrong arrays).
"""

from __future__ import annotations

import io as _io
import json
import os
import pathlib
import tempfile
import zipfile
import zlib
from typing import Any, Dict, Union

import numpy as np

from repro.vortex.particles import ParticleSystem

__all__ = [
    "save_particles",
    "load_particles",
    "save_run_summary",
    "load_run_summary",
    "CheckpointCorruptionError",
    "atomic_write_bytes",
    "write_crc_container",
    "read_crc_container",
]

_FORMAT_VERSION = 2

PathLike = Union[str, pathlib.Path]


class CheckpointCorruptionError(RuntimeError):
    """A checkpoint file is truncated or fails its CRC check."""


# ---------------------------------------------------------------------------
# durable low-level primitives
# ---------------------------------------------------------------------------
def atomic_write_bytes(path: PathLike, payload: bytes) -> pathlib.Path:
    """Write ``payload`` to ``path`` atomically (temp + fsync + replace).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  A
    crash at any point leaves either the previous file or the new one,
    never a torn write.
    """
    path = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def write_crc_container(
    path: PathLike, magic: bytes, payload: bytes
) -> pathlib.Path:
    """Atomically write ``magic + crc32(payload) + payload`` to ``path``."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    blob = magic + crc.to_bytes(4, "big") + payload
    return atomic_write_bytes(path, blob)


def read_crc_container(path: PathLike, magic: bytes) -> bytes:
    """Read a CRC container; raise :class:`CheckpointCorruptionError` on
    a bad magic, truncation, or CRC mismatch."""
    path = pathlib.Path(path)
    blob = path.read_bytes()
    header = len(magic) + 4
    if len(blob) < header or not blob.startswith(magic):
        raise CheckpointCorruptionError(
            f"checkpoint {path} is truncated or not a "
            f"{magic.decode('ascii', 'replace')} container "
            f"({len(blob)} byte(s) read)"
        )
    stored = int.from_bytes(blob[len(magic):header], "big")
    payload = blob[header:]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if stored != actual:
        raise CheckpointCorruptionError(
            f"checkpoint {path} failed its CRC check "
            f"(stored {stored:#010x}, computed {actual:#010x}); the file "
            "is corrupt — restore from an earlier checkpoint"
        )
    return payload


def _npz_bytes(**arrays: Any) -> bytes:
    buf = _io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


# ---------------------------------------------------------------------------
# particle checkpoints
# ---------------------------------------------------------------------------
def save_particles(
    path: PathLike, ps: ParticleSystem, time: float = 0.0,
    metadata: Dict[str, Any] | None = None,
) -> pathlib.Path:
    """Write a particle system (and simulation time) to ``path`` (.npz).

    The write is atomic (temp file + fsync + ``os.replace``) and the
    archive embeds a CRC32 over the array bytes, checked on load.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    crc = _particles_crc(ps.positions, ps.vorticity, ps.volumes, time)
    payload = _npz_bytes(
        format_version=np.int64(_FORMAT_VERSION),
        time=np.float64(time),
        positions=ps.positions,
        vorticity=ps.vorticity,
        volumes=ps.volumes,
        metadata=json.dumps(metadata or {}),
        crc=np.uint32(crc),
    )
    atomic_write_bytes(path, payload)
    return path


def _particles_crc(
    positions: np.ndarray, vorticity: np.ndarray, volumes: np.ndarray,
    time: float,
) -> int:
    crc = zlib.crc32(np.float64(time).tobytes())
    for arr in (positions, vorticity, volumes):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def load_particles(path: PathLike) -> tuple[ParticleSystem, float, Dict[str, Any]]:
    """Read a particle checkpoint; returns ``(system, time, metadata)``.

    Raises :class:`CheckpointCorruptionError` when the file is truncated
    (not a readable archive) or its stored CRC does not match the array
    bytes; :class:`ValueError` for format versions newer than this build.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version > _FORMAT_VERSION:
                raise ValueError(
                    f"checkpoint {path} has format version {version}; "
                    f"this build reads up to {_FORMAT_VERSION}"
                )
            ps = ParticleSystem(
                data["positions"].copy(),
                data["vorticity"].copy(),
                data["volumes"].copy(),
            )
            time = float(data["time"])
            metadata = json.loads(str(data["metadata"]))
            stored_crc = int(data["crc"]) if "crc" in data.files else None
    except (zipfile.BadZipFile, zlib.error, OSError, KeyError) as exc:
        # np.load raises BadZipFile on a truncated archive
        raise CheckpointCorruptionError(
            f"particle checkpoint {path} is truncated or unreadable "
            f"({exc}); the write may have been interrupted before this "
            "build's atomic-rename path, or the file is damaged"
        ) from exc
    if stored_crc is not None:
        actual = _particles_crc(ps.positions, ps.vorticity, ps.volumes, time)
        if stored_crc != actual:
            raise CheckpointCorruptionError(
                f"particle checkpoint {path} failed its CRC check "
                f"(stored {stored_crc:#010x}, computed {actual:#010x}); "
                "the array bytes are corrupt"
            )
    return ps, time, metadata


def save_run_summary(path: PathLike, summary: Dict[str, Any]) -> pathlib.Path:
    """Write a JSON run summary (numpy scalars are converted)."""
    path = pathlib.Path(path)

    def convert(obj: Any) -> Any:
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"cannot serialise {type(obj)!r}")

    atomic_write_bytes(
        path,
        json.dumps(summary, indent=2, default=convert,
                   sort_keys=True).encode("utf-8"),
    )
    return path


def load_run_summary(path: PathLike) -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())
