"""ODE-problem view of the vortex particle method.

The time integrators (RK, SDC, PFASST) see an initial value problem
``du/dt = f(t, u)`` over packed ``(2, N, 3)`` states.  The right-hand side
is delegated to a :class:`FieldEvaluator`, which is either

* :class:`DirectEvaluator` — exact O(N^2) summation (paper Sec. IV-A), or
* ``repro.tree.TreeEvaluator`` — Barnes-Hut with a multipole acceptance
  parameter ``theta`` (paper Sec. III-A).

PFASST's *particle-based spatial coarsening* consists of giving the coarse
level a ``VortexProblem`` whose evaluator uses a larger ``theta``: the state
space is unchanged, only the accuracy/cost of ``f`` differs.  Evaluators
count calls and accumulate wall-clock so the benchmark harness can measure
the fine/coarse cost ratio ``alpha`` that enters the speedup model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.utils.timing import Timer
from repro.utils.validation import check_array, check_positive
from repro.vortex.kernels import SmoothingKernel, get_kernel
from repro.vortex.particles import pack_state, unpack_state
from repro.vortex.rhs import StretchingScheme, VelocityField, biot_savart_direct

__all__ = ["FieldEvaluator", "DirectEvaluator", "VortexProblem", "ODEProblem"]


class ODEProblem(ABC):
    """Initial value problem interface consumed by every time integrator."""

    @abstractmethod
    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        """Evaluate ``f(t, u)``; must return an array shaped like ``u``."""

    def norm(self, u: np.ndarray) -> float:
        """Norm used for residuals/errors (max norm by default)."""
        return float(np.max(np.abs(u))) if u.size else 0.0


class FieldEvaluator(ABC):
    """Computes the induced velocity field of a set of vortex particles."""

    def __init__(self) -> None:
        self.timer = Timer(name=type(self).__name__)
        self.calls = 0

    @abstractmethod
    def _evaluate(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        """Field of the given sources sampled at the source positions."""

    def field(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool = True
    ) -> VelocityField:
        """Timed, counted evaluation of velocity (and gradient)."""
        self.calls += 1
        with self.timer:
            return self._evaluate(positions, charges, gradient)

    @property
    def mean_cost(self) -> float:
        """Mean measured wall-clock seconds per evaluation."""
        return self.timer.mean

    def reset_stats(self) -> None:
        self.timer.reset()
        self.calls = 0


class DirectEvaluator(FieldEvaluator):
    """Exact O(N^2) summation evaluator."""

    def __init__(
        self,
        kernel: SmoothingKernel | str,
        sigma: float,
        chunk: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.sigma = check_positive("sigma", sigma)
        self.chunk = chunk

    def _evaluate(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        return biot_savart_direct(
            positions,
            positions,
            charges,
            self.kernel,
            self.sigma,
            gradient=gradient,
            chunk=self.chunk,
        )


class VortexProblem(ODEProblem):
    """The vortex particle IVP (paper Eqs. 5-6) over packed states.

    Parameters
    ----------
    volumes : (N,)
        Constant particle volumes (incompressible flow).
    evaluator :
        Field evaluator used for ``f``; swap for a tree evaluator with a
        larger ``theta`` to obtain the paper's coarse propagator.
    scheme :
        Stretching scheme, ``"transpose"`` (paper) or ``"classical"``.
    """

    def __init__(
        self,
        volumes: np.ndarray,
        evaluator: FieldEvaluator,
        scheme: StretchingScheme = "transpose",
    ) -> None:
        self.volumes = check_array("volumes", volumes, shape=(None,), dtype=np.float64)
        self.evaluator = evaluator
        self.scheme: StretchingScheme = scheme

    @property
    def n(self) -> int:
        return self.volumes.shape[0]

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        positions, vorticity = unpack_state(u)
        if positions.shape[0] != self.n:
            raise ValueError(
                f"state carries {positions.shape[0]} particles, expected {self.n}"
            )
        charges = vorticity * self.volumes[:, None]
        field = self.evaluator.field(positions, charges, gradient=True)
        return pack_state(field.velocity, field.stretching(vorticity, self.scheme))

    def rhs_program(self, space, t: float, u: np.ndarray, dispatch=None):
        """Generator form of :meth:`rhs` for space-parallel evaluation.

        When ``space`` is a live communicator (size > 1) and the
        evaluator exposes ``field_program`` (see
        :class:`repro.tree.parallel.SpaceParallelTreeEvaluator`), the
        field solve is driven collectively over the space ranks via
        ``yield from``.  Otherwise this degenerates to :meth:`rhs` with
        *zero* yields, so serial op streams stay byte-identical.

        ``dispatch`` (a :class:`repro.parallel.executor.DispatchContext`
        under which this problem is registered) routes the compute-heavy
        segments to the scheduler's execution backend: the whole RHS on
        the serial-space path, the per-rank far/near GEMM segment on the
        space-parallel path (branch exchange and RHS allgather stay in
        the event loop — they are communication, not compute).
        """
        program = getattr(self.evaluator, "field_program", None)
        key = dispatch.key_of(self) if dispatch is not None else None
        if space is None or space.size == 1 or program is None:
            if key is not None:
                from repro.parallel.executor import Compute, ComputeTask

                result = yield Compute(
                    ComputeTask(key, "rhs", args=(t,), arrays=(u,))
                )
                return result
            return self.rhs(t, u)
        positions, vorticity = unpack_state(u)
        if positions.shape[0] != self.n:
            raise ValueError(
                f"state carries {positions.shape[0]} particles, expected {self.n}"
            )
        charges = vorticity * self.volumes[:, None]
        field = yield from program(
            space, positions, charges, gradient=True,
            dispatch=dispatch, payload_key=key,
        )
        return pack_state(field.velocity, field.stretching(vorticity, self.scheme))

    def field_segment(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        rank: int,
        p_space: int,
        gradient: bool = True,
    ):
        """One space rank's compact far/near field segment (dispatch unit).

        Thin forwarding method so a :class:`~repro.parallel.executor.
        ComputeTask` over this *registered problem* can name the
        evaluator's segment computation with a plain string method —
        the RPR006 process-safety contract.  Requires an evaluator
        exposing ``segment_field`` (the space-parallel tree evaluator).
        """
        return self.evaluator.segment_field(
            positions, charges, rank, p_space, gradient=gradient
        )

    def with_evaluator(self, evaluator: FieldEvaluator) -> "VortexProblem":
        """Same problem, different field evaluator (used for coarse levels)."""
        return VortexProblem(self.volumes, evaluator, self.scheme)

    def coarsened(self, theta: float) -> "VortexProblem":
        """The paper's particle coarsening: same problem, larger ``theta``.

        Requires a theta-aware evaluator (``repro.tree.TreeEvaluator``);
        the coarse evaluator shares the fine one's tree-state cache, so
        the pair runs one tree build + one moment pass per configuration.
        """
        coarsen = getattr(self.evaluator, "coarsened", None)
        if coarsen is None:
            raise TypeError(
                f"evaluator {type(self.evaluator).__name__} does not support "
                "theta coarsening; construct the coarse problem explicitly"
            )
        return self.with_evaluator(coarsen(theta))
