"""Flow diagnostics and conserved quantities for vortex particle ensembles.

For an unbounded, inviscid flow the following integrals are invariants of
the continuous dynamics and serve as accuracy monitors of the discrete
solver (Cottet & Koumoutsakos 2000, Ch. 1):

* total vorticity      ``Omega = sum_p alpha_p``              (exactly conserved)
* linear impulse       ``I = (1/2) sum_p x_p x alpha_p``
* angular impulse      ``A = (1/3) sum_p x_p x (x_p x alpha_p)``

The kinetic energy and enstrophy reported here are particle-quadrature
approximations of the corresponding field integrals; they are useful for
*relative* drift monitoring rather than absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.vortex.kernels import SmoothingKernel
from repro.vortex.particles import ParticleSystem
from repro.vortex.rhs import biot_savart_direct

__all__ = [
    "total_vorticity",
    "linear_impulse",
    "angular_impulse",
    "enstrophy",
    "kinetic_energy",
    "FlowDiagnostics",
    "compute_diagnostics",
]


def total_vorticity(ps: ParticleSystem) -> np.ndarray:
    """``sum_p alpha_p`` — exactly conserved by any consistent scheme."""
    return ps.charges.sum(axis=0)


def linear_impulse(ps: ParticleSystem) -> np.ndarray:
    """Linear impulse ``(1/2) sum_p x_p x alpha_p``."""
    return 0.5 * np.cross(ps.positions, ps.charges).sum(axis=0)


def angular_impulse(ps: ParticleSystem) -> np.ndarray:
    """Angular impulse ``(1/3) sum_p x_p x (x_p x alpha_p)``."""
    inner = np.cross(ps.positions, ps.charges)
    return np.cross(ps.positions, inner).sum(axis=0) / 3.0


def enstrophy(ps: ParticleSystem) -> float:
    """Particle-quadrature enstrophy ``sum_p |omega_p|^2 vol_p``."""
    return float(np.einsum("ni,ni,n->", ps.vorticity, ps.vorticity, ps.volumes))


def kinetic_energy(
    ps: ParticleSystem, kernel: SmoothingKernel, sigma: float
) -> float:
    """Quadrature kinetic energy ``(1/2) sum_p |u(x_p)|^2 vol_p``.

    Requires one O(N^2) velocity evaluation; intended for diagnostics of
    small ensembles, not inner loops.
    """
    field = biot_savart_direct(
        ps.positions, ps.positions, ps.charges, kernel, sigma, gradient=False
    )
    speed2 = np.einsum("ni,ni->n", field.velocity, field.velocity)
    return float(0.5 * np.dot(speed2, ps.volumes))


@dataclass(frozen=True)
class FlowDiagnostics:
    """Snapshot of the invariants at one time instant."""

    time: float
    total_vorticity: np.ndarray
    linear_impulse: np.ndarray
    angular_impulse: np.ndarray
    enstrophy: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "time": self.time,
            "total_vorticity_norm": float(np.linalg.norm(self.total_vorticity)),
            "linear_impulse_norm": float(np.linalg.norm(self.linear_impulse)),
            "angular_impulse_norm": float(np.linalg.norm(self.angular_impulse)),
            "enstrophy": self.enstrophy,
        }


def compute_diagnostics(ps: ParticleSystem, time: float = 0.0) -> FlowDiagnostics:
    """Evaluate all cheap (O(N)) invariants of a particle system."""
    return FlowDiagnostics(
        time=time,
        total_vorticity=total_vorticity(ps),
        linear_impulse=linear_impulse(ps),
        angular_impulse=angular_impulse(ps),
        enstrophy=enstrophy(ps),
    )
