"""Direct O(N^2) evaluation of the vortex-method right-hand side.

For every target ``x`` the regularised Biot-Savart law and its gradient are

    u(x)      = -(1/4pi) sum_p F(r_p) (r_p x alpha_p)
    du_i/dx_k = -(1/4pi) sum_p [ G(r_p) r_pk (r_p x alpha_p)_i
                                 + F(r_p) eps_{ikm} alpha_pm ]

with ``r_p = x - x_p``, ``F(r) = q(r/sigma)/r^3`` and
``G(r) = (rho q' - 3 q)/r^5`` supplied by the smoothing kernel.  Both radial
factors are finite at ``r = 0`` for regularised kernels, so self-interaction
needs no special casing: the cross product kills the ``G`` term and the
``F eps alpha`` term is the particle's genuine self-induced rotation.

Targets are processed in chunks so the (chunk, N) temporaries stay within a
bounded memory budget (cache-friendliness guidance from the HPC notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple

import numpy as np

from repro.analysis.sanitize import boundary
from repro.utils.chunking import chunk_pairs_budget, chunk_ranges
from repro.utils.validation import check_array, check_positive
from repro.vortex.kernels import SmoothingKernel

__all__ = [
    "VelocityField",
    "biot_savart_direct",
    "biot_savart_pairs",
    "stretching_rhs",
]

_INV_FOUR_PI = 1.0 / (4.0 * np.pi)

StretchingScheme = Literal["transpose", "classical"]


@dataclass
class VelocityField:
    """Velocity and velocity gradient sampled at target points.

    ``velocity[i]`` is ``u(x_i)``; ``gradient[i, a, b]`` is
    ``du_a/dx_b (x_i)`` (row index = velocity component).
    """

    velocity: np.ndarray
    gradient: Optional[np.ndarray] = None

    def stretching(
        self, vorticity: np.ndarray, scheme: StretchingScheme = "transpose"
    ) -> np.ndarray:
        """Vortex stretching term ``domega/dt`` for the given vorticity.

        ``transpose`` (paper Eq. 6): ``domega_i = omega_j du_j/dx_i``;
        ``classical``: ``domega_i = omega_j du_i/dx_j``.
        """
        if self.gradient is None:
            raise ValueError("gradient was not computed; pass gradient=True")
        if scheme == "transpose":
            return np.einsum("nji,nj->ni", self.gradient, vorticity)
        if scheme == "classical":
            return np.einsum("nij,nj->ni", self.gradient, vorticity)
        raise ValueError(f"unknown stretching scheme {scheme!r}")


def _eps_contract(v: np.ndarray) -> np.ndarray:
    """Map vectors ``v`` (..., 3) to matrices ``E_ik = eps_{ikm} v_m``."""
    out = np.zeros(v.shape[:-1] + (3, 3), dtype=np.float64)
    out[..., 0, 1] = v[..., 2]
    out[..., 0, 2] = -v[..., 1]
    out[..., 1, 0] = -v[..., 2]
    out[..., 1, 2] = v[..., 0]
    out[..., 2, 0] = v[..., 1]
    out[..., 2, 1] = -v[..., 0]
    return out


@boundary("biot_savart_direct", arrays=[
    ("targets", (None, 3)), ("sources", (None, 3)), ("charges", (None, 3)),
])
def biot_savart_direct(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: SmoothingKernel,
    sigma: float,
    gradient: bool = True,
    chunk: Optional[int] = None,
    exclude_zero: bool = False,
) -> VelocityField:
    """Direct summation of the regularised Biot-Savart law.

    Parameters
    ----------
    targets : (M, 3)
        Evaluation points.
    sources : (N, 3)
        Particle positions.
    charges : (N, 3)
        Vector charges ``alpha_p = omega_p vol_p``.
    kernel :
        Smoothing kernel providing the radial profiles.
    sigma :
        Core size.  Ignored by :class:`~repro.vortex.kernels.SingularKernel`.
    gradient :
        Also assemble the (M, 3, 3) velocity gradient.
    chunk :
        Target-chunk size; ``None`` picks one from a memory budget.
    exclude_zero :
        Zero out pairs at exactly zero distance (mandatory for the
        unsoftened singular kernel, whose self-interaction diverges).

    Notes
    -----
    Cost is ``O(M N)``.  Exact coincidences between a target and a source
    (``r = 0``) are handled by the kernel's regular radial profiles; for the
    singular kernel such pairs contribute ``inf`` unless softening is set,
    mirroring the physical divergence.
    """
    targets = check_array("targets", targets, shape=(None, 3), dtype=np.float64)
    sources = check_array("sources", sources, shape=(None, 3), dtype=np.float64)
    charges = check_array(
        "charges", charges, shape=(sources.shape[0], 3), dtype=np.float64
    )
    check_positive("sigma", sigma)

    n_targets = targets.shape[0]
    n_sources = sources.shape[0]
    velocity = np.zeros((n_targets, 3), dtype=np.float64)
    grad = np.zeros((n_targets, 3, 3), dtype=np.float64) if gradient else None

    if n_sources == 0 or n_targets == 0:
        return VelocityField(velocity, grad)

    if chunk is None:
        chunk = chunk_pairs_budget(n_sources)

    for lo, hi in chunk_ranges(n_targets, chunk):
        r = targets[lo:hi, None, :] - sources[None, :, :]  # (C, N, 3)
        dist = np.sqrt(np.einsum("cnk,cnk->cn", r, r))  # (C, N)
        if exclude_zero:
            zero = dist == 0.0
            dist = np.where(zero, 1.0, dist)
        f = kernel.f_radial(dist, sigma)  # (C, N)
        if exclude_zero:
            f = np.where(zero, 0.0, f)
        cross = np.cross(r, charges[None, :, :])  # (C, N, 3)
        velocity[lo:hi] = -_INV_FOUR_PI * np.einsum("cn,cni->ci", f, cross)
        if gradient:
            g = kernel.g_radial(dist, sigma)  # (C, N)
            if exclude_zero:
                g = np.where(zero, 0.0, g)
            term1 = np.einsum("cn,cni,cnk->cik", g, cross, r)
            # sum_p F_p eps_{ikm} alpha_pm = E(sum_p F_p alpha_p)
            fa = f @ charges  # (C, 3)
            grad[lo:hi] = -_INV_FOUR_PI * (term1 + _eps_contract(fa))

    return VelocityField(velocity, grad)


def biot_savart_pairs(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: SmoothingKernel,
    sigma: float,
    gradient: bool = True,
    exclude_zero: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-pair Biot-Savart contributions of P (target, source) pairs.

    All arrays are aligned on axis 0: pair ``p`` is the interaction of
    ``targets[p]`` with the single source ``(sources[p], charges[p])``.
    Returns *unsummed* velocity (P, 3) and gradient (P, 3, 3)
    contributions; the batched tree engine scatter-adds them per target.
    Same radial factors and zero-distance semantics as
    :func:`biot_savart_direct`.
    """
    r = targets - sources  # (P, 3)
    dist = np.sqrt(np.einsum("pk,pk->p", r, r))
    if exclude_zero:
        zero = dist == 0.0
        dist = np.where(zero, 1.0, dist)
    f = kernel.f_radial(dist, sigma)
    if exclude_zero:
        f = np.where(zero, 0.0, f)
    cross = np.cross(r, charges)
    velocity = -_INV_FOUR_PI * f[:, None] * cross
    grad = None
    if gradient:
        g = kernel.g_radial(dist, sigma)
        if exclude_zero:
            g = np.where(zero, 0.0, g)
        grad = -_INV_FOUR_PI * (
            np.einsum("p,pi,pk->pik", g, cross, r)
            + _eps_contract(f[:, None] * charges)
        )
    return velocity, grad


@boundary("stretching_rhs", arrays=[
    ("positions", (None, 3)), ("vorticity", (None, 3)),
])
def stretching_rhs(
    positions: np.ndarray,
    vorticity: np.ndarray,
    volumes: np.ndarray,
    kernel: SmoothingKernel,
    sigma: float,
    scheme: StretchingScheme = "transpose",
    chunk: Optional[int] = None,
) -> np.ndarray:
    """Full right-hand side of Eqs. (5)-(6) as a packed (2, N, 3) array.

    Returns ``rhs[0] = dx/dt = u(x_p)`` and ``rhs[1] = domega/dt``.
    """
    charges = vorticity * np.asarray(volumes, dtype=np.float64)[:, None]
    field = biot_savart_direct(
        positions, positions, charges, kernel, sigma, gradient=True, chunk=chunk
    )
    return np.stack([field.velocity, field.stretching(vorticity, scheme)], axis=0)
