"""Particle state containers for the vortex method.

The time integrators (SDC, PFASST, RK) operate on plain ``float64`` ndarrays
so that quadrature and FAS algebra stay vectorised and state-agnostic.  A
vortex particle ensemble is packed as an array of shape ``(2, N, 3)``::

    u[0] = particle positions  x_p      (advected, paper Eq. 5)
    u[1] = particle vorticity  omega_p  (stretched, paper Eq. 6)

Particle volumes ``vol_p`` are *constant* along an inviscid trajectory (the
flow is incompressible), so they live on the problem object, not in the
state vector.  ``alpha_p = omega_p * vol_p`` is the vector charge entering
the Biot-Savart sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.validation import check_array

__all__ = ["ParticleSystem", "pack_state", "unpack_state", "state_like"]


def pack_state(positions: np.ndarray, vorticity: np.ndarray) -> np.ndarray:
    """Stack positions and vorticity into the canonical (2, N, 3) state."""
    positions = check_array("positions", positions, shape=(None, 3), dtype=np.float64)
    vorticity = check_array("vorticity", vorticity, shape=(None, 3), dtype=np.float64)
    if positions.shape != vorticity.shape:
        raise ValueError(
            f"positions {positions.shape} and vorticity {vorticity.shape} "
            "must have identical shapes"
        )
    return np.stack([positions, vorticity], axis=0)


def unpack_state(u: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(positions, vorticity)`` views of a packed state."""
    u = np.asarray(u)
    if u.ndim != 3 or u.shape[0] != 2 or u.shape[2] != 3:
        raise ValueError(f"state must have shape (2, N, 3), got {u.shape}")
    return u[0], u[1]


def state_like(u: np.ndarray) -> np.ndarray:
    """Allocate an uninitialised state with the same shape/dtype."""
    return np.empty_like(u)


@dataclass
class ParticleSystem:
    """A named bundle of particle arrays with convenience constructors.

    Attributes
    ----------
    positions : (N, 3) float64
    vorticity : (N, 3) float64
    volumes   : (N,) float64
        Quadrature volume attached to each particle.
    """

    positions: np.ndarray
    vorticity: np.ndarray
    volumes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = check_array(
            "positions", self.positions, shape=(None, 3), dtype=np.float64
        )
        n = self.positions.shape[0]
        self.vorticity = check_array(
            "vorticity", self.vorticity, shape=(n, 3), dtype=np.float64
        )
        if self.volumes is None:
            self.volumes = np.ones(n, dtype=np.float64)
        self.volumes = check_array("volumes", self.volumes, shape=(n,), dtype=np.float64)
        if np.any(self.volumes < 0):
            raise ValueError("volumes must be non-negative")

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    @property
    def charges(self) -> np.ndarray:
        """Vector charges ``alpha_p = omega_p vol_p``, shape (N, 3)."""
        return self.vorticity * self.volumes[:, None]

    def state(self) -> np.ndarray:
        """Packed (2, N, 3) integration state (copies the arrays)."""
        return pack_state(self.positions.copy(), self.vorticity.copy())

    def with_state(self, u: np.ndarray) -> "ParticleSystem":
        """New system with positions/vorticity replaced from a state."""
        x, w = unpack_state(u)
        if x.shape[0] != self.n:
            raise ValueError(
                f"state has {x.shape[0]} particles, system has {self.n}"
            )
        return ParticleSystem(x.copy(), w.copy(), self.volumes.copy())

    def copy(self) -> "ParticleSystem":
        return ParticleSystem(
            self.positions.copy(), self.vorticity.copy(), self.volumes.copy()
        )

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lower, upper)`` of the positions."""
        return self.positions.min(axis=0), self.positions.max(axis=0)
