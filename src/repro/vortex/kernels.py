"""Regularised smoothing kernels for the vortex particle method.

The Biot-Savart integral (paper Eq. 2) is regularised by convolving the
singular kernel ``K = grad G`` with a radially symmetric smoothing function
``zeta_sigma`` of core size ``sigma`` (paper Eqs. 3-4).  All kernels here are
normalised so that the induced velocity of a particle with vector charge
``alpha = omega * vol`` is::

    u(x)      = -(1/4pi) q(r/sigma) / r^3  (x - x_p) x alpha
    grad u(x) =  assembled from F(r) = q(rho)/r^3 and
                 G(r) = (rho q'(rho) - 3 q(rho)) / r^5

where ``q(rho) = integral_0^rho 4 pi s^2 zeta(s) ds`` and ``q -> 1`` for
``rho -> inf`` (far field equals the singular kernel, which is what makes
multipole acceleration valid).

A kernel of *order m* satisfies the moment conditions ``M0 = 1`` and
``M2 = ... = M_{m-2} = 0`` where ``M_k = integral |x|^k zeta(|x|) d^3x``;
the regularisation error of the velocity field is then ``O(sigma^m)``
(Cottet & Koumoutsakos 2000).  The paper uses the *sixth-order algebraic*
kernel of Speck's thesis [23]; we derive an equivalent kernel from scratch
(closed forms below, verified against numerical quadrature in the tests).

For the algebraic family every radial profile is a rational function of
``t = rho^2``, so the combinations that appear in force evaluation,

* ``q_over_rho3(t) = q(rho)/rho^3``  (regular at the origin), and
* ``w(t) = (rho q' - 3 q)/rho^5``    (regular at the origin),

have exact polynomial-over-power closed forms with *no* removable
singularities; force loops never need small-``r`` guards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple, Type

import numpy as np
from scipy.special import erf

__all__ = [
    "SmoothingKernel",
    "AlgebraicKernel",
    "SecondOrderAlgebraic",
    "FourthOrderAlgebraic",
    "SixthOrderAlgebraic",
    "GaussianKernel",
    "SingularKernel",
    "get_kernel",
    "available_kernels",
]

_FOUR_PI = 4.0 * np.pi


class SmoothingKernel(ABC):
    """Abstract radial smoothing kernel.

    Subclasses provide the dimensionless profiles; the generic methods
    :meth:`f_radial` and :meth:`g_radial` return the two radial factors the
    Biot-Savart evaluation needs, already scaled by the core size ``sigma``.
    """

    #: human-readable registry name
    name: str = "abstract"
    #: formal order of accuracy of the regularisation
    order: int = 0
    #: whether :meth:`f_g_from_r2` is array-namespace generic — i.e. built
    #: from ufunc/protocol arithmetic only, so it runs unchanged on CuPy
    #: arrays inside a device backend (:mod:`repro.backends`).  Kernels
    #: that route through SciPy special functions must leave this False.
    xp_generic: bool = False

    # -- dimensionless profiles -------------------------------------------
    @abstractmethod
    def q(self, rho: np.ndarray) -> np.ndarray:
        """Normalised circulation fraction inside radius ``rho``."""

    @abstractmethod
    def qprime(self, rho: np.ndarray) -> np.ndarray:
        """Derivative ``dq/drho = 4 pi rho^2 zeta(rho)``."""

    @abstractmethod
    def q_over_rho3(self, rho: np.ndarray) -> np.ndarray:
        """``q(rho)/rho^3`` evaluated without cancellation at rho ~ 0."""

    @abstractmethod
    def w(self, rho: np.ndarray) -> np.ndarray:
        """``(rho q'(rho) - 3 q(rho)) / rho^5``, regular at rho ~ 0."""

    def zeta(self, rho: np.ndarray) -> np.ndarray:
        """The smoothing function ``zeta(rho)`` itself (for diagnostics)."""
        rho = np.asarray(rho, dtype=np.float64)
        out = np.empty_like(rho)
        small = rho < 1e-8
        safe = np.where(small, 1.0, rho)
        out = self.qprime(safe) / (_FOUR_PI * safe**2)
        if np.any(small):
            # limit: qprime ~ 4 pi zeta(0) rho^2
            eps = 1e-4
            out = np.where(small, self.qprime(eps) / (_FOUR_PI * eps**2), out)
        return out

    # -- dimensional radial factors ---------------------------------------
    def f_radial(self, r: np.ndarray, sigma: float) -> np.ndarray:
        """``F(r) = q(r/sigma)/r^3`` (the velocity radial factor)."""
        rho = np.asarray(r, dtype=np.float64) / sigma
        return self.q_over_rho3(rho) / sigma**3

    def g_radial(self, r: np.ndarray, sigma: float) -> np.ndarray:
        """``G(r) = (rho q' - 3 q)/r^5`` (the gradient radial factor)."""
        rho = np.asarray(r, dtype=np.float64) / sigma
        return self.w(rho) / sigma**5

    def f_g_from_r2(
        self, r2: np.ndarray, sigma: float, gradient: bool = True
    ) -> Tuple[np.ndarray, "np.ndarray | None"]:
        """Both radial factors straight from *squared* distances.

        The batched near-field evaluator computes ``r^2`` anyway, and the
        algebraic family is rational in ``t = r^2/sigma^2``, so subclasses
        override this to skip the square root entirely (the generic
        fallback takes one).  Returns ``(F, G)``; ``G`` is None when
        ``gradient`` is False.
        """
        dist = np.sqrt(r2)
        f = self.f_radial(dist, sigma)
        g = self.g_radial(dist, sigma) if gradient else None
        return f, g

    def moment(self, k: int, rmax: float = 80.0, n: int = 200_001) -> float:
        """Numerical radial moment ``M_k = int |x|^k zeta d^3x`` (tests)."""
        rho = np.linspace(0.0, rmax, n)
        integrand = rho**k * self.qprime(rho)  # 4 pi rho^{2+k} zeta
        return float(np.trapezoid(integrand, rho))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"


class AlgebraicKernel(SmoothingKernel):
    """Base class for the algebraic family ``zeta ~ P(t)/(t+1)^{D/2}``.

    Subclasses define, with ``t = rho^2``:

    * ``_A``: coefficients of ``A(t)`` where ``q'(rho) = rho^2 A(t)/(t+1)^{D/2}``
    * ``_P``: coefficients of ``P(t)`` where ``q(rho) = rho^3 P(t)/(t+1)^{(D-2)/2}``
    * ``_W``: coefficients of ``Wnum(t)`` where
      ``(rho q' - 3 q)/rho^5 = Wnum(t)/(t+1)^{D/2}``
    * ``_D``: the (odd) denominator exponent numerator.

    Coefficient arrays are low-order-first, consumed via Horner evaluation.
    """

    _A: Tuple[float, ...]
    _P: Tuple[float, ...]
    _W: Tuple[float, ...]
    _D: int

    #: the rational fast path below is Horner + integer powers — pure
    #: ufunc arithmetic, so it dispatches through ``__array_ufunc__`` /
    #: ``__array_function__`` and runs on device arrays unchanged
    xp_generic = True

    @staticmethod
    def _horner(coeffs: Tuple[float, ...], t: np.ndarray) -> np.ndarray:
        acc = np.full_like(t, coeffs[-1])
        for c in coeffs[-2::-1]:
            acc = acc * t + c
        return acc

    def q(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        t = rho * rho
        return rho**3 * self._horner(self._P, t) / (t + 1.0) ** ((self._D - 2) / 2.0)

    def qprime(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        t = rho * rho
        return t * self._horner(self._A, t) / (t + 1.0) ** (self._D / 2.0)

    def q_over_rho3(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        t = rho * rho
        return self._horner(self._P, t) / (t + 1.0) ** ((self._D - 2) / 2.0)

    def w(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        t = rho * rho
        return self._horner(self._W, t) / (t + 1.0) ** (self._D / 2.0)

    @staticmethod
    def _int_power(base: np.ndarray, n: int) -> np.ndarray:
        """``base**n`` by squaring — ~log2(n) multiplies, no np.power."""
        acc = None
        while True:
            if n & 1:
                acc = base if acc is None else acc * base
            n >>= 1
            if not n:
                return acc
            base = base * base

    def f_g_from_r2(
        self, r2: np.ndarray, sigma: float, gradient: bool = True
    ) -> Tuple[np.ndarray, "np.ndarray | None"]:
        """Rational fast path: Horner numerators over ``(t+1)^{-k/2}``.

        The half-integer denominators are integer powers of
        ``1/sqrt(t+1)``; ``F`` and ``G`` share the whole power chain
        (``G``'s denominator is one factor of ``t+1`` deeper), so the
        pair costs one sqrt, one divide and a handful of multiplies —
        several times cheaper than two ``np.power`` calls with float
        exponents.
        """
        sig2 = sigma * sigma
        t = r2 * (1.0 / sig2)
        w = t + 1.0
        np.sqrt(w, out=w)
        inv = np.divide(1.0, w, out=w)
        fden = self._int_power(inv, self._D - 2)
        # fold the sigma scales into the (scalar) coefficients and run
        # Horner in place — no temporaries on the hot path
        inv_sig3 = 1.0 / (sigma * sig2)
        coeffs = self._P
        f = np.full_like(t, coeffs[-1] * inv_sig3)
        for c in coeffs[-2::-1]:
            f *= t
            f += c * inv_sig3
        f *= fden
        g = None
        if gradient:
            inv_sig5 = inv_sig3 / sig2
            coeffs = self._W
            g = np.full_like(t, coeffs[-1] * inv_sig5)
            for c in coeffs[-2::-1]:
                g *= t
                g += c * inv_sig5
            g *= fden
            g *= inv
            g *= inv
        return f, g


class SecondOrderAlgebraic(AlgebraicKernel):
    """``zeta = (3/4pi)(rho^2+1)^{-5/2}`` — the classic low-order kernel."""

    name = "algebraic2"
    order = 2
    _D = 5
    _A = (3.0,)
    _P = (1.0,)
    _W = (-3.0,)


class FourthOrderAlgebraic(AlgebraicKernel):
    """Fourth-order algebraic kernel (moments M0 = 1, M2 = 0).

    ``zeta = (1/4pi)(525/16 - (105/4) t)/(t+1)^{11/2}``.
    """

    name = "algebraic4"
    order = 4
    _D = 11
    _A = (525.0 / 16.0, -105.0 / 4.0)
    _P = (175.0 / 16.0, 63.0 / 8.0, 4.5, 1.0)
    _W = (-1323.0 / 16.0, -297.0 / 8.0, -16.5, -3.0)


class SixthOrderAlgebraic(AlgebraicKernel):
    """Sixth-order algebraic kernel (M0 = 1, M2 = M4 = 0) — paper default.

    ``zeta = (105/256pi)(35 - 56 t + 8 t^2)/(t+1)^{13/2}`` with the exact
    antiderivative ``q = rho^3 (1225/64 + (49/4) t + (99/8) t^2 + (11/2) t^3
    + t^4)/(t+1)^{11/2}``.
    """

    name = "algebraic6"
    order = 6
    _D = 13
    _A = (3675.0 / 64.0, -735.0 / 8.0, 105.0 / 8.0)
    _P = (1225.0 / 64.0, 49.0 / 4.0, 99.0 / 8.0, 5.5, 1.0)
    _W = (-11907.0 / 64.0, -243.0 / 4.0, -429.0 / 8.0, -19.5, -3.0)


class GaussianKernel(SmoothingKernel):
    """Second-order Gaussian: ``zeta = (2 pi)^{-3/2} exp(-rho^2/2)``."""

    name = "gaussian"
    order = 2
    #: below this rho, series expansions replace the closed forms
    _series_cut = 0.5

    _C = float(np.sqrt(2.0 / np.pi))

    def q(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        return erf(rho / np.sqrt(2.0)) - rho * self._C * np.exp(-0.5 * rho * rho)

    def qprime(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        return self._C * rho * rho * np.exp(-0.5 * rho * rho)

    def q_over_rho3(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        small = rho < self._series_cut
        safe = np.where(small, 1.0, rho)
        closed = self.q(safe) / safe**3
        # q/rho^3 = C * sum_k (-1)^k rho^{2k} / (2^k k! (2k+3))
        t = rho * rho
        series = self._C * (
            1.0 / 3.0
            - t / 10.0
            + t**2 / 56.0
            - t**3 / 432.0
            + t**4 / 4224.0
            - t**5 / 49920.0
            + t**6 / 691200.0
        )
        return np.where(small, series, closed)

    def w(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        small = rho < self._series_cut
        safe = np.where(small, 1.0, rho)
        closed = (safe * self.qprime(safe) - 3.0 * self.q(safe)) / safe**5
        # (rho q' - 3 q)/rho^5 = C * sum_k (-1)^k 2k rho^{2k-2}/(2^k k!(2k+3))
        t = rho * rho
        series = self._C * (
            -1.0 / 5.0
            + t / 14.0
            - t**2 / 72.0
            + t**3 / 528.0
            - t**4 / 4992.0
            + t**5 / 57600.0
        )
        return np.where(small, series, closed)


class SingularKernel(SmoothingKernel):
    """Unregularised kernel ``q = 1`` with optional Plummer softening.

    With ``softening = 0`` this is the raw Biot-Savart / Coulomb kernel;
    multipole far fields of every regularised kernel converge to it.  The
    "coarse-as-singular" limit is also what the tree code's multipole
    expansion actually computes for well-separated clusters.
    """

    name = "singular"
    order = 0
    #: f_g_from_r2 below is sqrt/divide arithmetic — namespace generic
    xp_generic = True

    def __init__(self, softening: float = 0.0) -> None:
        if softening < 0:
            raise ValueError(f"softening must be >= 0, got {softening}")
        self.softening = float(softening)

    def q(self, rho: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(rho, dtype=np.float64))

    def qprime(self, rho: np.ndarray) -> np.ndarray:
        return np.zeros_like(np.asarray(rho, dtype=np.float64))

    def q_over_rho3(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        r2 = rho * rho + self.softening**2
        return 1.0 / (r2 * np.sqrt(r2))

    def w(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        r2 = rho * rho + self.softening**2
        return -3.0 / (r2 * r2 * np.sqrt(r2))

    def f_radial(self, r: np.ndarray, sigma: float) -> np.ndarray:
        # sigma is irrelevant for the singular kernel; pass rho = r directly
        return self.q_over_rho3(np.asarray(r, dtype=np.float64))

    def g_radial(self, r: np.ndarray, sigma: float) -> np.ndarray:
        return self.w(np.asarray(r, dtype=np.float64))

    def f_g_from_r2(
        self, r2: np.ndarray, sigma: float, gradient: bool = True
    ) -> Tuple[np.ndarray, "np.ndarray | None"]:
        s = r2 + self.softening**2
        f = 1.0 / (s * np.sqrt(s))
        g = -3.0 * f / s if gradient else None
        return f, g


_REGISTRY: Dict[str, Type[SmoothingKernel]] = {
    SecondOrderAlgebraic.name: SecondOrderAlgebraic,
    FourthOrderAlgebraic.name: FourthOrderAlgebraic,
    SixthOrderAlgebraic.name: SixthOrderAlgebraic,
    GaussianKernel.name: GaussianKernel,
    SingularKernel.name: SingularKernel,
}


def available_kernels() -> Tuple[str, ...]:
    """Names accepted by :func:`get_kernel`."""
    return tuple(sorted(_REGISTRY))


def get_kernel(name: str, **kwargs) -> SmoothingKernel:
    """Instantiate a kernel by registry name.

    >>> get_kernel("algebraic6").order
    6
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {available_kernels()}"
        ) from None
    return cls(**kwargs)
