"""Vortex particle method: kernels, states, direct RHS, initial conditions.

This package implements the model problem of Sec. II of the paper — the 3D
vortex particle discretisation of the incompressible Euler equations in
vorticity-velocity form — as a reusable substrate for the space-time
parallel solver.
"""

from repro.vortex.kernels import (
    SmoothingKernel,
    SecondOrderAlgebraic,
    FourthOrderAlgebraic,
    SixthOrderAlgebraic,
    GaussianKernel,
    SingularKernel,
    get_kernel,
    available_kernels,
)
from repro.vortex.particles import (
    ParticleSystem,
    pack_state,
    unpack_state,
    state_like,
)
from repro.vortex.rhs import VelocityField, biot_savart_direct, stretching_rhs
from repro.vortex.sheet import (
    SheetConfig,
    spherical_vortex_sheet,
    sphere_points,
    SIGMA_OVER_H,
)
from repro.vortex.diagnostics import (
    FlowDiagnostics,
    compute_diagnostics,
    total_vorticity,
    linear_impulse,
    angular_impulse,
    enstrophy,
    kinetic_energy,
)
from repro.vortex.problem import (
    ODEProblem,
    FieldEvaluator,
    DirectEvaluator,
    VortexProblem,
)
from repro.vortex.remesh import RemeshResult, remesh, m4prime, lambda1

__all__ = [
    "SmoothingKernel",
    "SecondOrderAlgebraic",
    "FourthOrderAlgebraic",
    "SixthOrderAlgebraic",
    "GaussianKernel",
    "SingularKernel",
    "get_kernel",
    "available_kernels",
    "ParticleSystem",
    "pack_state",
    "unpack_state",
    "state_like",
    "VelocityField",
    "biot_savart_direct",
    "stretching_rhs",
    "SheetConfig",
    "spherical_vortex_sheet",
    "sphere_points",
    "SIGMA_OVER_H",
    "FlowDiagnostics",
    "compute_diagnostics",
    "total_vorticity",
    "linear_impulse",
    "angular_impulse",
    "enstrophy",
    "kinetic_energy",
    "ODEProblem",
    "FieldEvaluator",
    "DirectEvaluator",
    "VortexProblem",
    "RemeshResult",
    "remesh",
    "m4prime",
    "lambda1",
]
