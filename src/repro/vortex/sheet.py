"""Spherical vortex sheet initial condition (paper Sec. II, Eqs. 7-8).

``N`` particles are placed on the unit sphere and given the vorticity

    omega(theta, phi) = (3/8pi) sin(theta) e_phi,

the initial condition for potential flow past a sphere with unit free-stream
velocity along ``-z`` (Winckelmans et al. 1996).  Particle spacing, volume
and core radius follow the paper:

    h = sqrt(4 pi / N),   vol_p = h,   sigma ~= 18.53 h.

The paper does not specify the point distribution on the sphere; we default
to the Fibonacci (golden-spiral) lattice, which is deterministic and nearly
equal-area, and also provide latitude-longitude rings and uniform-random
placements for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.utils.validation import check_positive
from repro.vortex.particles import ParticleSystem

__all__ = ["SheetConfig", "spherical_vortex_sheet", "sphere_points"]

#: core-size-to-spacing ratio used throughout the paper
SIGMA_OVER_H = 18.53

Placement = Literal["fibonacci", "latlon", "random"]


@dataclass(frozen=True)
class SheetConfig:
    """Parameters of the spherical vortex sheet setup."""

    n: int = 1000
    radius: float = 1.0
    sigma_over_h: float = SIGMA_OVER_H
    placement: Placement = "fibonacci"
    seed: Optional[int] = 0

    @property
    def h(self) -> float:
        """Inter-particle spacing ``h = sqrt(4 pi / N)`` (paper Eq. 8)."""
        return float(np.sqrt(4.0 * np.pi / self.n))

    @property
    def sigma(self) -> float:
        """Smoothing core size ``sigma = sigma_over_h * h``."""
        return self.sigma_over_h * self.h


def sphere_points(
    n: int,
    placement: Placement = "fibonacci",
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Points on the unit sphere, shape (n, 3).

    ``fibonacci``: golden-spiral lattice (deterministic, near-uniform).
    ``latlon``: rings of constant latitude (matches classical vortex-sheet
    setups; ring counts scale with sin(theta) for near-equal area).
    ``random``: i.i.d. uniform on the sphere (needs ``seed``).
    """
    if n < 1:
        raise ValueError(f"need n >= 1 points, got {n}")
    if placement == "fibonacci":
        k = np.arange(n, dtype=np.float64)
        # offset 0.5 avoids placing points exactly at the poles
        z = 1.0 - 2.0 * (k + 0.5) / n
        phi = k * (np.pi * (3.0 - np.sqrt(5.0)))  # golden angle
        s = np.sqrt(np.maximum(0.0, 1.0 - z * z))
        return np.column_stack([s * np.cos(phi), s * np.sin(phi), z])
    if placement == "latlon":
        n_rings = max(2, int(round(np.sqrt(n * np.pi / 4.0))))
        thetas = (np.arange(n_rings) + 0.5) * np.pi / n_rings
        weights = np.sin(thetas)
        counts = np.maximum(
            1, np.round(weights / weights.sum() * n).astype(int)
        )
        # fix rounding drift so exactly n points come back
        while counts.sum() > n:
            counts[np.argmax(counts)] -= 1
        while counts.sum() < n:
            counts[np.argmax(weights)] += 1
        pts = []
        for theta, count in zip(thetas, counts):
            phis = 2.0 * np.pi * (np.arange(count) + 0.5) / count
            st, ct = np.sin(theta), np.cos(theta)
            pts.append(
                np.column_stack([st * np.cos(phis), st * np.sin(phis),
                                 np.full(count, ct)])
            )
        return np.concatenate(pts, axis=0)
    if placement == "random":
        rng = np.random.default_rng(seed)
        v = rng.normal(size=(n, 3))
        return v / np.linalg.norm(v, axis=1, keepdims=True)
    raise ValueError(f"unknown placement {placement!r}")


def spherical_vortex_sheet(config: SheetConfig | None = None, **kwargs) -> ParticleSystem:
    """Build the spherical vortex sheet particle system.

    Accepts either a :class:`SheetConfig` or its keyword arguments.

    >>> ps = spherical_vortex_sheet(n=100)
    >>> ps.n
    100
    """
    if config is None:
        config = SheetConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a SheetConfig or keyword arguments, not both")
    check_positive("radius", config.radius)
    check_positive("sigma_over_h", config.sigma_over_h)

    unit = sphere_points(config.n, config.placement, config.seed)
    positions = config.radius * unit

    # spherical angles of each particle
    z = np.clip(unit[:, 2], -1.0, 1.0)
    theta = np.arccos(z)  # polar angle from +z
    phi = np.arctan2(unit[:, 1], unit[:, 0])

    # omega = (3/8pi) sin(theta) e_phi, e_phi = (-sin phi, cos phi, 0)
    magnitude = 3.0 / (8.0 * np.pi) * np.sin(theta)
    e_phi = np.column_stack([-np.sin(phi), np.cos(phi), np.zeros_like(phi)])
    vorticity = magnitude[:, None] * e_phi

    # paper Eq. 8: each particle carries volume h (taken literally)
    volumes = np.full(config.n, config.h, dtype=np.float64)
    return ParticleSystem(positions, vorticity, volumes)
