"""Particle remeshing (paper outlook; Speck, Krause & Gibbon 2012 [25]).

Long vortex-particle runs distort the particle distribution until the
quadrature underlying Eq. (3) degrades.  Remeshing interpolates the
particle vorticity onto a regular grid with a moment-conserving kernel
and replaces the particles by the non-empty grid nodes.

Implemented kernels (tensor products of 1D kernels):

* ``lambda1`` — linear (CIC): conserves total vorticity (moment 0) and
  linear impulse contributions (moment 1); non-negative.
* ``m4prime`` — the M4' kernel of Monaghan (1985), the vortex-methods
  standard: conserves moments 0..2, third-order accurate, support 4h.

Remeshing is *conservative by construction*: the tests verify that total
vorticity is preserved to round-off and that the induced far velocity
field changes only at the interpolation error level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.vortex.particles import ParticleSystem

__all__ = ["RemeshResult", "remesh", "m4prime", "lambda1"]

Kernel1D = Literal["lambda1", "m4prime"]


def lambda1(x: np.ndarray) -> np.ndarray:
    """Linear (cloud-in-cell) kernel, support [-1, 1]."""
    ax = np.abs(x)
    return np.where(ax < 1.0, 1.0 - ax, 0.0)


def m4prime(x: np.ndarray) -> np.ndarray:
    """Monaghan's M4' kernel, support [-2, 2], conserves moments 0..2."""
    ax = np.abs(x)
    inner = 1.0 - 2.5 * ax**2 + 1.5 * ax**3
    outer = 0.5 * (2.0 - ax) ** 2 * (1.0 - ax)
    return np.where(ax < 1.0, inner, np.where(ax < 2.0, outer, 0.0))


_KERNELS = {
    "lambda1": (lambda1, 1),  # (function, reach in cells)
    "m4prime": (m4prime, 2),
}


@dataclass
class RemeshResult:
    """Outcome of a remeshing pass."""

    particles: ParticleSystem
    #: fraction of grid nodes that received vorticity
    fill_fraction: float
    #: number of particles before / after
    n_before: int
    n_after: int


def remesh(
    ps: ParticleSystem,
    spacing: float,
    kernel: Kernel1D = "m4prime",
    prune_below: float = 1e-12,
) -> RemeshResult:
    """Interpolate particles onto a regular grid and rebuild the set.

    Parameters
    ----------
    ps :
        Current particle system; ``charges = omega * vol`` are deposited.
    spacing :
        Grid spacing ``h`` of the new particle lattice; new particles
        carry volume ``h^3``.
    kernel :
        1D interpolation kernel (tensor-product in 3D).
    prune_below :
        Grid nodes whose deposited charge magnitude falls below this
        fraction of the maximum are dropped.

    Notes
    -----
    Deposits the *charge* (vorticity times volume) so that the total
    vector charge is conserved exactly (the kernels satisfy a partition
    of unity); the new vorticity is charge / h^3.
    """
    check_positive("spacing", spacing)
    fn, reach = _KERNELS[kernel]
    pos = ps.positions
    charge = ps.charges  # (N, 3)

    lo = pos.min(axis=0) - (reach + 0.5) * spacing
    base = np.floor(pos / spacing).astype(np.int64)
    offsets = np.arange(-reach + 1, reach + 1)  # cells within support

    # accumulate into a dict-of-cells via flat indices on a virtual grid
    grid_lo = np.floor(lo / spacing).astype(np.int64)
    extent = (
        np.ceil((pos.max(axis=0)) / spacing).astype(np.int64)
        - grid_lo + reach + 2
    )
    nx, ny, nz = (int(e) for e in extent)
    accum = {}

    # weights per axis for all particles and offsets: (N, K)
    k = offsets.size
    wx = np.empty((pos.shape[0], k))
    wy = np.empty_like(wx)
    wz = np.empty_like(wx)
    for j, off in enumerate(offsets):
        cell = base + off
        for axis, w in ((0, wx), (1, wy), (2, wz)):
            dist = pos[:, axis] / spacing - cell[:, axis]
            w[:, j] = fn(dist)

    # outer product of weights over the K^3 stencil, vectorised per offset
    flat_charges = np.zeros((nx * ny * nz, 3))
    ix = base[:, 0] - grid_lo[0]
    iy = base[:, 1] - grid_lo[1]
    iz = base[:, 2] - grid_lo[2]
    for jx, ox in enumerate(offsets):
        for jy, oy in enumerate(offsets):
            wxy = wx[:, jx] * wy[:, jy]
            if not np.any(wxy):
                continue
            for jz, oz in enumerate(offsets):
                w = wxy * wz[:, jz]
                idx = ((ix + ox) * ny + (iy + oy)) * nz + (iz + oz)
                np.add.at(flat_charges, idx, w[:, None] * charge)

    mag = np.linalg.norm(flat_charges, axis=1)
    cut = prune_below * (mag.max() if mag.size else 0.0)
    keep = np.nonzero(mag > cut)[0]
    kz = keep % nz
    ky = (keep // nz) % ny
    kx = keep // (nz * ny)
    new_pos = np.column_stack([
        (kx + grid_lo[0]) * spacing,
        (ky + grid_lo[1]) * spacing,
        (kz + grid_lo[2]) * spacing,
    ]).astype(np.float64)
    vol = spacing**3
    new_vort = flat_charges[keep] / vol
    new_ps = ParticleSystem(
        new_pos, new_vort, np.full(keep.size, vol)
    )
    return RemeshResult(
        particles=new_ps,
        fill_fraction=float(keep.size / max(1, nx * ny * nz)),
        n_before=ps.n,
        n_after=int(keep.size),
    )
