"""Spectral integration matrices for SDC (paper Eqs. 10-12).

Given collocation nodes ``tau_0 < ... < tau_M`` on [0, 1], this module
builds the matrices (all square ``(M+1) x (M+1)`` acting on node values of
``f``):

* ``Q``    — row ``m`` integrates the interpolating polynomial from
  0 (the step start ``t_n``) to ``tau_m``; the paper's rectangular ``Q``
  is rows 1..M.  Row 0 is zero whenever the family includes the left
  endpoint (``tau_0 = 0``).
* ``S``    — row ``m >= 1`` integrates from ``tau_{m-1}`` to ``tau_m``
  (node-to-node, used by the sweep Eq. 13); row 0 integrates from 0 to
  ``tau_0``, so ``cumsum(S) == Q`` always.
* ``q_end`` — weights integrating from 0 to 1 (the full step), needed
  when the right endpoint is not a node.

All weights are exact for polynomials through degree ``M``: Lagrange basis
polynomials are integrated with a Gauss-Legendre rule of sufficient order,
evaluated stably via barycentric interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.sdc.nodes import NodeSet, collocation_nodes

__all__ = [
    "barycentric_weights",
    "lagrange_interpolation_matrix",
    "lagrange_integration_weights",
    "QuadratureRule",
    "make_rule",
    "diagonal_coefficients",
    "DIAGONAL_COEFFICIENT_CHOICES",
]


def barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    """Barycentric weights ``w_j = 1 / prod_{k != j} (x_j - x_k)``."""
    nodes = np.asarray(nodes, dtype=np.float64)
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    return 1.0 / diff.prod(axis=1)


def lagrange_interpolation_matrix(
    src_nodes: np.ndarray, dst_points: np.ndarray
) -> np.ndarray:
    """Matrix ``P`` with ``P[i, j] = L_j(dst_i)`` (Lagrange basis on src).

    Evaluation uses the barycentric formula; destination points that
    coincide with a source node reproduce the unit vector exactly.
    """
    src = np.asarray(src_nodes, dtype=np.float64)
    dst = np.asarray(dst_points, dtype=np.float64)
    w = barycentric_weights(src)
    out = np.zeros((dst.size, src.size))
    for i, x in enumerate(dst):
        d = x - src
        hit = np.nonzero(np.abs(d) < 1e-14)[0]
        if hit.size:
            out[i, hit[0]] = 1.0
            continue
        terms = w / d
        out[i] = terms / terms.sum()
    return out


def lagrange_integration_weights(
    nodes: np.ndarray, intervals: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """``W[i, j] = integral over intervals[i] of L_j`` (exact).

    Each interval integral uses Gauss-Legendre with ``ceil((M+1)/2)``
    points, exact for the degree-M Lagrange basis.
    """
    nodes = np.asarray(nodes, dtype=np.float64)
    m = nodes.size
    n_gauss = (m + 2) // 2
    gl_x, gl_w = np.polynomial.legendre.leggauss(n_gauss)
    out = np.zeros((len(intervals), m))
    for i, (a, b) in enumerate(intervals):
        if b < a:
            raise ValueError(f"interval {i} has b < a: ({a}, {b})")
        half = 0.5 * (b - a)
        mid = 0.5 * (a + b)
        pts = mid + half * gl_x
        basis = lagrange_interpolation_matrix(nodes, pts)  # (G, M)
        out[i] = half * (gl_w @ basis)
    return out


@dataclass(frozen=True)
class QuadratureRule:
    """Node set plus its integration matrices on the unit interval."""

    node_set: NodeSet
    Q: np.ndarray
    S: np.ndarray
    q_end: np.ndarray

    @property
    def nodes(self) -> np.ndarray:
        return self.node_set.nodes

    @property
    def num_nodes(self) -> int:
        return self.node_set.num_nodes

    @property
    def delta(self) -> np.ndarray:
        """Node spacings ``delta[m] = tau_{m+1} - tau_m`` (length M)."""
        return np.diff(self.nodes)

    def integrate_node_to_node(self, f_nodes: np.ndarray) -> np.ndarray:
        """Apply S: ``out[m] = int_{tau_{m-1}}^{tau_m}``.

        ``f_nodes`` may have arbitrary trailing shape: (M+1, ...).
        """
        return np.tensordot(self.S, f_nodes, axes=(1, 0))

    def integrate_from_start(self, f_nodes: np.ndarray) -> np.ndarray:
        """Apply Q: ``out[m] = int_0^{tau_m}``."""
        return np.tensordot(self.Q, f_nodes, axes=(1, 0))

    def integrate_full(self, f_nodes: np.ndarray) -> np.ndarray:
        """Integral from 0 to 1 (the full-step update weight)."""
        return np.tensordot(self.q_end, f_nodes, axes=(0, 0))


#: named diagonal-preconditioner coefficient choices for PFASST-ER
#: Jacobi-style sweeps (``Q_delta = diag(d)``)
DIAGONAL_COEFFICIENT_CHOICES = ("ie", "min", "picard")


def diagonal_coefficients(rule: QuadratureRule, kind: str = "min") -> np.ndarray:
    """Diagonal preconditioner coefficients ``d`` with ``Q_delta = diag(d)``.

    The Jacobi-style (node-parallel) SDC iteration solves

        u_m - dt d_m f(t_m, u_m) = u0 + dt ((Q - Q_delta) F^k)_m + Tau_m

    independently per node.  Supported choices:

    * ``"ie"`` — implicit-Euler diagonal ``d_m = tau_m`` (the ``IEpar``
      preconditioner of the parallel-SDC literature: the diagonal of the
      implicit-Euler ``Q_delta``).
    * ``"min"`` — optimized non-stiff diagonal ``d_m = tau_m / M`` with
      ``M`` the node count (the MIN-SR-NS choice): it renders
      ``Q - Q_delta`` nilpotent, so the non-stiff iteration matrix
      ``dt L (Q - Q_delta)`` has spectral radius ~0 and the sweep
      converges like the Gauss-Seidel substitution despite being fully
      node-parallel.  This is the default.
    * ``"picard"`` — ``d = 0``: the plain Picard/spectral iteration,
      the zero-cost reference point (one evaluation per node per sweep).

    An array of length ``num_nodes`` may be passed instead of a name.
    """
    if isinstance(kind, str):
        if kind == "ie":
            return rule.nodes.copy()
        if kind == "min":
            return rule.nodes / float(rule.num_nodes)
        if kind == "picard":
            return np.zeros(rule.num_nodes, dtype=np.float64)
        raise ValueError(
            f"unknown diagonal coefficient choice {kind!r}: expected one "
            f"of {DIAGONAL_COEFFICIENT_CHOICES} or an array of length "
            f"{rule.num_nodes}"
        )
    d = np.asarray(kind, dtype=np.float64)
    if d.shape != (rule.num_nodes,):
        raise ValueError(
            f"diagonal coefficient array has shape {d.shape}, "
            f"expected ({rule.num_nodes},)"
        )
    return d.copy()


def make_rule(num_nodes: int, node_type: str = "lobatto") -> QuadratureRule:
    """Construct the :class:`QuadratureRule` for a node family.

    >>> rule = make_rule(3)
    >>> rule.Q[2] @ np.ones(3)  # integral of 1 over [0, 1]
    1.0
    """
    node_set = collocation_nodes(num_nodes, node_type)
    tau = node_set.nodes
    m = node_set.num_nodes
    Q = lagrange_integration_weights(tau, [(0.0, tau[k]) for k in range(m)])
    s_intervals = [(0.0, tau[0])] + [(tau[k - 1], tau[k]) for k in range(1, m)]
    S = lagrange_integration_weights(tau, s_intervals)
    q_end = lagrange_integration_weights(tau, [(0.0, 1.0)])[0]
    return QuadratureRule(node_set=node_set, Q=Q, S=S, q_end=q_end)
