"""Time-serial SDC integration (the paper's ``SDC(K)`` baseline).

``SDC(K)`` performs ``K`` correction sweeps per time step on top of a
spread provisional solution; with a first-order corrector the result is
formally ``O(dt^K)`` accurate (bounded by the quadrature order).  This is
the serial reference against which PFASST speedup is measured (Eq. 21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.sdc.quadrature import QuadratureRule, make_rule
from repro.sdc.sweeper import ExplicitSDCSweeper, InitStrategy
from repro.utils.validation import check_positive
from repro.vortex.problem import ODEProblem

__all__ = ["SDCStepper", "SDCRunStats"]


@dataclass
class SDCRunStats:
    """Aggregate statistics of an SDC integration run."""

    steps: int = 0
    sweeps: int = 0
    residuals: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


class SDCStepper:
    """Serial SDC time stepper.

    Parameters
    ----------
    problem :
        The initial value problem.
    num_nodes :
        Number of collocation nodes per step (paper: 3 Gauss-Lobatto).
    sweeps :
        Correction sweeps per step (``K`` in ``SDC(K)``).
    node_type :
        Collocation family (default ``"lobatto"``).
    residual_tol :
        Optional early exit: stop sweeping once the collocation residual
        falls below this tolerance.
    sweeper :
        ``"gauss-seidel"`` (the node-to-node substitution chain, default)
        or ``"diagonal"`` (the PFASST-ER Jacobi-style
        :class:`~repro.sdc.diagonal.DiagonalSDCSweeper`, whose node
        updates are mutually independent).
    diagonal_coefficients :
        Coefficient choice for the diagonal sweeper (see
        :func:`repro.sdc.quadrature.diagonal_coefficients`).
    """

    def __init__(
        self,
        problem: ODEProblem,
        num_nodes: int = 3,
        sweeps: int = 4,
        node_type: str = "lobatto",
        residual_tol: Optional[float] = None,
        init_strategy: InitStrategy = "spread",
        sweeper: str = "gauss-seidel",
        diagonal_coefficients: str = "min",
    ) -> None:
        if sweeps < 1:
            raise ValueError(f"need at least 1 sweep, got {sweeps}")
        self.problem = problem
        self.rule: QuadratureRule = make_rule(num_nodes, node_type)
        if sweeper == "gauss-seidel":
            self.sweeper = ExplicitSDCSweeper(problem, self.rule)
        elif sweeper == "diagonal":
            from repro.sdc.diagonal import DiagonalSDCSweeper

            self.sweeper = DiagonalSDCSweeper(
                problem, self.rule, coefficients=diagonal_coefficients
            )
        else:
            raise ValueError(
                f"unknown sweeper {sweeper!r}: "
                "expected 'gauss-seidel' or 'diagonal'"
            )
        self.sweeps = int(sweeps)
        self.residual_tol = residual_tol
        self.init_strategy: InitStrategy = init_strategy
        self.stats = SDCRunStats()

    def step(self, t0: float, dt: float, u0: np.ndarray) -> np.ndarray:
        """Advance one time step ``[t0, t0 + dt]``."""
        U, F = self.sweeper.initialize(t0, dt, u0, self.init_strategy)
        residual = float("inf")
        pass_u0 = u0 if self.sweeper.needs_u0 else None
        for _ in range(self.sweeps):
            U, F = self.sweeper.sweep(t0, dt, U, F, u0=pass_u0)
            self.stats.sweeps += 1
            if self.residual_tol is not None:
                residual = self.sweeper.residual(dt, U, F, u0)
                if residual <= self.residual_tol:
                    break
        if self.residual_tol is None:
            residual = self.sweeper.residual(dt, U, F, u0)
        self.stats.steps += 1
        self.stats.residuals.append(residual)
        return self.sweeper.end_value(dt, U, F, u0)

    def run(
        self,
        u0: np.ndarray,
        t0: float,
        t_end: float,
        dt: float,
        callback: Optional[Callable[[float, np.ndarray], None]] = None,
    ) -> np.ndarray:
        """Integrate over ``[t0, t_end]`` with uniform steps of size ``dt``."""
        check_positive("dt", dt)
        span = t_end - t0
        n_steps = int(round(span / dt))
        if n_steps < 0 or abs(n_steps * dt - span) > 1e-9 * max(1.0, abs(span)):
            raise ValueError(
                f"interval length {span} is not an integer multiple of dt={dt}"
            )
        u = np.asarray(u0, dtype=np.float64).copy()
        if callback is not None:
            callback(t0, u)
        for k in range(n_steps):
            t = t0 + k * dt
            u = self.step(t, dt, u)
            if callback is not None:
                callback(t + dt, u)
        return u
