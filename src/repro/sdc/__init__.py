"""Spectral deferred corrections: nodes, quadrature, sweeps, serial stepper."""

from repro.sdc.nodes import NodeSet, collocation_nodes, available_node_types
from repro.sdc.quadrature import (
    QuadratureRule,
    make_rule,
    barycentric_weights,
    lagrange_interpolation_matrix,
    lagrange_integration_weights,
    diagonal_coefficients,
    DIAGONAL_COEFFICIENT_CHOICES,
)
from repro.sdc.sweeper import ExplicitSDCSweeper, evaluate_node_values, node_slice
from repro.sdc.diagonal import DiagonalSDCSweeper
from repro.sdc.sdc_stepper import SDCStepper, SDCRunStats
from repro.sdc.imex import (
    SplitODEProblem,
    SplitDahlquist,
    IMEXSDCSweeper,
    IMEXSDCStepper,
)

__all__ = [
    "NodeSet",
    "collocation_nodes",
    "available_node_types",
    "QuadratureRule",
    "make_rule",
    "barycentric_weights",
    "lagrange_interpolation_matrix",
    "lagrange_integration_weights",
    "ExplicitSDCSweeper",
    "DiagonalSDCSweeper",
    "evaluate_node_values",
    "node_slice",
    "diagonal_coefficients",
    "DIAGONAL_COEFFICIENT_CHOICES",
    "SDCStepper",
    "SDCRunStats",
    "SplitODEProblem",
    "SplitDahlquist",
    "IMEXSDCSweeper",
    "IMEXSDCStepper",
]
