"""Spectral deferred corrections: nodes, quadrature, sweeps, serial stepper."""

from repro.sdc.nodes import NodeSet, collocation_nodes, available_node_types
from repro.sdc.quadrature import (
    QuadratureRule,
    make_rule,
    barycentric_weights,
    lagrange_interpolation_matrix,
    lagrange_integration_weights,
)
from repro.sdc.sweeper import ExplicitSDCSweeper
from repro.sdc.sdc_stepper import SDCStepper, SDCRunStats
from repro.sdc.imex import (
    SplitODEProblem,
    SplitDahlquist,
    IMEXSDCSweeper,
    IMEXSDCStepper,
)

__all__ = [
    "NodeSet",
    "collocation_nodes",
    "available_node_types",
    "QuadratureRule",
    "make_rule",
    "barycentric_weights",
    "lagrange_interpolation_matrix",
    "lagrange_integration_weights",
    "ExplicitSDCSweeper",
    "SDCStepper",
    "SDCRunStats",
    "SplitODEProblem",
    "SplitDahlquist",
    "IMEXSDCSweeper",
    "IMEXSDCStepper",
]
