"""Explicit SDC sweeps (paper Eq. 13) with optional FAS corrections.

State layout: node-value arrays ``U`` and ``F`` have shape
``(M+1, *state_shape)`` where ``M+1`` is the number of collocation nodes.
FAS corrections ``tau`` use the *node-to-node* convention matching the
``S`` matrix: ``tau[m]`` corrects the integral over ``[tau_{m-1}, tau_m]``
and ``tau[0]`` corrects ``[0, tau_0]`` (zero whenever the family includes
the left endpoint); cumulative form is ``tau.cumsum(axis=0)``.

One sweep applies the first-order (forward-Euler type) corrector

    U^{k+1}_{m+1} = U^{k+1}_m
                    + dt_m [ f(t_m, U^{k+1}_m) - f(t_m, U^k_m) ]
                    + dt (S F^k)_{m+1} + tau_{m+1}

and each sweep raises the formal order by one, up to the order of the
underlying quadrature.

Node families whose first node sits *inside* the step (``radau-right``,
``legendre``: ``tau_0 > 0``) are supported too: node 0 is then a genuine
collocation unknown, updated from the step initial value ``u0`` with row
0 of ``S`` (which integrates the interpolant over ``[0, tau_0]``), and
the residual monitor includes it.  Such sweeps need ``u0`` on *every*
call — there is no left-endpoint node to carry it implicitly.
"""

from __future__ import annotations

from typing import Literal, Optional, Tuple

import numpy as np

from repro.analysis.sanitize import boundary
from repro.parallel import tags
from repro.parallel.collectives import allgather
from repro.parallel.executor import Compute, ComputeTask
from repro.sdc.quadrature import QuadratureRule
from repro.utils.timing import TimingRegistry
from repro.vortex.problem import ODEProblem

__all__ = [
    "ExplicitSDCSweeper",
    "evaluate_rhs",
    "evaluate_node_values",
    "node_slice",
]

InitStrategy = Literal["spread", "euler"]


def evaluate_rhs(problem: ODEProblem, space, t: float, u: np.ndarray,
                 dispatch=None):
    """RHS evaluation generator, space-parallel when ``space`` is live.

    With a space communicator of size > 1 and a problem exposing
    ``rhs_program`` the evaluation is driven collectively via
    ``yield from``; otherwise it is a plain ``problem.rhs`` call with
    *zero* yields, so serial op streams are byte-identical to the direct
    call.  All sweeper/controller RHS sites route through here.

    ``dispatch`` (a :class:`repro.parallel.executor.DispatchContext`)
    turns the evaluation into the scheduler's dispatch unit: when the
    problem is registered with the execution backend, the call is yielded
    as a :class:`~repro.parallel.executor.Compute` operation — on a
    process backend, independent RHS evaluations across time ranks then
    run concurrently on real cores.  Without a dispatch context (or for
    unregistered problems) behaviour is unchanged.
    """
    program = getattr(problem, "rhs_program", None)
    if space is not None and space.size > 1 and program is not None:
        result = yield from program(space, t, u, dispatch=dispatch)
        return result
    if dispatch is not None:
        key = dispatch.key_of(problem)
        if key is not None:
            result = yield Compute(
                ComputeTask(key, "rhs", args=(t,), arrays=(u,))
            )
            return result
    return problem.rhs(t, u)


def node_slice(n_nodes: int, parts: int, index: int) -> Tuple[int, int]:
    """Contiguous balanced slice ``[lo, hi)`` of ``n_nodes`` for one rank.

    Remainder nodes go to the lowest ranks; ranks beyond ``n_nodes`` get
    an empty slice (a node comm may be wider than a coarse level's node
    count).
    """
    base, extra = divmod(n_nodes, parts)
    lo = index * base + min(index, extra)
    return lo, lo + base + (1 if index < extra else 0)


def evaluate_node_values(problem: ODEProblem, times, values,
                         space=None, node=None, dispatch=None):
    """Evaluate the RHS at a set of collocation nodes, sharded over ``node``.

    The PFASST-ER node comm (``node``, one rank per slice of the node
    axis): each node rank evaluates only its own contiguous slice of the
    ``(t, u)`` pairs — space-parallel and/or dispatched per
    :func:`evaluate_rhs` — and the full ``F`` block is reassembled with a
    ring allgather over the node comm.  Every node rank returns the same
    array *bitwise*: each entry is computed on exactly one rank and
    shared, which is what keeps ``p_nodes > 1`` runs bit-comparable to
    ``p_nodes = 1``.

    With ``node`` absent (or of size 1) the loop runs inline with zero
    extra yields, so existing op streams are unchanged.
    """
    m1 = len(times)
    if node is None or node.size <= 1:
        out = []
        for m in range(m1):
            out.append((yield from evaluate_rhs(
                problem, space, times[m], values[m], dispatch=dispatch
            )))
        return np.stack(out, axis=0)
    lo, hi = node_slice(m1, node.size, node.rank)
    mine = []
    for m in range(lo, hi):
        mine.append((yield from evaluate_rhs(
            problem, space, times[m], values[m], dispatch=dispatch
        )))
    yield node.annotate("begin:node:rhs-allgather")
    nbytes = int(sum(np.asarray(f).nbytes for f in mine))
    node.metrics.counter("node.rhs_bytes").inc(nbytes)
    node.metrics.counter("node.rhs_bytes", rank=node.world_rank).inc(nbytes)
    parts = yield from allgather(node, mine, tag=tags.NODE_F)
    yield node.annotate("end:node:rhs-allgather")
    flat = [f for part in parts for f in part]
    return np.stack(flat, axis=0)


def _drain(gen):
    """Run a generator expected to perform zero yields; return its value."""
    try:
        op = next(gen)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError(
        f"synchronous sweep drove a communicating generator (yielded "
        f"{op!r}); space-parallel evaluation requires the generator API"
    )


class ExplicitSDCSweeper:
    """Sweeps the explicit SDC corrector over one time step.

    The sweeper is stateless with respect to the solution: callers own the
    node arrays and thread them through :meth:`initialize` / :meth:`sweep`;
    this makes the PFASST controller's bookkeeping explicit and testable.
    Wall-clock per phase (``initialize`` / ``sweep`` / ``residual``)
    accumulates in :attr:`timings` for the benchmark breakdowns.
    """

    def __init__(self, problem: ODEProblem, rule: QuadratureRule) -> None:
        self.problem = problem
        self.rule = rule
        self.timings = TimingRegistry()

    @property
    def num_nodes(self) -> int:
        return self.rule.num_nodes

    @property
    def needs_u0(self) -> bool:
        """True when every sweep must be handed the step initial value.

        Families without the left endpoint (``radau-right``,
        ``legendre``) have no node carrying ``u0`` implicitly, so node
        0's SDC update needs it explicitly on each call.
        """
        return not self.rule.node_set.includes_left

    def node_times(self, t0: float, dt: float) -> np.ndarray:
        """Physical times of the collocation nodes for step ``[t0, t0+dt]``."""
        return t0 + dt * self.rule.nodes

    # ------------------------------------------------------------------
    def initialize_gen(
        self,
        t0: float,
        dt: float,
        u0: np.ndarray,
        strategy: InitStrategy = "spread",
        space=None,
        dispatch=None,
        node=None,
    ):
        """Generator form of :meth:`initialize` (RHS via :func:`evaluate_rhs`).

        ``node`` (a PFASST-ER node comm) is accepted for call-site
        uniformity; initialization is node-sequential (``spread`` makes
        one evaluation, ``euler`` marches), so it is unused here.

        Drive with ``yield from`` inside a rank program to shard the RHS
        work over ``space`` and/or dispatch it to an execution backend
        via ``dispatch``; without either it performs zero yields and
        computes exactly what :meth:`initialize` does.
        """
        with self.timings.phase("initialize"):
            m1 = self.num_nodes
            times = self.node_times(t0, dt)
            U = np.empty((m1,) + u0.shape, dtype=np.float64)
            F = np.empty_like(U)
            U[0] = u0
            F[0] = yield from evaluate_rhs(
                self.problem, space, times[0], u0, dispatch=dispatch
            )
            if strategy == "spread":
                for m in range(1, m1):
                    U[m] = u0
                    F[m] = F[0]
            elif strategy == "euler":
                delta = dt * self.rule.delta
                for m in range(1, m1):
                    U[m] = U[m - 1] + delta[m - 1] * F[m - 1]
                    F[m] = yield from evaluate_rhs(
                        self.problem, space, times[m], U[m],
                        dispatch=dispatch,
                    )
            else:
                raise ValueError(f"unknown init strategy {strategy!r}")
            return U, F

    def initialize(
        self,
        t0: float,
        dt: float,
        u0: np.ndarray,
        strategy: InitStrategy = "spread",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Provisional node values ``U^0`` and their evaluations ``F^0``.

        ``spread`` copies ``u0`` to every node (one RHS evaluation);
        ``euler`` marches forward Euler through the nodes (M+1 evaluations).
        """
        return _drain(self.initialize_gen(t0, dt, u0, strategy))

    # ------------------------------------------------------------------
    def sweep_gen(
        self,
        t0: float,
        dt: float,
        U: np.ndarray,
        F: np.ndarray,
        u0: Optional[np.ndarray] = None,
        tau: Optional[np.ndarray] = None,
        space=None,
        dispatch=None,
        node=None,
    ):
        """Generator form of :meth:`sweep` (RHS via :func:`evaluate_rhs`).

        ``node`` is accepted for call-site uniformity with
        :class:`~repro.sdc.diagonal.DiagonalSDCSweeper`; the
        Gauss-Seidel substitution chain is inherently node-sequential,
        so it is unused here (node ranks compute redundantly and stay
        bitwise identical).
        """
        with self.timings.phase("sweep"):
            m1 = self.num_nodes
            times = self.node_times(t0, dt)
            delta = dt * self.rule.delta
            integral = dt * self.rule.integrate_node_to_node(F)
            if tau is not None:
                integral = integral + tau

            U_new = np.empty_like(U)
            F_new = np.empty_like(F)
            if u0 is None:
                if not self.rule.node_set.includes_left:
                    raise ValueError(
                        f"{self.rule.node_set.node_type!r} nodes do not "
                        "include the left endpoint, so node 0 is a genuine "
                        "collocation unknown: every sweep needs the step "
                        "initial value u0"
                    )
                U_new[0] = U[0]
                F_new[0] = F[0]
            elif self.rule.node_set.includes_left:
                U_new[0] = u0
                F_new[0] = yield from evaluate_rhs(
                    self.problem, space, times[0], u0, dispatch=dispatch
                )
            else:
                # node 0 sits at tau_0 > 0: its SDC update starts from u0
                # with row 0 of S, which integrates the interpolant (plus
                # any FAS correction) over [0, tau_0]
                U_new[0] = u0 + integral[0]
                F_new[0] = yield from evaluate_rhs(
                    self.problem, space, times[0], U_new[0], dispatch=dispatch
                )
            for m in range(m1 - 1):
                U_new[m + 1] = (
                    U_new[m]
                    + delta[m] * (F_new[m] - F[m])
                    + integral[m + 1]
                )
                F_new[m + 1] = yield from evaluate_rhs(
                    self.problem, space, times[m + 1], U_new[m + 1],
                    dispatch=dispatch,
                )
            return U_new, F_new

    @boundary("sweep", arrays=["U", "F", "u0", "tau"])
    def sweep(
        self,
        t0: float,
        dt: float,
        U: np.ndarray,
        F: np.ndarray,
        u0: Optional[np.ndarray] = None,
        tau: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One correction sweep; returns new ``(U, F)`` (inputs untouched).

        ``u0`` overrides the step initial value (PFASST passes the
        freshly received left-boundary value here).  For left-including
        families it lands directly on node 0; when omitted, ``U[0]`` is
        kept and its evaluation ``F[0]`` is reused.  For families whose
        node 0 sits inside the step (``needs_u0``), ``u0`` is mandatory
        and node 0 gets a genuine SDC update from it.
        """
        return _drain(self.sweep_gen(t0, dt, U, F, u0=u0, tau=tau))

    # ------------------------------------------------------------------
    def residual(
        self,
        dt: float,
        U: np.ndarray,
        F: np.ndarray,
        u0: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> float:
        """Max-norm collocation residual ``|u0 + dt (QF)_m + Tau_m - U_m|``.

        This is the discrete analogue of the Picard equation (paper Eq. 12)
        and the convergence monitor the paper reports in Sec. IV-B.
        """
        with self.timings.phase("residual"):
            rhs = dt * self.rule.integrate_from_start(F)
            if tau is not None:
                rhs = rhs + np.cumsum(tau, axis=0)
            res = 0.0
            # node 0 is exact by construction only when it *is* the left
            # endpoint (tau_0 = 0); for radau-right/legendre it is a
            # genuine collocation node whose residual must be monitored
            start = 1 if self.rule.node_set.includes_left else 0
            for m in range(start, self.num_nodes):
                res = max(res, self.problem.norm(u0 + rhs[m] - U[m]))
            return res

    def end_value(
        self, dt: float, U: np.ndarray, F: np.ndarray, u0: np.ndarray
    ) -> np.ndarray:
        """Solution at the right end of the step.

        For node sets containing the right endpoint this is ``U[-1]``;
        otherwise the full-interval quadrature closes the step.
        """
        if self.rule.node_set.includes_right:
            return U[-1]
        return u0 + dt * self.rule.integrate_full(F)
