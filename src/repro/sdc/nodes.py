"""Collocation node families for spectral deferred corrections.

Nodes are returned on the unit interval ``[0, 1]``; a time step
``[t_n, t_n + dt]`` uses ``t_n + dt * tau``.  The paper uses Gauss-Lobatto
nodes (3 fine / 2 coarse); Radau and Legendre families are provided for the
node-choice ablation (Layton & Minion 2005 discuss the trade-offs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["NodeSet", "collocation_nodes", "available_node_types"]


def _legendre_poly(n: int) -> np.polynomial.Legendre:
    coeffs = np.zeros(n + 1)
    coeffs[n] = 1.0
    return np.polynomial.Legendre(coeffs)


def _lobatto_nodes(n: int) -> np.ndarray:
    """n Gauss-Lobatto points on [-1, 1] (includes both endpoints)."""
    if n < 2:
        raise ValueError(f"Gauss-Lobatto needs >= 2 nodes, got {n}")
    if n == 2:
        return np.array([-1.0, 1.0])
    interior = _legendre_poly(n - 1).deriv().roots()
    return np.concatenate(([-1.0], np.sort(np.real(interior)), [1.0]))


def _radau_right_nodes(n: int) -> np.ndarray:
    """n right-Radau points on [-1, 1] (includes +1, excludes -1)."""
    if n < 1:
        raise ValueError(f"Radau needs >= 1 node, got {n}")
    # roots of P_{n-1} - P_n; x = +1 is always one of them
    p = _legendre_poly(n - 1) - _legendre_poly(n)
    roots = np.sort(np.real(p.roots()))
    roots[-1] = 1.0  # pin the analytically known endpoint
    return roots


def _legendre_nodes(n: int) -> np.ndarray:
    """n Gauss-Legendre points on [-1, 1] (excludes both endpoints)."""
    if n < 1:
        raise ValueError(f"Gauss-Legendre needs >= 1 node, got {n}")
    return np.polynomial.legendre.leggauss(n)[0]


def _equidistant_nodes(n: int) -> np.ndarray:
    if n < 2:
        raise ValueError(f"equidistant needs >= 2 nodes, got {n}")
    return np.linspace(-1.0, 1.0, n)


_FAMILIES = {
    "lobatto": (_lobatto_nodes, True, True),
    "radau-right": (_radau_right_nodes, False, True),
    "legendre": (_legendre_nodes, False, False),
    "equidistant": (_equidistant_nodes, True, True),
}


def available_node_types() -> Tuple[str, ...]:
    return tuple(sorted(_FAMILIES))


@dataclass(frozen=True)
class NodeSet:
    """Collocation nodes on [0, 1] plus endpoint metadata.

    Attributes
    ----------
    nodes : (M+1,) increasing array in [0, 1]
    node_type : family name
    includes_left / includes_right : whether 0.0 / 1.0 are nodes
    order : formal order of the underlying quadrature rule
    """

    nodes: np.ndarray
    node_type: str
    includes_left: bool
    includes_right: bool
    order: int

    @property
    def num_nodes(self) -> int:
        return self.nodes.shape[0]

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes, dtype=np.float64)
        if nodes.ndim != 1 or nodes.size < 1:
            raise ValueError("nodes must be a non-empty 1-D array")
        if np.any(np.diff(nodes) <= 0):
            raise ValueError("nodes must be strictly increasing")
        if nodes[0] < -1e-14 or nodes[-1] > 1 + 1e-14:
            raise ValueError("nodes must lie in [0, 1]")
        object.__setattr__(self, "nodes", nodes)


def collocation_nodes(num_nodes: int, node_type: str = "lobatto") -> NodeSet:
    """Build a :class:`NodeSet` with ``num_nodes`` points of the family.

    >>> collocation_nodes(3).nodes
    array([0. , 0.5, 1. ])
    """
    try:
        fn, has_left, has_right = _FAMILIES[node_type]
    except KeyError:
        raise ValueError(
            f"unknown node type {node_type!r}; available: {available_node_types()}"
        ) from None
    raw = fn(num_nodes)
    nodes = 0.5 * (raw + 1.0)
    if has_left:
        nodes[0] = 0.0
    if has_right:
        nodes[-1] = 1.0
    # quadrature order of exactness: Lobatto 2M-3(+1?), Radau 2M-1, GL 2M
    order = {
        "lobatto": 2 * num_nodes - 2,
        "radau-right": 2 * num_nodes - 1,
        "legendre": 2 * num_nodes,
        "equidistant": num_nodes,
    }[node_type]
    return NodeSet(
        nodes=nodes,
        node_type=node_type,
        includes_left=has_left,
        includes_right=has_right,
        order=order,
    )
