"""Semi-implicit (IMEX) spectral deferred corrections.

The paper (Sec. III-B-1) notes that besides the fully explicit corrector
used for the N-body problem, "implicit-explicit (IMEX) schemes can be
built in a similar fashion using forward/backward Euler" (Dutt, Greengard
& Rokhlin 2000; Minion 2003).  This module provides that construction for
problems split as

    du/dt = f_E(t, u) + f_I(t, u)

with ``f_E`` treated by forward Euler and ``f_I`` by backward Euler inside
the sweep:

    U_{m+1} = U_m + dt_m [ f_E(t_m, U_{m+1 side}) - f_E(t_m, U^k_m) ]
                  + dt_m [ f_I(t_{m+1}, U_{m+1}) - f_I(t_{m+1}, U^k_{m+1}) ]
                  + (S F^k)_{m+1} + tau_{m+1}

requiring one implicit solve ``u - a f_I(t, u) = rhs`` per sub-step.
A fully implicit sweeper is the special case ``f_E = 0``.

IMEX-SDC keeps the explicit sweeps' order-per-sweep property while the
implicit treatment of the stiff part removes its step size restriction —
verified on stiff Dahlquist problems in the tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.sdc.quadrature import QuadratureRule
from repro.sdc.sweeper import InitStrategy
from repro.utils.validation import check_positive
from repro.vortex.problem import ODEProblem

__all__ = ["SplitODEProblem", "IMEXSDCSweeper", "IMEXSDCStepper",
           "SplitDahlquist"]


class SplitODEProblem(ODEProblem):
    """IVP with an explicit/implicit splitting of the right-hand side."""

    @abstractmethod
    def rhs_explicit(self, t: float, u: np.ndarray) -> np.ndarray:
        """Non-stiff part, treated by forward Euler in the sweep."""

    @abstractmethod
    def rhs_implicit(self, t: float, u: np.ndarray) -> np.ndarray:
        """Stiff part, treated by backward Euler in the sweep."""

    @abstractmethod
    def solve_implicit(
        self, t: float, coeff: float, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve ``u - coeff * f_I(t, u) = rhs`` for ``u``."""

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.rhs_explicit(t, u) + self.rhs_implicit(t, u)


class SplitDahlquist(SplitODEProblem):
    """``u' = lambda_E u + lambda_I u`` — the classic IMEX test equation.

    ``lambda_I`` may be arbitrarily stiff (large negative real part);
    the implicit solve is a scalar division.
    """

    def __init__(self, lam_explicit: complex, lam_implicit: complex) -> None:
        self.lam_e = lam_explicit
        self.lam_i = lam_implicit

    def rhs_explicit(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.lam_e * u

    def rhs_implicit(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.lam_i * u

    def solve_implicit(self, t: float, coeff: float, rhs: np.ndarray) -> np.ndarray:
        return rhs / (1.0 - coeff * self.lam_i)

    def exact(self, t: float, u0: np.ndarray) -> np.ndarray:
        return u0 * np.exp((self.lam_e + self.lam_i) * t)

    def norm(self, u: np.ndarray) -> float:
        return float(np.max(np.abs(u))) if u.size else 0.0


class IMEXSDCSweeper:
    """IMEX sweeps over one time step; state arrays as in the explicit
    sweeper, but with the two RHS parts stored separately."""

    def __init__(self, problem: SplitODEProblem, rule: QuadratureRule) -> None:
        if not rule.node_set.includes_left:
            raise ValueError(
                "node-to-node IMEX sweeps need the left endpoint as a node"
            )
        self.problem = problem
        self.rule = rule

    @property
    def num_nodes(self) -> int:
        return self.rule.num_nodes

    def node_times(self, t0: float, dt: float) -> np.ndarray:
        return t0 + dt * self.rule.nodes

    def initialize(
        self, t0: float, dt: float, u0: np.ndarray,
        strategy: InitStrategy = "spread",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Provisional ``(U, FE, FI)`` node arrays."""
        if strategy != "spread":
            raise ValueError("IMEX initialisation supports 'spread' only")
        m1 = self.num_nodes
        times = self.node_times(t0, dt)
        U = np.empty((m1,) + u0.shape, dtype=complex if np.iscomplexobj(u0)
                     else np.float64)
        FE = np.empty_like(U)
        FI = np.empty_like(U)
        fe0 = self.problem.rhs_explicit(times[0], u0)
        fi0 = self.problem.rhs_implicit(times[0], u0)
        for m in range(m1):
            U[m] = u0
            FE[m] = fe0
            FI[m] = fi0
        return U, FE, FI

    def sweep(
        self,
        t0: float,
        dt: float,
        U: np.ndarray,
        FE: np.ndarray,
        FI: np.ndarray,
        u0: Optional[np.ndarray] = None,
        tau: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One IMEX correction sweep (inputs untouched)."""
        m1 = self.num_nodes
        times = self.node_times(t0, dt)
        delta = dt * self.rule.delta
        integral = dt * self.rule.integrate_node_to_node(FE + FI)
        if tau is not None:
            integral = integral + tau

        U_new = np.empty_like(U)
        FE_new = np.empty_like(FE)
        FI_new = np.empty_like(FI)
        if u0 is None:
            U_new[0] = U[0]
            FE_new[0] = FE[0]
            FI_new[0] = FI[0]
        else:
            U_new[0] = u0
            FE_new[0] = self.problem.rhs_explicit(times[0], u0)
            FI_new[0] = self.problem.rhs_implicit(times[0], u0)
        for m in range(m1 - 1):
            rhs = (
                U_new[m]
                + delta[m] * (FE_new[m] - FE[m] - FI[m + 1])
                + integral[m + 1]
            )
            U_new[m + 1] = self.problem.solve_implicit(
                times[m + 1], delta[m], rhs
            )
            FE_new[m + 1] = self.problem.rhs_explicit(times[m + 1],
                                                      U_new[m + 1])
            FI_new[m + 1] = self.problem.rhs_implicit(times[m + 1],
                                                      U_new[m + 1])
        return U_new, FE_new, FI_new

    def residual(
        self,
        dt: float,
        U: np.ndarray,
        FE: np.ndarray,
        FI: np.ndarray,
        u0: np.ndarray,
        tau: Optional[np.ndarray] = None,
    ) -> float:
        rhs = dt * self.rule.integrate_from_start(FE + FI)
        if tau is not None:
            rhs = rhs + np.cumsum(tau, axis=0)
        res = 0.0
        for m in range(1, self.num_nodes):
            res = max(res, self.problem.norm(u0 + rhs[m] - U[m]))
        return res

    def end_value(
        self, dt: float, U: np.ndarray, FE: np.ndarray, FI: np.ndarray,
        u0: np.ndarray,
    ) -> np.ndarray:
        if self.rule.node_set.includes_right:
            return U[-1]
        return u0 + dt * self.rule.integrate_full(FE + FI)


class IMEXSDCStepper:
    """Serial IMEX-SDC time stepper (mirrors :class:`SDCStepper`)."""

    def __init__(
        self,
        problem: SplitODEProblem,
        num_nodes: int = 3,
        sweeps: int = 4,
        node_type: str = "lobatto",
    ) -> None:
        from repro.sdc.quadrature import make_rule

        if sweeps < 1:
            raise ValueError(f"need at least 1 sweep, got {sweeps}")
        self.problem = problem
        self.rule = make_rule(num_nodes, node_type)
        self.sweeper = IMEXSDCSweeper(problem, self.rule)
        self.sweeps = int(sweeps)

    def step(self, t0: float, dt: float, u0: np.ndarray) -> np.ndarray:
        U, FE, FI = self.sweeper.initialize(t0, dt, u0)
        for _ in range(self.sweeps):
            U, FE, FI = self.sweeper.sweep(t0, dt, U, FE, FI)
        return self.sweeper.end_value(dt, U, FE, FI, u0)

    def run(
        self, u0: np.ndarray, t0: float, t_end: float, dt: float
    ) -> np.ndarray:
        check_positive("dt", dt)
        span = t_end - t0
        n_steps = int(round(span / dt))
        if n_steps < 0 or abs(n_steps * dt - span) > 1e-9 * max(1.0, abs(span)):
            raise ValueError(
                f"interval length {span} is not an integer multiple of dt={dt}"
            )
        u = np.asarray(u0).copy()
        for k in range(n_steps):
            u = self.step(t0 + k * dt, dt, u)
        return u
