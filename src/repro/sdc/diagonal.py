"""Diagonal (Jacobi-style) SDC sweeps — PFASST-ER's third parallel axis.

The Gauss-Seidel sweep of :mod:`repro.sdc.sweeper` substitutes node by
node: node ``m+1``'s update consumes node ``m``'s *new* value, so the M
evaluations of one sweep are inherently sequential.  PFASST-ER (Schöbel
& Speck; see PAPERS.md) replaces the lower-triangular substitution with
a **diagonal** preconditioner ``Q_delta = diag(d)``:

    u^{k+1}_m - dt d_m f(t_m, u^{k+1}_m)
        = u0 + dt ((Q - Q_delta) F^k)_m + Tau_m

Each node's equation involves only that node's unknown, so all nodes of
a sweep update **independently** — the collocation nodes become a third
process dimension next to time and space.  Executed under a node
sub-comm (``p_nodes`` ranks per time-space cell), each node rank
evaluates only its own slice of the node axis and the full ``F`` block
is reassembled with an allgather (:func:`repro.sdc.sweeper.
evaluate_node_values`).

For the explicit N-body right-hand sides of this repository the
per-node implicit relation is resolved by fixed-point (Picard)
iteration on the node equation, starting from the plain Picard value
``u0 + dt (Q F^k)_m + Tau_m``:

* ``inner_iterations = 0`` — the plain Picard/spectral iteration
  (``d`` drops out): one RHS evaluation per node per sweep, the same
  wall cost per sweep as Gauss-Seidel but fully node-parallel.
* ``inner_iterations = j >= 1`` — ``j`` extra evaluation rounds apply
  the diagonal correction; with the default ``"min"`` coefficients
  (``d_m = tau_m / M``, which make ``Q - Q_delta`` nilpotent) one inner
  iteration already recovers Gauss-Seidel-like convergence per sweep.

Cost trade-off vs Gauss-Seidel: one diagonal sweep makes
``inner_iterations + 1`` evaluation *rounds*, each round node-parallel
over ``min(p_nodes, M+1)`` ranks, against ``M + 1`` strictly sequential
evaluations for Gauss-Seidel.  With full node parallelism the per-sweep
critical path drops from ``M + 1`` to ``inner_iterations + 1``
evaluations.

The fixed point is the collocation solution — identical to the
Gauss-Seidel sweeper's — so PFASST's FAS machinery, residual monitor
and transfer operators apply unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sdc.quadrature import QuadratureRule, diagonal_coefficients
from repro.sdc.sweeper import ExplicitSDCSweeper, evaluate_node_values
from repro.vortex.problem import ODEProblem

__all__ = ["DiagonalSDCSweeper"]


class DiagonalSDCSweeper(ExplicitSDCSweeper):
    """SDC sweeper with mutually independent node updates.

    Parameters
    ----------
    problem, rule :
        As for :class:`~repro.sdc.sweeper.ExplicitSDCSweeper`.
    coefficients :
        Diagonal preconditioner choice — ``"ie"``, ``"min"`` (default),
        ``"picard"`` or an explicit array (see
        :func:`repro.sdc.quadrature.diagonal_coefficients`).
    inner_iterations :
        Fixed-point iterations resolving the per-node implicit relation
        (each costs one node-parallel evaluation round); ``0`` reduces
        the sweep to the plain Picard iteration.
    """

    def __init__(
        self,
        problem: ODEProblem,
        rule: QuadratureRule,
        coefficients="min",
        inner_iterations: int = 1,
    ) -> None:
        super().__init__(problem, rule)
        if inner_iterations < 0:
            raise ValueError(
                f"inner_iterations must be >= 0, got {inner_iterations}"
            )
        self.d = diagonal_coefficients(rule, coefficients)
        self.coefficients = (
            coefficients if isinstance(coefficients, str) else "custom"
        )
        self.inner_iterations = int(inner_iterations)

    @property
    def needs_u0(self) -> bool:
        """The Q-form update starts every node from ``u0`` directly."""
        return True

    def sweep_gen(
        self,
        t0: float,
        dt: float,
        U: np.ndarray,
        F: np.ndarray,
        u0: Optional[np.ndarray] = None,
        tau: Optional[np.ndarray] = None,
        space=None,
        dispatch=None,
        node=None,
    ):
        """One Jacobi-style sweep; node-parallel over ``node`` when live.

        All node updates read only the previous iterate ``(U, F)`` and
        ``u0``, so the evaluation rounds shard over the node comm and
        every node rank returns the same ``(U_new, F_new)`` bitwise.
        """
        with self.timings.phase("sweep"):
            m1 = self.num_nodes
            times = self.node_times(t0, dt)
            if u0 is None:
                if self.rule.node_set.includes_left:
                    u0 = U[0]
                else:
                    raise ValueError(
                        f"{self.rule.node_set.node_type!r} nodes do not "
                        "include the left endpoint, so node 0 is a genuine "
                        "collocation unknown: every sweep needs the step "
                        "initial value u0"
                    )
            base = u0 + dt * self.rule.integrate_from_start(F)
            if tau is not None:
                base = base + np.cumsum(tau, axis=0)
            # Picard predictor == first fixed-point iterate started from
            # the previous sweep's values (d_m F^k_m cancels exactly)
            U_new = base.copy()
            if self.inner_iterations > 0 and self.d.any():
                d_eff = (dt * self.d).reshape((m1,) + (1,) * (U.ndim - 1))
                b = base - d_eff * F
                for _ in range(self.inner_iterations):
                    F_star = yield from evaluate_node_values(
                        self.problem, times, U_new,
                        space=space, node=node, dispatch=dispatch,
                    )
                    U_new = b + d_eff * F_star
            F_new = yield from evaluate_node_values(
                self.problem, times, U_new,
                space=space, node=node, dispatch=dispatch,
            )
            return U_new, F_new
