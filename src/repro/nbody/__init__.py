"""Direct N-body reference solvers (Coulomb / gravity / vortex)."""

from repro.nbody.direct import coulomb_direct, gravity_direct

__all__ = ["coulomb_direct", "gravity_direct"]
