"""Direct O(N^2) summation solvers for scalar-charge N-body systems.

PEPC began life as a Coulomb/gravity solver; these reference
implementations provide exact results for validating the tree code and for
the small-ensemble accuracy studies (paper Sec. IV-A uses a direct solver
to eliminate spatial error).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.profiles import potential_profile, radial_chain
from repro.utils.chunking import chunk_pairs_budget, chunk_ranges
from repro.utils.validation import check_array, check_positive
from repro.vortex.kernels import SingularKernel, SmoothingKernel

__all__ = ["coulomb_direct", "coulomb_pairs", "gravity_direct"]


def coulomb_pairs(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: Optional[SmoothingKernel] = None,
    sigma: float = 1.0,
    exclude_zero: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-pair Coulomb contributions of P (target, source) pairs.

    All arrays are aligned on axis 0: pair ``p`` is the interaction of
    ``targets[p]`` with the single source ``(sources[p], charges[p])``.
    Returns *unsummed* potential (P,) and field (P, 3) contributions for
    the batched tree engine to scatter-add; same conventions and
    zero-distance handling as :func:`coulomb_direct`.
    """
    kernel = kernel or SingularKernel()
    r = targets - sources  # (P, 3)
    r2 = np.einsum("pk,pk->p", r, r)
    if exclude_zero:
        zero = r2 == 0.0
        r2 = np.where(zero, 1.0, r2)
    d0 = potential_profile(kernel, r2, sigma)
    (d1,) = radial_chain(kernel, r2, sigma, 1)
    if exclude_zero:
        d0 = np.where(zero, 0.0, d0)
        d1 = np.where(zero, 0.0, d1)
    phi = d0 * charges
    field = -(d1 * charges)[:, None] * r
    return phi, field


def coulomb_direct(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: Optional[SmoothingKernel] = None,
    sigma: float = 1.0,
    chunk: Optional[int] = None,
    exclude_zero: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Potential and field of scalar charges by direct summation.

    ``phi(x) = sum_p q_p G(|x - x_p|)`` with ``G -> 1/(4 pi r)``;
    ``E = -grad phi``.  The kernel defaults to the unsoftened singular
    kernel; any algebraic kernel gives a regularised (Plummer-like) system.

    Returns ``(phi (M,), E (M, 3))``.
    """
    targets = check_array("targets", targets, shape=(None, 3), dtype=np.float64)
    sources = check_array("sources", sources, shape=(None, 3), dtype=np.float64)
    charges = check_array(
        "charges", charges, shape=(sources.shape[0],), dtype=np.float64
    )
    kernel = kernel or SingularKernel()
    check_positive("sigma", sigma)
    m, n = targets.shape[0], sources.shape[0]
    phi = np.zeros(m, dtype=np.float64)
    field = np.zeros((m, 3), dtype=np.float64)
    if m == 0 or n == 0:
        return phi, field
    if chunk is None:
        chunk = chunk_pairs_budget(n)
    for lo, hi in chunk_ranges(m, chunk):
        r = targets[lo:hi, None, :] - sources[None, :, :]
        r2 = np.einsum("tsk,tsk->ts", r, r)
        if exclude_zero:
            zero = r2 == 0.0
            r2 = np.where(zero, 1.0, r2)
        d0 = potential_profile(kernel, r2, sigma)
        (d1,) = radial_chain(kernel, r2, sigma, 1)
        if exclude_zero:
            d0 = np.where(zero, 0.0, d0)
            d1 = np.where(zero, 0.0, d1)
        phi[lo:hi] = d0 @ charges
        # E = -sum q D1 r
        field[lo:hi] = -np.einsum("ts,s,tsk->tk", d1, charges, r)
    return phi, field


def gravity_direct(
    targets: np.ndarray,
    sources: np.ndarray,
    masses: np.ndarray,
    g_constant: float = 1.0,
    softening: float = 0.0,
    chunk: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Newtonian potential and acceleration (attractive convention).

    ``phi = -G sum m / r`` (note: *not* divided by 4 pi — the customary
    gravitational convention), ``a = -grad phi``.
    """
    kernel = SingularKernel(softening=softening)
    phi, field = coulomb_direct(
        targets, sources, np.asarray(masses, dtype=np.float64),
        kernel=kernel, sigma=1.0, chunk=chunk,
    )
    scale = 4.0 * np.pi * g_constant
    # Coulomb phi = +sum q/(4 pi r) is repulsive; gravity attracts:
    # phi_grav = -G sum m / r, a = -grad phi_grav = -(4 pi G) E_coulomb
    return -scale * phi, -scale * field
