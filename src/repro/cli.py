"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print version, installed subsystems and available kernels/integrators.
``sheet``
    Run the spherical vortex sheet with a chosen integrator and print
    invariant drift (a quick end-to-end smoke run).
``speedup``
    Miniature Fig. 8: measured vs theoretical PFASST speedup.
``trace``
    Inspect, export and diff observability trace files — forwards to the
    ``repro-trace`` tool (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Space-time parallel N-body solver (Speck et al., SC12)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print build information")

    sheet = sub.add_parser("sheet", help="run the vortex sheet model problem")
    sheet.add_argument("-n", type=int, default=400, help="particle count")
    sheet.add_argument("--t-end", type=float, default=2.0)
    sheet.add_argument("--dt", type=float, default=0.5)
    sheet.add_argument("--method", default="sdc",
                       choices=["euler", "rk2", "rk3", "rk4", "sdc",
                                "pfasst"])
    sheet.add_argument("--evaluator", default="tree",
                       choices=["direct", "tree"])
    sheet.add_argument("--theta", type=float, default=0.3)
    sheet.add_argument("--p-time", type=int, default=4,
                       help="time ranks (pfasst only)")
    sheet.add_argument("--p-nodes", type=int, default=1,
                       help="node ranks per time rank — the PFASST-ER "
                       "third grid dimension (pfasst only)")
    sheet.add_argument("--sweeper", default="gauss-seidel",
                       choices=["gauss-seidel", "diagonal"],
                       help="SDC sweep: sequential Gauss-Seidel or the "
                       "node-parallel diagonal preconditioner")
    sheet.add_argument("--sigma-over-h", type=float, default=3.0)
    sheet.add_argument("--save", type=str, default=None,
                       help="write the final state to this .npz path")

    speed = sub.add_parser("speedup", help="miniature Fig. 8 study")
    speed.add_argument("-n", type=int, default=500)
    speed.add_argument("--steps", type=int, default=4)
    speed.add_argument("--p-times", type=int, nargs="+", default=[1, 2, 4])
    speed.add_argument("--p-nodes", type=int, default=1,
                       help="node ranks per time rank (PFASST-ER)")
    speed.add_argument("--sweeper", default="gauss-seidel",
                       choices=["gauss-seidel", "diagonal"])

    trace = sub.add_parser(
        "trace", help="summarize/export/gantt/diff trace files "
        "(same as the repro-trace tool)", add_help=False,
    )
    trace.add_argument("rest", nargs=argparse.REMAINDER,
                       help="arguments forwarded to repro-trace")
    return parser


def _cmd_info() -> int:
    import repro
    from repro.integrators import available_integrators
    from repro.sdc.nodes import available_node_types
    from repro.vortex import available_kernels

    print(f"repro {repro.__version__} — space-time parallel N-body solver")
    print(f"kernels:      {', '.join(available_kernels())}")
    print(f"integrators:  {', '.join(available_integrators())}, sdc, pfasst")
    print(f"node types:   {', '.join(available_node_types())}")
    print("subsystems:   vortex, tree, nbody, sdc, pfasst, parallel, "
          "perfmodel, integrators")
    return 0


def _cmd_sheet(args: argparse.Namespace) -> int:
    from repro import SolverConfig, SpaceTimeSolver, spherical_vortex_sheet
    from repro.core import SpaceConfig, TimeConfig
    from repro.vortex.diagnostics import compute_diagnostics
    from repro.vortex.sheet import SheetConfig

    sheet = SheetConfig(n=args.n, sigma_over_h=args.sigma_over_h)
    ps = spherical_vortex_sheet(sheet)
    config = SolverConfig(
        space=SpaceConfig(evaluator=args.evaluator, theta=args.theta),
        time=TimeConfig(method=args.method, t_end=args.t_end, dt=args.dt,
                        p_time=args.p_time, p_nodes=args.p_nodes,
                        sweeper=args.sweeper),
    )
    before = compute_diagnostics(ps).as_dict()
    result = SpaceTimeSolver(ps, sheet.sigma, config).run()
    after = compute_diagnostics(result.final, time=args.t_end).as_dict()
    print(f"method={args.method} evaluator={args.evaluator} N={args.n} "
          f"T={args.t_end} dt={args.dt}")
    print(f"fine RHS evaluations: {result.fine_evals} "
          f"({result.fine_eval_seconds:.2f}s)")
    if result.alpha_measured is not None:
        print(f"measured alpha: {result.alpha_measured:.3f}")
    for key in ("total_vorticity_norm", "linear_impulse_norm", "enstrophy"):
        print(f"{key}: {before[key]:.6g} -> {after[key]:.6g}")
    if args.save:
        from repro.io import save_particles

        path = save_particles(args.save, result.final, time=args.t_end)
        print(f"final state written to {path}")
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.parallel import CommCostModel, Scheduler
    from repro.pfasst import (LevelSpec, PfasstConfig, run_pfasst,
                              speedup_two_level)
    from repro.sdc import SDCStepper
    from repro.tree import TreeEvaluator
    from repro.vortex import VortexProblem, get_kernel, spherical_vortex_sheet
    from repro.vortex.sheet import SheetConfig

    sheet = SheetConfig(n=args.n, sigma_over_h=3.0)
    ps = spherical_vortex_sheet(sheet)
    kernel = get_kernel("algebraic6")
    fine = VortexProblem(
        ps.volumes, TreeEvaluator(kernel, sheet.sigma, theta=0.3)
    )
    # shares the fine evaluator's tree-state cache (one tree, two traversals)
    coarse = fine.coarsened(theta=0.6)
    u0 = ps.state()
    for _ in range(2):
        fine.rhs(0.0, u0)
        coarse.rhs(0.0, u0)
    ratio = fine.evaluator.mean_cost / coarse.evaluator.mean_cost
    alpha = (2.0 / 3.0) / ratio

    def serial(comm):
        SDCStepper(fine, num_nodes=3, sweeps=4).run(
            u0, 0.0, args.steps * 0.5, 0.5
        )
        yield comm.work(0.0)

    sched = Scheduler(1, measure_compute=True)
    sched.run(serial)
    base = sched.makespan
    print(f"alpha = {alpha:.3f} (cost ratio {ratio:.2f}); "
          f"serial SDC(4): {base:.2f}s")
    if args.p_nodes > 1:
        print(f"node dimension: P_N = {args.p_nodes} "
              f"({args.sweeper} sweeps)")
    print(f"{'P_T':>4} {'speedup':>8} {'theory':>7}")
    for p_t in args.p_times:
        if args.steps % p_t:
            continue
        cfg = PfasstConfig(t0=0.0, t_end=args.steps * 0.5,
                           n_steps=args.steps, iterations=2)
        specs = [LevelSpec(fine, 3, 1, sweeper=args.sweeper),
                 LevelSpec(coarse, 2, 2, sweeper=args.sweeper)]
        res = run_pfasst(cfg, specs, u0, p_time=p_t,
                         p_nodes=args.p_nodes,
                         cost_model=CommCostModel(), measure_compute=True)
        theory = float(speedup_two_level(p_t, alpha, 4, 2, 2))
        print(f"{p_t:>4} {base / res.makespan:>8.2f} {theory:>7.2f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "sheet":
        return _cmd_sheet(args)
    if args.command == "speedup":
        return _cmd_speedup(args)
    if args.command == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(args.rest)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
