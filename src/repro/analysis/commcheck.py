"""Protocol verification for the deterministic simulated MPI.

Three checks, all hooked into :class:`repro.parallel.simmpi.Scheduler`:

* **Deadlock diagnosis** — when no rank can make progress, every blocked
  rank is waiting on exactly one ``(source, tag)`` receive, so the
  blocked set forms a *functional* wait-for graph (out-degree <= 1).
  :func:`WaitForGraph.cycles` names the genuine circular waits and
  :func:`WaitForGraph.render` produces the diagnostic the scheduler
  attaches to :class:`~repro.parallel.simmpi.DeadlockError`.
* **Orphan report** — messages still sitting in a channel after all
  ranks finished were sent but never received: a protocol mismatch
  (wrong tag, missing receive) that silently skews virtual-time and
  byte statistics.  :func:`find_orphans` summarises them per *logical*
  channel — exact tags sharing a family head collapse into one report
  carrying the virtual-time window and recovery attempts involved.
* **Replay verification** — ``Scheduler(verify=True)`` re-runs the rank
  programs under the *reversed* rank-service order and asserts
  byte-identical results via :func:`freeze`.  Numerics that depend on
  the interleaving chosen by the scheduler (a race: e.g. mutating
  state shared across rank generators) change under the perturbed
  schedule and surface as a :class:`VerificationError` instead of a
  silently schedule-dependent "result".
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "VerificationError",
    "WaitForGraph",
    "OrphanMessage",
    "find_orphans",
    "freeze",
    "compare_replays",
]


class VerificationError(RuntimeError):
    """Replay under a perturbed schedule produced different results."""


# ---------------------------------------------------------------------------
# wait-for graph
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OrphanMessage:
    """Messages sent on ``(source, dest, tag)`` that were never received.

    One report per **tag class** (head of the tag family, see
    :func:`repro.parallel.tags.tag_class`), not per exact tag: a
    protocol mismatch in an iterating program leaves one undelivered
    message per block/iteration on the *same* logical channel, and a
    flood of one-count entries buries the actual defect.  The
    diagnostic extras (how many exact tags, which recovery attempts,
    the virtual-time window of the sends) are excluded from equality so
    reports compare on the logical channel alone.
    """

    source: int
    dest: int
    #: the tag *class* — exact tag when all orphans share it, otherwise
    #: the family head the collapsed exact tags have in common
    tag: Hashable
    count: int
    #: number of distinct exact tags collapsed into this report
    variants: int = field(default=1, compare=False)
    #: recovery attempts the orphaned sends belonged to (when the tag
    #: family declares an attempt component), sorted
    attempts: Tuple[int, ...] = field(default=(), compare=False)
    #: virtual send-time window of the orphaned messages
    first_sent: float = field(default=0.0, compare=False)
    last_sent: float = field(default=0.0, compare=False)

    def render(self) -> str:
        text = (
            f"rank {self.source} -> rank {self.dest} tag={self.tag!r}: "
            f"{self.count} message(s) sent but never received"
        )
        if self.variants > 1:
            text += f" ({self.variants} distinct tags)"
        if self.attempts:
            text += f" [attempts {', '.join(map(str, self.attempts))}]"
        if self.count and self.last_sent > 0.0:
            window = (f"t={self.first_sent:.9g}"
                      if self.first_sent == self.last_sent
                      else f"t={self.first_sent:.9g}..{self.last_sent:.9g}")
            text += f" sent at {window}"
        return text


class WaitForGraph:
    """Functional wait-for graph of blocked ranks.

    ``edges[rank] = (source, tag)`` means ``rank`` is blocked on a
    receive from ``source`` with ``tag``.  Ranks absent from ``edges``
    have finished (an edge pointing at them can never be satisfied).
    ``crashed`` names ranks that died under fault injection — an edge
    pointing at one of those is annotated as the root cause.
    """

    def __init__(
        self,
        edges: Mapping[int, Tuple[int, Hashable]],
        crashed: frozenset = frozenset(),
    ) -> None:
        self.edges: Dict[int, Tuple[int, Hashable]] = dict(edges)
        self.crashed = frozenset(crashed)

    def cycles(self) -> List[List[int]]:
        """All circular waits, each as ``[r0, r1, ..., r0]``.

        The graph is functional (one outgoing edge per blocked rank), so
        a pointer walk with a colouring finds every cycle exactly once.
        """
        color: Dict[int, int] = {}  # 0 in-progress stack, 1 done
        cycles: List[List[int]] = []
        for start in sorted(self.edges):
            if color.get(start) == 1:
                continue
            path: List[int] = []
            node: Optional[int] = start
            while node is not None and node in self.edges and node not in color:
                color[node] = 0
                path.append(node)
                node = self.edges[node][0]
            if node is not None and color.get(node) == 0:
                # walked back onto the current path: cycle from `node`
                idx = path.index(node)
                cycles.append(path[idx:] + [node])
            for r in path:
                color[r] = 1
        return cycles

    def render(self) -> str:
        """Human-readable diagnostic: edges, then named cycles."""
        lines = ["wait-for graph (rank -> blocked-on):"]
        for rank in sorted(self.edges):
            source, tag = self.edges[rank]
            note = ""
            if source in self.crashed:
                note = "  [source crashed: message can never arrive]"
            elif source not in self.edges:
                note = "  [source already finished: message can never arrive]"
            lines.append(
                f"  rank {rank} -> rank {source}  "
                f"(recv source={source}, tag={tag!r}){note}"
            )
        cycles = self.cycles()
        if cycles:
            for cyc in cycles:
                lines.append(
                    "cycle: " + " -> ".join(f"rank {r}" for r in cyc)
                )
        else:
            lines.append(
                "no cycle: blocked on messages that were never sent "
                "(or on finished ranks)"
            )
        return "\n".join(lines)


def find_orphans(
    channels: Mapping[Tuple[int, int, Hashable], Any]
) -> List[OrphanMessage]:
    """Summarise undelivered messages, deduplicated per logical channel.

    Exact channels sharing ``(source, dest, tag_class)`` collapse into
    one :class:`OrphanMessage` carrying the total count, the number of
    distinct exact tags, the recovery attempts involved and the
    virtual-time window of the sends (read off the queued messages'
    ``sent``/``vc`` bookkeeping when present).
    """
    from repro.parallel.tags import attempt_of, tag_class

    grouped: Dict[Tuple[int, int, Hashable], Dict[str, Any]] = {}
    for (src, dest, tag), queue in channels.items():
        if not len(queue):
            continue
        key = (src, dest, tag_class(tag))
        slot = grouped.setdefault(key, {
            "count": 0, "tags": set(), "attempts": set(), "sent": [],
        })
        slot["count"] += len(queue)
        slot["tags"].add(tag)
        attempt = attempt_of(tag)
        if attempt is not None:
            slot["attempts"].add(attempt)
        for msg in queue:
            sent = getattr(msg, "sent", None)
            if isinstance(sent, (int, float)):
                slot["sent"].append(float(sent))
    orphans = []
    for (src, dest, cls), slot in grouped.items():
        exact = slot["tags"]
        orphans.append(OrphanMessage(
            source=src, dest=dest,
            # keep the exact tag when nothing was collapsed — existing
            # single-channel reports stay byte-identical
            tag=next(iter(exact)) if len(exact) == 1 else cls,
            count=slot["count"],
            variants=len(exact),
            attempts=tuple(sorted(slot["attempts"])),
            first_sent=min(slot["sent"], default=0.0),
            last_sent=max(slot["sent"], default=0.0),
        ))
    return sorted(orphans, key=lambda o: (o.source, o.dest, repr(o.tag)))


# ---------------------------------------------------------------------------
# byte-identity serialisation for replay verification
# ---------------------------------------------------------------------------
def _canonical(value: Any) -> Any:
    """Recursively map a result structure to a deterministic form.

    ndarrays become ``(dtype, shape, raw bytes)`` so comparison is exact
    to the bit (no ``==``-tolerance, no NaN traps); containers recurse;
    dicts keep insertion order (which is itself part of the contract).
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return ("__ndarray__", arr.dtype.str, arr.shape, arr.tobytes())
    if isinstance(value, np.generic):
        return ("__npscalar__", value.dtype.str, value.tobytes())
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, list):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    return value


def freeze(value: Any) -> bytes:
    """Canonical byte serialisation of a rank-program result structure."""
    return pickle.dumps(_canonical(value), protocol=pickle.HIGHEST_PROTOCOL)


def compare_replays(
    primary: Any, replay: Any, detail: str = ""
) -> None:
    """Raise :class:`VerificationError` unless both runs froze identically."""
    if freeze(primary) == freeze(replay):
        return
    lines = [
        "simulated-MPI replay verification failed: results differ under a "
        "reversed rank-service order (schedule-dependent numerics — "
        "a race in the rank programs or shared mutable state).",
    ]
    if isinstance(primary, list) and isinstance(replay, list):
        if len(primary) != len(replay):
            lines.append(
                f"rank count differs: {len(primary)} vs {len(replay)}"
            )
        else:
            bad = [
                r
                for r, (a, b) in enumerate(zip(primary, replay))
                if freeze(a) != freeze(b)
            ]
            lines.append(f"differing ranks: {bad}")
    if detail:
        lines.append(detail)
    raise VerificationError("\n".join(lines))
