"""repro-lint — project-specific AST static analysis.

The generic linters (flake8, ruff) cannot know which invariants this
repository's results hang on; ``repro-lint`` encodes them as seven rules:

RPR001
    Unseeded / legacy RNG: the module-level ``np.random.*`` API draws
    from hidden global state, and ``np.random.default_rng()`` without a
    seed argument gives a fresh OS-entropy stream — both make runs
    irreproducible.  Pass an explicit seed (or a ``Generator``) instead.
RPR002
    Nondeterminism sources: wall-clock reads (``time.time``,
    ``time.perf_counter``, ...) outside the modules whose *job* is
    timing (``parallel/simmpi.py``, ``utils/timing.py``,
    ``obs/timing.py``, ``obs/tracer.py``); iteration over
    ``set``/``frozenset`` expressions (hash order of floats and arrays is
    run-dependent under PYTHONHASHSEED); order-dependent reductions
    (``sum``, ``functools.reduce``) over set expressions.  Normalise with
    ``sorted(...)`` first.
RPR003
    Python-level loops over per-particle / per-pair axes inside declared
    hot modules.  The batched engine exists so that Python iteration
    scales with *chunks*, never with N; a ``for i in range(n_particles)``
    in a hot module undoes the PR-1 speedup silently.
RPR004
    dtype drift in hot modules: array allocation without an explicit
    ``dtype=`` (NumPy may pick platform-dependent defaults for integer
    arrays, and implicit float64 hides intent next to int workspaces) and
    any float32 usage — the theta_fine/theta_coarse equivalence study is
    a float64 contract.
RPR005
    ``assert``-based checks in library code: ``python -O`` strips
    asserts, so shape/invariant checks vanish exactly in optimised
    production runs.  Use :func:`repro.utils.validation.check_array` or
    an explicit ``raise``.
RPR006
    Unpicklable compute-task descriptors: a
    ``repro.parallel.executor.ComputeTask`` must survive a process
    boundary, so its ``method`` must be a *string literal* naming a
    regular method on the registered payload, and no argument may be a
    ``lambda`` (closures capture frame state that cannot be pickled —
    the failure would only surface at runtime, under the process
    backend, as a :class:`~repro.parallel.executor.PayloadPicklingError`
    or worse).  Pass plain scalars/arrays and name methods statically.
RPR007
    Raw message-tag literal at a communication call site: a string (or a
    tuple headed by a string) passed as the ``tag`` of
    ``comm.send``/``comm.recv`` or of a collective outside
    ``parallel/tags.py``.  Tag heads are a global namespace shared by
    every subsystem of the simulated MPI; a literal spelled at the call
    site bypasses the central registry's collision check
    (:mod:`repro.parallel.tags`) and is invisible to the ``repro-comm``
    static verifier's cross-subsystem analysis.  Declare the family in
    the registry and reference the constant.

Any violation can be suppressed for one line with a justified trailing
comment::

    t0 = time.perf_counter()  # repro-lint: disable=RPR002 -- calibration only

Usage::

    python -m repro.analysis.lint src/          # or the console script:
    repro-lint src/ [--list-rules]

Exit status is 0 when clean, 1 when violations were found, 2 on usage or
parse errors.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "RULES",
    "HOT_MODULES",
    "WALLCLOCK_ALLOWED",
    "TAG_REGISTRY_MODULES",
    "Violation",
    "lint_source",
    "lint_paths",
    "main",
]

#: rule code -> one-line summary (the full rationale lives in the module
#: docstring and docs/static_analysis.md)
RULES: Dict[str, str] = {
    "RPR001": "unseeded or legacy global-state RNG",
    "RPR002": "nondeterminism source (wall clock, set iteration/reduction)",
    "RPR003": "Python-level loop over a per-particle/per-pair axis in a hot module",
    "RPR004": "dtype drift in a hot module (allocation without dtype=, float32)",
    "RPR005": "assert-based check in library code (stripped under -O)",
    "RPR006": "unpicklable ComputeTask (lambda argument or non-literal method)",
    "RPR007": "raw tag literal at a comm call site (use repro.parallel.tags)",
}

#: modules whose inner loops must stay vectorised (RPR003/RPR004 scope),
#: matched as posix path suffixes
HOT_MODULES: Tuple[str, ...] = (
    "tree/engine.py",
    "tree/evaluate.py",
    "vortex/kernels.py",
    "nbody/direct.py",
    # kernel backends: every backend must uphold the same float64
    # discipline the engine assumes (RPR004), whatever its namespace
    "backends/numpy_backend.py",
    "backends/threaded.py",
    "backends/cupy_backend.py",
)

#: modules allowed to read the wall clock (RPR002 scope) — the virtual
#: clock bridge, the phase timers and the tracer; everything else must
#: route timing through them
WALLCLOCK_ALLOWED: Tuple[str, ...] = (
    "parallel/simmpi.py",
    "parallel/executor.py",
    "utils/timing.py",
    "obs/timing.py",
    "obs/tracer.py",
)

_LEGACY_RANDOM = frozenset(
    "seed rand randn randint random random_sample ranf sample bytes uniform "
    "normal standard_normal choice shuffle permutation beta binomial poisson "
    "exponential gamma lognormal vonmises weibull".split()
)

_WALLCLOCK_CALLS = frozenset(
    {"time.time", "time.perf_counter", "time.monotonic", "time.process_time"}
)
_WALLCLOCK_BARE = frozenset({"time", "perf_counter", "monotonic", "process_time"})

_FLOAT32_ATTRS = frozenset({"np.float32", "numpy.float32", "np.single", "numpy.single"})
_FLOAT32_STRS = frozenset({"float32", "single", "f4", "<f4", ">f4"})

_ALLOC_DTYPE_POS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}

#: modules allowed to spell tag literals (RPR007 scope): the registry
#: itself is where the historical literal values are declared
TAG_REGISTRY_MODULES: Tuple[str, ...] = ("parallel/tags.py",)

#: collective helpers and the positional index of their ``tag`` parameter
_COLLECTIVE_TAG_POS: Dict[str, int] = {
    "bcast": 3, "reduce": 4, "allreduce": 3, "gather": 3,
    "scatter": 3, "allgather": 2, "barrier": 1,
}

_PER_PARTICLE_NAME = re.compile(
    r"(?i)^n_?(particles?|pairs?|targets?|sources?|points|bodies)$"
)
_PER_PARTICLE_ITER = re.compile(r"(?i)^(particles|pairs|targets|sources)$")

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name chain (``np.random.rand``) or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            out[lineno] = codes
    return out


def _path_matches(path: str, suffixes: Iterable[str]) -> bool:
    posix = Path(path).as_posix()
    return any(posix.endswith(sfx) for sfx in suffixes)


class _Linter(ast.NodeVisitor):
    """Single-file rule visitor.

    ``is_hot`` scopes RPR003/RPR004; ``wallclock_ok`` exempts the timing
    modules from the wall-clock half of RPR002.
    """

    def __init__(self, path: str, is_hot: bool, wallclock_ok: bool,
                 tag_literals_ok: bool = False) -> None:
        self.path = path
        self.is_hot = is_hot
        self.wallclock_ok = wallclock_ok
        self.tag_literals_ok = tag_literals_ok
        self.violations: List[Violation] = []
        #: bare names imported from the time module (``from time import ...``)
        self._time_names: Set[str] = set()

    # -- plumbing ------------------------------------------------------
    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- imports (track `from time import perf_counter`) ---------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_BARE:
                    self._time_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- RPR001 / RPR002 / RPR004 call sites ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            self._check_rng(node, name)
            self._check_wallclock(node, name)
            self._check_set_reduction(node, name)
            self._check_compute_task(node, name)
            self._check_tag_literal(node, name)
            if self.is_hot:
                self._check_allocation(node, name)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in _LEGACY_RANDOM
        ):
            self._flag(
                node, "RPR001",
                f"legacy global-state RNG call {name}(); use a seeded "
                "np.random.default_rng(seed) Generator",
            )
            return
        if parts[-1] == "default_rng":
            seeded = bool(node.args) and not (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            seeded = seeded or any(
                kw.arg == "seed"
                and not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
                for kw in node.keywords
            )
            if not seeded:
                self._flag(
                    node, "RPR001",
                    "default_rng() without a seed draws fresh OS entropy; "
                    "pass an explicit seed for reproducible runs",
                )

    def _check_wallclock(self, node: ast.Call, name: str) -> None:
        if self.wallclock_ok:
            return
        if name in _WALLCLOCK_CALLS or name in self._time_names:
            self._flag(
                node, "RPR002",
                f"wall-clock read {name}() outside the timing modules "
                f"({', '.join(WALLCLOCK_ALLOWED)}); route timing through "
                "utils.timing / the virtual-time scheduler",
            )

    def _check_set_reduction(self, node: ast.Call, name: str) -> None:
        # sum()/reduce() over a set: float accumulation order is hash order
        if name in ("sum", "functools.reduce", "reduce") and node.args:
            if self._is_set_expr(node.args[-1] if name != "sum" else node.args[0]):
                self._flag(
                    node, "RPR002",
                    f"order-dependent reduction {name}() over a set; "
                    "normalise with sorted(...) first",
                )

    def _check_compute_task(self, node: ast.Call, name: str) -> None:
        # RPR006: ComputeTask descriptors must cross a process boundary
        if name.split(".")[-1] != "ComputeTask":
            return
        method_expr: Optional[ast.AST] = None
        if len(node.args) >= 2:
            method_expr = node.args[1]
        for kw in node.keywords:
            if kw.arg == "method":
                method_expr = kw.value
        if method_expr is not None and not (
            isinstance(method_expr, ast.Constant)
            and isinstance(method_expr.value, str)
        ):
            self._flag(
                node, "RPR006",
                "ComputeTask method must be a string literal naming a "
                "method on the registered payload; computed or callable "
                "methods cannot cross the process-backend boundary",
            )
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self._flag(
                        sub, "RPR006",
                        "lambda inside a ComputeTask cannot be pickled for "
                        "the process execution backend; pass plain data and "
                        "a string method name instead",
                    )

    # -- RPR007: raw tag literals at communication call sites ----------
    @staticmethod
    def _is_tag_literal(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return True
        return (
            isinstance(expr, ast.Tuple)
            and bool(expr.elts)
            and isinstance(expr.elts[0], ast.Constant)
            and isinstance(expr.elts[0].value, str)
        )

    def _check_tag_literal(self, node: ast.Call, name: str) -> None:
        if self.tag_literals_ok:
            return
        last = name.split(".")[-1]
        tag_expr: Optional[ast.AST] = None
        # p2p: comm.send(dest, tag, payload) / comm.recv(source, tag) —
        # the arity requirement keeps generator .send(value) out of scope
        if "." in name and last == "send" and len(node.args) >= 3:
            tag_expr = node.args[1]
        elif "." in name and last == "recv" and len(node.args) >= 2:
            tag_expr = node.args[1]
        elif last in _COLLECTIVE_TAG_POS:
            pos = _COLLECTIVE_TAG_POS[last]
            if len(node.args) > pos:
                tag_expr = node.args[pos]
            for kw in node.keywords:
                if kw.arg == "tag":
                    tag_expr = kw.value
        if tag_expr is not None and self._is_tag_literal(tag_expr):
            self._flag(
                tag_expr, "RPR007",
                "raw tag literal at a communication call site; tag heads "
                "are a registry-owned namespace — declare the family in "
                "repro.parallel.tags and use the constant",
            )

    def _check_allocation(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in ("np", "numpy"):
            fn = parts[1]
            pos = _ALLOC_DTYPE_POS.get(fn)
            if pos is not None:
                has_dtype = len(node.args) > pos or any(
                    kw.arg == "dtype" for kw in node.keywords
                )
                if not has_dtype:
                    self._flag(
                        node, "RPR004",
                        f"{name}() without explicit dtype= in a hot module; "
                        "spell out the float64/int64 contract",
                    )
            for kw in node.keywords:
                if (
                    kw.arg == "dtype"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in _FLOAT32_STRS
                ):
                    self._flag(
                        node, "RPR004",
                        f"float32 dtype string {kw.value.value!r} in a hot "
                        "module; the evaluation pipeline is a float64 contract",
                    )

    # -- RPR004: float32 attribute anywhere in a hot module ------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.is_hot:
            name = _dotted(node)
            if name in _FLOAT32_ATTRS:
                self._flag(
                    node, "RPR004",
                    f"{name} in a hot module; the evaluation pipeline is a "
                    "float64 contract",
                )
        self.generic_visit(node)

    # -- RPR002 / RPR003 loops -----------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fname = _dotted(node.func)
            return fname in ("set", "frozenset")
        return False

    def _check_iteration(self, node: ast.AST, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._flag(
                node, "RPR002",
                "iteration over a set expression; element order follows the "
                "hash seed — iterate over sorted(...) instead",
            )
        if self.is_hot:
            self._check_hot_loop(node, iter_node)

    def _check_hot_loop(self, node: ast.AST, iter_node: ast.AST) -> None:
        target = None
        if isinstance(iter_node, ast.Call):
            fname = _dotted(iter_node.func)
            if fname in ("range", "enumerate") and iter_node.args:
                target = iter_node.args[0]
        elif isinstance(iter_node, ast.Name):
            if _PER_PARTICLE_ITER.match(iter_node.id):
                target = iter_node
        if target is None:
            return
        if self._mentions_per_particle_extent(target):
            self._flag(
                node, "RPR003",
                "Python-level loop over a per-particle/per-pair axis in a "
                "hot module; batch it through the engine (chunk loops are "
                "fine: iterate over chunk_ranges/_slot_chunks instead)",
            )

    @staticmethod
    def _mentions_per_particle_extent(expr: ast.AST) -> bool:
        """True when ``expr`` reads ``x.shape[0]``, ``len(x)`` or an
        ``n_particles``-style name — the extents hot loops must not span."""
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and _PER_PARTICLE_NAME.match(sub.id):
                return True
            if isinstance(sub, ast.Call) and _dotted(sub.func) == "len":
                return True
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Attribute)
                and sub.value.attr == "shape"
            ):
                return True
        if isinstance(expr, ast.Name) and _PER_PARTICLE_ITER.match(expr.id):
            return True
        return False

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    # -- RPR005 ---------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            node, "RPR005",
            "assert in library code is stripped under python -O; use "
            "utils.validation.check_array or raise an explicit exception",
        )
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str = "<string>",
    hot_modules: Sequence[str] = HOT_MODULES,
    wallclock_allowed: Sequence[str] = WALLCLOCK_ALLOWED,
    tag_registry_modules: Sequence[str] = TAG_REGISTRY_MODULES,
) -> List[Violation]:
    """Lint one module's source text; returns unsuppressed violations."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(
        path,
        is_hot=_path_matches(path, hot_modules),
        wallclock_ok=_path_matches(path, wallclock_allowed),
        tag_literals_ok=_path_matches(path, tag_registry_modules),
    )
    linter.visit(tree)
    disabled = _suppressions(source)
    kept = [
        v
        for v in linter.violations
        if v.code not in disabled.get(v.line, set())
    ]
    return sorted(kept, key=lambda v: (v.path, v.line, v.col, v.code))


def _iter_py_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Iterable[str]) -> List[Violation]:
    """Lint every ``*.py`` file under the given files/directories."""
    violations: List[Violation] = []
    for f in _iter_py_files(paths):
        violations.extend(lint_source(f.read_text(encoding="utf-8"), str(f)))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-specific reproducibility linter (RPR001-RPR007)",
    )
    parser.add_argument("paths", nargs="*", default=["src/"],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(RULES.items()):
            print(f"{code}  {summary}")
        return 0

    try:
        violations = lint_paths(args.paths or ["src/"])
    except SyntaxError as exc:
        print(f"repro-lint: parse error: {exc}", file=sys.stderr)
        return 2
    for v in violations:
        print(v.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
