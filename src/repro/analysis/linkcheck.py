"""Markdown link checker for the project documentation.

Walks the inline links of the given markdown files and verifies every
**internal** link:

* relative file links (``[guide](docs/observability.md)``) must point at
  an existing file or directory, resolved against the linking file's
  directory;
* fragment links (``...md#span-naming`` or ``#local-anchor``) must match
  a heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to dashes);
* external links (``http(s)://``, ``mailto:``) are *not* fetched — CI
  must stay offline — but their URL syntax is sanity-checked.

Code spans and fenced code blocks are ignored, so documentation may show
literal link syntax in examples.  Exit status: 0 when all links resolve,
1 when any are broken, 2 on usage errors.

Usage::

    python -m repro.analysis.linkcheck README.md docs/*.md
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

__all__ = ["Broken", "check_files", "markdown_anchors", "main"]

#: inline markdown link: [text](target) — target captured lazily so a
#: trailing ")" in prose does not leak in; images (![alt](src)) match too
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^\s{0,3}(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
#: characters GitHub drops when slugifying a heading
_SLUG_STRIP_RE = re.compile(r"[^\w\- ]")


@dataclass(frozen=True)
class Broken:
    """One unresolvable link."""

    file: str
    line: int
    target: str
    reason: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: broken link '{self.target}' — {self.reason}"


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = _SLUG_STRIP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def markdown_anchors(path: Path) -> Set[str]:
    """Every anchor a markdown file defines (heading slugs, deduplicated
    the way GitHub does: repeated slugs get ``-1``, ``-2``, ... suffixes)."""
    anchors: Set[str] = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = _slugify(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def _iter_links(path: Path) -> Iterable[tuple]:
    """Yield ``(line_number, target)`` for every inline link."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _CODE_SPAN_RE.sub("", line)
        for m in _LINK_RE.finditer(stripped):
            yield lineno, m.group(1)


def _check_link(path: Path, lineno: int, target: str) -> Optional[Broken]:
    rel = str(path)
    if _EXTERNAL_RE.match(target):
        if target.startswith(("http://", "https://", "mailto:")):
            return None
        return Broken(rel, lineno, target,
                      f"unrecognised URL scheme {target.split(':')[0]!r}")
    base, _, fragment = target.partition("#")
    if base:
        dest = (path.parent / base).resolve()
        if not dest.exists():
            return Broken(rel, lineno, target, f"no such file: {base}")
    else:
        dest = path.resolve()
    if fragment:
        if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
            return None  # anchors into non-markdown targets: not checkable
        if fragment.lower() not in markdown_anchors(dest):
            return Broken(rel, lineno, target,
                          f"no heading for anchor '#{fragment}' in "
                          f"{dest.name}")
    return None


def check_files(paths: Sequence[Path]) -> List[Broken]:
    """Check every internal link in the given markdown files."""
    broken: List[Broken] = []
    for path in paths:
        for lineno, target in _iter_links(path):
            fail = _check_link(path, lineno, target)
            if fail is not None:
                broken.append(fail)
    return broken


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-linkcheck",
        description="verify internal links in project markdown files",
    )
    parser.add_argument("files", nargs="+", help="markdown files to check")
    args = parser.parse_args(argv)

    paths = [Path(f) for f in args.files]
    missing = [p for p in paths if not p.is_file()]
    if missing:
        for p in missing:
            print(f"repro-linkcheck: no such file: {p}", file=sys.stderr)
        return 2
    broken = check_files(paths)
    for b in broken:
        print(b.render())
    n_links = sum(1 for p in paths for _ in _iter_links(p))
    if broken:
        print(f"repro-linkcheck: {len(broken)} broken link(s) out of "
              f"{n_links} across {len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"repro-linkcheck: {n_links} links OK across {len(paths)} file(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
