"""Opt-in numerical sanitizers, gated behind ``REPRO_SANITIZE=1``.

:func:`boundary` decorates the hand-off points of the solver pipeline —
RHS evaluation (``vortex/rhs.py``), SDC sweeps (``sdc/sweeper.py``),
PFASST level transfer (``pfasst/transfer.py``) and the tree evaluators
(``tree/evaluator.py``) — with NaN/Inf guards and shape contracts built
on :func:`repro.utils.validation.check_array`.

The decision is taken **at decoration time**: when ``REPRO_SANITIZE`` is
unset (the default), ``boundary(...)`` returns the function object
unchanged, so the shipped hot path carries literally zero overhead (see
``benchmarks/bench_sanitize_overhead.py``).  When the flag is set, every
decorated call validates its declared array arguments and recursively
checks every array in the result for non-finite values, raising
:class:`SanitizeError` at the *first* boundary a NaN/Inf crosses — which
turns "the residuals look wrong after 4 sweeps" into "NaN entered at
``sweep:U``".

Because the gate is evaluated at import time, flipping the flag inside a
running process requires reloading the decorated modules (the tests do
exactly that) or starting a fresh interpreter::

    REPRO_SANITIZE=1 python benchmarks/bench_fig7b_pfasst_accuracy.py
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.metrics import get_metrics
from repro.utils.validation import check_array

__all__ = ["SanitizeError", "enabled", "boundary", "check_payload"]

#: accepted falsy spellings of the environment flag
_FALSY = ("", "0", "false", "off", "no")

ArraySpec = Union[str, Tuple[str, Optional[Sequence[Optional[int]]]]]


class SanitizeError(FloatingPointError):
    """A NaN/Inf or contract violation crossed a sanitized boundary."""


def _record_activation() -> None:
    """Count a tripped sanitizer on the active metrics registry."""
    m = get_metrics()
    if m.enabled:
        m.counter("sanitize.activations").inc()


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _FALSY


def _check(label: str, arr: np.ndarray,
           shape: Optional[Sequence[Optional[int]]]) -> None:
    try:
        check_array(label, arr, shape=shape, finite=True)
    except ValueError as exc:
        _record_activation()
        raise SanitizeError(str(exc)) from None


def _check_result(label: str, value: Any) -> None:
    """Recursively guard every ndarray reachable in a result structure.

    Handles tuples/lists, dicts, and field objects exposing
    ``velocity``/``gradient`` attributes (``VelocityField``).
    """
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f" and not np.all(np.isfinite(value)):
            bad = int(np.count_nonzero(~np.isfinite(value)))
            _record_activation()
            raise SanitizeError(
                f"{label} produced {bad} non-finite value(s) "
                f"in an array of shape {value.shape}"
            )
        return
    if isinstance(value, (tuple, list)):
        for i, item in enumerate(value):
            _check_result(f"{label}[{i}]", item)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _check_result(f"{label}[{key!r}]", item)
        return
    for attr in ("velocity", "gradient"):
        field = getattr(value, attr, None)
        if isinstance(field, np.ndarray):
            _check_result(f"{label}.{attr}", field)


def check_payload(label: str, value: Any) -> None:
    """Guard a message payload crossing a communication boundary.

    Used by the simulated-MPI scheduler when ``REPRO_SANITIZE=1`` and a
    fault plan is active: every delivered payload is scanned for
    non-finite values (recursively, like the :func:`boundary` result
    check), so a bit flip that produced a NaN/Inf is caught at the
    *receive* boundary — before it pollutes a sweep — and can trigger a
    bounded retransmit instead of a silent wrong answer.  Raises
    :class:`SanitizeError` on the first offending array.
    """
    _check_result(label, value)


def boundary(
    label: str, arrays: Sequence[ArraySpec] = (), result: bool = True
) -> Callable[[Callable], Callable]:
    """Shape/finiteness contract decorator for a pipeline boundary.

    Parameters
    ----------
    label :
        Boundary name used in diagnostics (``"sweep"``, ``"rhs"``, ...).
    arrays :
        Argument names to validate on entry.  A bare string checks
        finiteness only; a ``(name, shape)`` tuple additionally enforces
        a :func:`check_array`-style shape (``None`` entries are
        wildcards).  Arguments that are ``None`` or not arrays are
        skipped, so optional parameters can be listed freely.
    result :
        Also guard every ndarray in the return value.

    Returns the original function **unchanged** when the sanitizer flag
    is off — a zero-overhead no-op.
    """
    specs: Tuple[Tuple[str, Optional[Sequence[Optional[int]]]], ...] = tuple(
        spec if isinstance(spec, tuple) else (spec, None) for spec in arrays
    )

    def decorate(fn: Callable) -> Callable:
        if not enabled():
            return fn
        sig = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind_partial(*args, **kwargs)
            for name, shape in specs:
                value = bound.arguments.get(name)
                if isinstance(value, np.ndarray):
                    _check(f"{label}:{name}", value, shape)
            out = fn(*args, **kwargs)
            if result:
                _check_result(f"{label}:result", out)
            return out

        return wrapper

    return decorate
