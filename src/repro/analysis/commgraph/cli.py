"""``repro-comm`` — the communication-verification command line.

Subcommands:

* ``check [paths...]`` — run the static layer (skeleton extraction +
  checks CG001–CG006) over files/directories (default ``src/``).
  Exit 1 when any *error*-severity finding is reported, 0 otherwise
  (warnings are printed but do not fail; ``--strict`` promotes them).
* ``certify`` — run the P_T x P_S vortex smoke grid with
  ``certify=True`` under the selected execution backend(s) and print the
  :class:`~repro.analysis.commgraph.DeterminismCertificate`.  With
  ``--executor both`` the serial and process digests must agree; with
  ``--verify`` the reversed-service-order replay must reproduce the
  digest.  Exit 1 on any race or digest mismatch.
* ``graph [paths...]`` — render extracted skeletons as ASCII
  (default) or Graphviz DOT (``--format dot``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.commgraph.checks import check_skeletons
from repro.analysis.commgraph.skeleton import (
    extract_paths,
    render_skeleton,
    roots_of,
    to_dot,
)

__all__ = ["main"]


def _cmd_check(args: argparse.Namespace) -> int:
    skeletons = extract_paths(args.paths or ["src/"])
    if not skeletons:
        print("repro-comm: no rank programs found", file=sys.stderr)
        return 2
    findings = check_skeletons(skeletons, sim_ranks=args.sim_ranks)
    for f in findings:
        print(f.render())
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    print(
        f"repro-comm: {len(skeletons)} skeleton(s), "
        f"{n_err} error(s), {n_warn} warning(s)",
        file=sys.stderr,
    )
    if n_err or (args.strict and n_warn):
        return 1
    return 0


def _smoke_problem(n: int, seed: int = 3, sweeper: str = "gauss-seidel"):
    """The vortex-sheet smoke problem used by tests/test_space_parallel."""
    import numpy as np

    from repro.pfasst.level import LevelSpec
    from repro.tree.parallel import SpaceParallelTreeEvaluator
    from repro.vortex.particles import pack_state
    from repro.vortex.problem import VortexProblem

    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, (n, 3))
    vorticity = rng.normal(size=(n, 3)) * 0.2
    volumes = np.full(n, 1.0 / n)
    ev = SpaceParallelTreeEvaluator("algebraic2", sigma=0.1, theta=0.3,
                                    leaf_size=16)
    fine = VortexProblem(volumes, ev)
    coarse = fine.coarsened(0.6)
    specs = [LevelSpec(fine, 3, sweeps=1, sweeper=sweeper),
             LevelSpec(coarse, 2, sweeps=1, sweeper=sweeper)]
    return pack_state(positions, vorticity), specs


def _certify_once(args: argparse.Namespace, backend: Optional[str]):
    from repro.parallel.executor import ProcessExecutor, SerialExecutor
    from repro.pfasst.controller import PfasstConfig, run_pfasst

    u0, specs = _smoke_problem(args.particles, sweeper=args.sweeper)
    cfg = PfasstConfig(t0=0.0, t_end=0.05, n_steps=args.steps,
                       iterations=args.iterations)
    executor = None
    if backend == "serial":
        executor = SerialExecutor()
    elif backend == "process":
        executor = ProcessExecutor(max_workers=args.max_workers)
    try:
        result = run_pfasst(
            cfg, specs, u0, p_time=args.p_time, p_space=args.p_space,
            p_nodes=args.p_nodes,
            executor=executor, verify=args.verify, certify=True,
        )
    finally:
        if executor is not None:
            executor.close()
    return result.certificate


def _cmd_certify(args: argparse.Namespace) -> int:
    backends: List[Optional[str]]
    if args.executor == "both":
        backends = ["serial", "process"]
    elif args.executor == "none":
        backends = [None]
    else:
        backends = [args.executor]

    certificates = {}
    for backend in backends:
        label = backend or "inline"
        cert = _certify_once(args, backend)
        certificates[label] = cert
        print(f"== executor: {label} ==")
        print(cert.summary())

    failed = False
    digests = {label: c.digest for label, c in certificates.items()}
    if len(set(digests.values())) > 1:
        print(f"repro-comm: DIGEST MISMATCH across backends: {digests}",
              file=sys.stderr)
        failed = True
    if any(not c.race_free for c in certificates.values()):
        print("repro-comm: message race(s) detected — run is not "
              "certified deterministic", file=sys.stderr)
        failed = True
    if args.json:
        payload = {label: c.to_json() for label, c in certificates.items()}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"repro-comm: wrote {args.json}", file=sys.stderr)
    if failed:
        return 1
    print(f"repro-comm: certified deterministic "
          f"(digest {next(iter(digests.values()))})", file=sys.stderr)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    skeletons = extract_paths(args.paths or ["src/"])
    if not skeletons:
        print("repro-comm: no rank programs found", file=sys.stderr)
        return 2
    selected = skeletons
    if args.root:
        selected = [s for s in skeletons
                    if s.name == args.root
                    or s.name.endswith("." + args.root)]
        if not selected:
            print(f"repro-comm: no skeleton named {args.root!r}",
                  file=sys.stderr)
            return 2
    elif args.roots_only:
        selected = roots_of(skeletons)
    if args.format == "dot":
        print(to_dot(selected))
    else:
        for sk in selected:
            print(render_skeleton(sk))
            print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-comm",
        description="static + dynamic communication verification "
                    "(commgraph: CG001-CG006, determinism certificates)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="static checks over rank programs")
    p_check.add_argument("paths", nargs="*", default=["src/"])
    p_check.add_argument("--sim-ranks", type=int, default=4,
                         help="rank count for the CG006 mini-simulation")
    p_check.add_argument("--strict", action="store_true",
                         help="treat warnings as errors")
    p_check.set_defaults(fn=_cmd_check)

    p_cert = sub.add_parser(
        "certify", help="run the smoke grid and print its determinism "
                        "certificate")
    p_cert.add_argument("--p-time", type=int, default=2)
    p_cert.add_argument("--p-space", type=int, default=2)
    p_cert.add_argument("--p-nodes", type=int, default=1,
                        help="node ranks per (time, space) pair — "
                             "certifies the P_T x P_S x P_N grid")
    p_cert.add_argument("--sweeper",
                        choices=["gauss-seidel", "diagonal"],
                        default="gauss-seidel",
                        help="SDC sweep used on both levels")
    p_cert.add_argument("--particles", type=int, default=96)
    p_cert.add_argument("--steps", type=int, default=2)
    p_cert.add_argument("--iterations", type=int, default=2)
    p_cert.add_argument("--executor",
                        choices=["none", "serial", "process", "both"],
                        default="none",
                        help="execution backend(s); 'both' compares the "
                             "serial and process digests")
    p_cert.add_argument("--max-workers", type=int, default=2)
    p_cert.add_argument("--verify", action="store_true",
                        help="also replay under reversed service order "
                             "and require an identical digest")
    p_cert.add_argument("--json", metavar="PATH",
                        help="write the certificate(s) as JSON")
    p_cert.set_defaults(fn=_cmd_certify)

    p_graph = sub.add_parser("graph", help="render extracted skeletons")
    p_graph.add_argument("paths", nargs="*", default=["src/"])
    p_graph.add_argument("--format", choices=["ascii", "dot"],
                         default="ascii")
    p_graph.add_argument("--root", help="render one skeleton by name")
    p_graph.add_argument("--roots-only", action="store_true",
                         help="render only root programs")
    p_graph.set_defaults(fn=_cmd_graph)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
