"""Static verification passes over extracted communication skeletons.

Checks (codes mirror the ``repro-lint`` RPR numbering style):

* **CG001 — unregistered tag head** (error): a resolved tag head that is
  not declared in :mod:`repro.parallel.tags`.  Every channel namespace
  must be owned.
* **CG002 — cross-subsystem tag collision** (error): a *raw literal*
  head that re-spells a family registered to a different, non-shared
  subsystem.  Two subsystems independently picking the same head would
  silently interleave their channels; registry constants cannot collide
  (registration is duplicate-checked), so only literals are flagged.
* **CG003 — tag arity mismatch** (error): a directly constructed tag
  whose component count contradicts the registered family arity
  (``(PRED, block)`` against arity 3) — the shape contract that keeps
  recovery attempts, blocks and iterations addressable.
* **CG004 — dangling endpoint** (error for recv, warning for send): a
  head that appears on only one side of the send/recv pairing in a
  flattened root program.  A recv-only head is a static deadlock; a
  send-only head is orphan-prone (undelivered messages at exit).
* **CG005 — rank-dependent collective divergence** (error): the
  collective sequences of the two branches of a rank-dependent ``if``
  differ — the PR 5 deadlock class (some ranks enter a collective the
  others skip), caught before running.
* **CG006 — potential wait cycle** (warning): a mini-simulation of the
  flattened skeleton over a small rank count, under the scheduler's
  eager-send semantics (a recv blocks only until the matching send *op*
  has executed at the sender; collectives are barriers), stalls with a
  cycle in the wait-for graph — rendered exactly like
  :class:`repro.analysis.commcheck.WaitForGraph` renders dynamic
  deadlocks.

Guards the mini-simulation cannot evaluate are treated as taken, and
ops with unresolvable peers are skipped — both err on the side of *not*
reporting, so CG006 findings are high-confidence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.analysis.commgraph.skeleton import (
    CommOp,
    Skeleton,
    flatten,
    roots_of,
)
from repro.parallel.tags import REGISTRY

__all__ = ["Finding", "check_skeletons", "module_subsystem"]


@dataclass(frozen=True)
class Finding:
    code: str
    severity: str  # "error" | "warning"
    module: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.code} [{self.severity}] "
                f"{self.message}")


def module_subsystem(path: str) -> Optional[str]:
    """Owning tag subsystem of a source file, by path convention."""
    norm = path.replace("\\", "/")
    if norm.endswith("parallel/collectives.py"):
        return "collectives"
    if norm.endswith("parallel/simmpi.py"):
        return "simmpi"
    if "/pfasst/" in norm:
        return "pfasst"
    if "/tree/" in norm:
        return "space"
    return None


_RESOLVED = ("literal", "registry", "derived")


def check_skeletons(skeletons: Sequence[Skeleton],
                    sim_ranks: int = 4) -> List[Finding]:
    """Run every static pass; findings sorted by (path, line, code)."""
    findings: List[Finding] = []
    for sk in skeletons:
        findings.extend(_check_tags(sk))
    for root in roots_of(skeletons):
        flat = flatten(root, skeletons)
        findings.extend(_check_pairing(root, flat))
        findings.extend(_check_collective_symmetry(root, flat))
        findings.extend(_check_wait_cycles(root, flat, sim_ranks))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


# -- CG001/CG002/CG003: per-op tag discipline ------------------------------
def _check_tags(sk: Skeleton) -> List[Finding]:
    out: List[Finding] = []
    subsystem = module_subsystem(sk.path)
    for op in sk.ops:
        shape = op.tag
        if shape is None or shape.head is None:
            continue
        if shape.resolved_via not in _RESOLVED:
            continue
        family = REGISTRY.family_of(shape.head)
        if family is None:
            out.append(Finding(
                "CG001", "error", sk.module, sk.path, op.line,
                f"tag head {shape.head!r} (from {shape.source}) is not "
                "declared in repro.parallel.tags — register the family "
                "or use an existing constant",
            ))
            continue
        if (shape.resolved_via == "literal" and subsystem is not None
                and not family.shared and family.subsystem != subsystem):
            out.append(Finding(
                "CG002", "error", sk.module, sk.path, op.line,
                f"literal tag head {shape.head!r} collides with the "
                f"{family.subsystem!r} subsystem's registered family "
                f"(used from {subsystem!r}) — channels would silently "
                "interleave",
            ))
        if (family.arity is not None
                and shape.resolved_via in ("literal", "registry")
                and shape.arity is not None
                and shape.arity != family.arity):
            out.append(Finding(
                "CG003", "error", sk.module, sk.path, op.line,
                f"tag {shape.source} has {shape.arity} component(s) after "
                f"the head but family {shape.head!r} declares arity "
                f"{family.arity}",
            ))
    return out


# -- CG004: send/recv pairing ----------------------------------------------
def _check_pairing(root: Skeleton, flat: Sequence[CommOp]) -> List[Finding]:
    sends: Dict[str, CommOp] = {}
    recvs: Dict[str, CommOp] = {}
    for op in flat:
        shape = op.tag
        if shape is None or shape.head is None:
            continue
        if shape.resolved_via not in _RESOLVED:
            continue
        if op.kind == "send":
            sends.setdefault(shape.head, op)
        elif op.kind == "recv":
            recvs.setdefault(shape.head, op)
        elif op.kind == "collective":
            # a collective's schedule contains both endpoints on every rank
            sends.setdefault(shape.head, op)
            recvs.setdefault(shape.head, op)
    out: List[Finding] = []
    for head in sorted(set(recvs) - set(sends)):
        op = recvs[head]
        out.append(Finding(
            "CG004", "error", root.module, root.path, op.line,
            f"dangling recv: head {head!r} is received in program "
            f"{root.name!r} but no send with this head exists in its "
            "flattened skeleton — this receive can never be satisfied",
        ))
    for head in sorted(set(sends) - set(recvs)):
        op = sends[head]
        out.append(Finding(
            "CG004", "warning", root.module, root.path, op.line,
            f"orphan-prone send: head {head!r} is sent in program "
            f"{root.name!r} but never received in its flattened skeleton",
        ))
    return out


# -- CG005: collective symmetry under rank-dependent guards ----------------
def _check_collective_symmetry(root: Skeleton,
                               flat: Sequence[CommOp]) -> List[Finding]:
    branches: Dict[int, Dict[str, Any]] = {}
    for op in flat:
        if op.kind != "collective":
            continue
        entry = (op.fn, op.tag.head if op.tag else None)
        for guard in op.guards:
            if not guard.rank_dependent or guard.test is None:
                continue
            slot = branches.setdefault(id(guard.test), {
                "source": guard.source, "line": op.line,
                "body": [], "orelse": [],
            })
            slot["orelse" if guard.negated else "body"].append(entry)
    out: List[Finding] = []
    for slot in branches.values():
        if slot["body"] != slot["orelse"]:
            out.append(Finding(
                "CG005", "error", root.module, root.path, slot["line"],
                f"collective sequence diverges across the rank-dependent "
                f"guard `if {slot['source']}`: one branch issues "
                f"{slot['body'] or 'nothing'}, the other "
                f"{slot['orelse'] or 'nothing'} — ranks taking different "
                "branches deadlock inside the collective",
            ))
    return out


# -- CG006: mini-simulation wait-cycle detection ---------------------------
_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b if b else None,
    ast.Mod: lambda a, b: a % b if b else None,
}
_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def _eval(node: Optional[ast.AST], env: Dict[str, Any]) -> Optional[Any]:
    """Tiny const-folding evaluator over {rank, size, ...}; None = unknown."""
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, (int, bool)) else None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr in ("rank", "world_rank"):
            return env.get("rank")
        if node.attr == "size":
            return env.get("size")
        return None
    if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
        left, right = _eval(node.left, env), _eval(node.right, env)
        if left is None or right is None:
            return None
        return _BINOPS[type(node.op)](left, right)
    if isinstance(node, ast.UnaryOp):
        operand = _eval(node.operand, env)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.Not):
            return not operand
        return None
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        left = _eval(node.left, env)
        right = _eval(node.comparators[0], env)
        if left is None or right is None:
            return None
        fn = _CMPOPS.get(type(node.ops[0]))
        return fn(left, right) if fn else None
    if isinstance(node, ast.BoolOp):
        values = [_eval(v, env) for v in node.values]
        if isinstance(node.op, ast.And):
            if any(v is False for v in values):
                return False
            if all(v is True for v in values):
                return True
            return None
        if any(v is True for v in values):
            return True
        if all(v is False for v in values):
            return False
        return None
    return None


def _rank_program(flat: Sequence[CommOp], rank: int,
                  size: int) -> List[CommOp]:
    """Ops rank ``rank`` would execute (evaluable guards applied)."""
    env = {"rank": rank, "size": size, "p_time": size, "root": 0,
           "p_space": size}
    ops: List[CommOp] = []
    for op in flat:
        if op.kind not in ("send", "recv", "collective", "split"):
            continue
        include = True
        for guard in op.guards:
            value = _eval(guard.test, env)
            if value is None:
                continue  # unknown guard: assume taken (conservative)
            if bool(value) == guard.negated:
                include = False
                break
        if include:
            ops.append(op)
    return ops


def _check_wait_cycles(root: Skeleton, flat: Sequence[CommOp],
                       size: int) -> List[Finding]:
    progs = [_rank_program(flat, r, size) for r in range(size)]
    pcs = [0] * size
    #: executed send ops: (src, dst-or-None, head-or-None)
    sent: Set[Tuple[int, Optional[int], Optional[Hashable]]] = set()
    #: completed collective occurrence counters per rank
    coll_done: List[Dict[Tuple[str, Optional[Hashable]], int]] = [
        {} for _ in range(size)
    ]

    def head_of(op: CommOp) -> Optional[Hashable]:
        return op.tag.head if op.tag is not None else None

    def recv_ready(rank: int, op: CommOp) -> bool:
        env = {"rank": rank, "size": size, "p_time": size, "root": 0,
               "p_space": size}
        src = _eval(ast.parse(op.peer, mode="eval").body
                    if op.peer_ast is None else op.peer_ast, env)
        if src is None or not isinstance(src, int):
            return True  # unresolvable peer: skip (no false positives)
        if not 0 <= src < size or src == rank:
            return True  # statically invalid peer: the real comm rejects it
        head = head_of(op)
        return (
            (src, rank, head) in sent or (src, None, head) in sent
            or (src, rank, None) in sent or (src, None, None) in sent
        )

    progressed = True
    while progressed:
        progressed = False
        # phase 1: drain every rank to its next blocking op
        for rank in range(size):
            while pcs[rank] < len(progs[rank]):
                op = progs[rank][pcs[rank]]
                if op.kind == "send":
                    env = {"rank": rank, "size": size, "p_time": size,
                           "root": 0, "p_space": size}
                    dst = _eval(op.peer_ast, env)
                    if isinstance(dst, int) and not (
                            0 <= dst < size and dst != rank):
                        pcs[rank] += 1  # statically invalid: op never runs
                        continue
                    sent.add((rank,
                              dst if isinstance(dst, int) else None,
                              head_of(op)))
                    pcs[rank] += 1
                    progressed = True
                    continue
                if op.kind == "recv":
                    if recv_ready(rank, op):
                        pcs[rank] += 1
                        progressed = True
                        continue
                    break  # blocked on this recv
                break  # collective/split barrier
        # phase 2: release collective barriers where every rank arrived
        arrivals: Dict[Tuple[str, Optional[Hashable], int], List[int]] = {}
        for rank in range(size):
            if pcs[rank] >= len(progs[rank]):
                continue
            op = progs[rank][pcs[rank]]
            if op.kind not in ("collective", "split"):
                continue
            key = (op.fn, head_of(op))
            occurrence = coll_done[rank].get(key, 0)
            arrivals.setdefault((op.fn, head_of(op), occurrence),
                                []).append(rank)
        for (fn, head, _occ), ranks in arrivals.items():
            if len(ranks) == size:
                for rank in ranks:
                    coll_done[rank][(fn, head)] = (
                        coll_done[rank].get((fn, head), 0) + 1
                    )
                    pcs[rank] += 1
                progressed = True

    stuck = {r for r in range(size) if pcs[r] < len(progs[r])}
    if not stuck:
        return []
    # build the wait-for graph of blocked receives and look for cycles
    from repro.analysis.commcheck import WaitForGraph

    edges: Dict[int, Tuple[int, Hashable]] = {}
    barrier_stuck: List[int] = []
    for rank in sorted(stuck):
        op = progs[rank][pcs[rank]]
        if op.kind == "recv":
            env = {"rank": rank, "size": size, "p_time": size, "root": 0,
                   "p_space": size}
            src = _eval(op.peer_ast, env)
            if isinstance(src, int):
                edges[rank] = (src, op.tag.source if op.tag else "?")
        else:
            barrier_stuck.append(rank)
    graph = WaitForGraph(edges)
    cycles = graph.cycles()
    out: List[Finding] = []
    if cycles:
        first_line = min(progs[r][pcs[r]].line for r in stuck)
        out.append(Finding(
            "CG006", "warning", root.module, root.path, first_line,
            f"potential wait cycle in {root.name!r} (mini-simulation over "
            f"{size} ranks under eager-send semantics):\n" + graph.render(),
        ))
    elif barrier_stuck:
        ops = {r: progs[r][pcs[r]].fn for r in barrier_stuck}
        first_line = min(progs[r][pcs[r]].line for r in barrier_stuck)
        out.append(Finding(
            "CG006", "warning", root.module, root.path, first_line,
            f"static stall in {root.name!r}: ranks {sorted(barrier_stuck)} "
            f"wait at collectives {ops} that the other ranks never join",
        ))
    return out
