"""Two-layer communication verification (``repro-comm``).

**Static layer** (:mod:`~repro.analysis.commgraph.skeleton` +
:mod:`~repro.analysis.commgraph.checks`): an AST extractor walks the
rank-program generators — the PFASST controller, the space-tree field
program, the collectives, the ``VirtualComm.split`` protocol — and
reconstructs a per-rank automaton of sends/recvs/collectives with
symbolic tag expressions resolved against the central tag registry
(:mod:`repro.parallel.tags`).  Six checks (CG001–CG006) verify tag
registration, cross-subsystem collision freedom, tag arity, send/recv
pairing, collective symmetry under rank-dependent guards, and wait-cycle
freedom via a mini-simulation, before a single message is simulated.

**Dynamic layer** (:mod:`~repro.analysis.commgraph.hb`): a
``Scheduler(certify=True)`` run stamps every message with the sender's
vector clock; deliveries form a happens-before DAG that is scanned for
message races and hashed into a schedule-independent
:class:`DeterminismCertificate`, comparable across service orders and
execution backends and exportable as Chrome-trace DAG arrows.

CLI: ``repro-comm check`` (static), ``repro-comm certify`` (dynamic),
``repro-comm graph`` (skeleton rendering).  See
``docs/static_analysis.md``.
"""

from repro.analysis.commgraph.checks import Finding, check_skeletons
from repro.analysis.commgraph.hb import (
    DeterminismCertificate,
    MessageRace,
    attach_flows,
    build_certificate,
    chrome_flow_events,
    find_races,
    reconstruct_vector_clocks,
)
from repro.analysis.commgraph.skeleton import (
    CommOp,
    Skeleton,
    TagShape,
    extract_module,
    extract_paths,
    flatten,
    render_skeleton,
    roots_of,
    to_dot,
)

__all__ = [
    "CommOp",
    "DeterminismCertificate",
    "Finding",
    "MessageRace",
    "Skeleton",
    "TagShape",
    "attach_flows",
    "build_certificate",
    "reconstruct_vector_clocks",
    "check_skeletons",
    "chrome_flow_events",
    "extract_module",
    "extract_paths",
    "find_races",
    "flatten",
    "render_skeleton",
    "roots_of",
    "to_dot",
]
