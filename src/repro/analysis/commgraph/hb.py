"""Happens-before certification of a simulated-MPI run (dynamic layer).

A :class:`~repro.parallel.simmpi.Scheduler` constructed with
``certify=True`` stamps every message with a scalar send stamp (a
sequence number) and logs send/delivery events in per-rank program order
— O(1) appends, so certification stays off the scheduler's hot path
(``benchmarks/bench_commgraph_overhead.py`` pins the cost).  After the
run :func:`reconstruct_vector_clocks` replays those logs once and fills
each delivery record with the sender's and receiver's **vector clocks**:

    ``(src, dst, tag, send_vc, recv_vc_after, sent_time, deliver_time)``.

This module turns those records into:

* **message races** — two deliveries on one exact ``(src, dst, tag)``
  channel whose *send events* are not strictly ordered by happens-before.
  A single sequential sender totally orders its own sends, so on a
  healthy channel consecutive deliveries always satisfy
  ``send_vc[i] < send_vc[i+1]`` element-wise; equality means the same
  send event was delivered twice (a fault-injected duplicate), and
  incomparability or inversion means the channel carried messages whose
  order no program-order chain fixes — nondeterminism that one lucky
  ``verify=True`` replay can miss.  This is the Netzer/Miller message-race
  idea specialised to exact-addressed FIFO channels: *cross-source*
  concurrency into one rank (a gather root, a ring allgather) is the
  normal, deterministic case and is deliberately not flagged, because
  matching here is by exact ``(src, tag)`` — there is no wildcard receive
  for concurrent senders to race toward.

* a :class:`DeterminismCertificate` — a digest over the schedule-
  *independent* projection of the happens-before DAG (per-destination
  delivery sequences with their vector clocks, the channel census, final
  per-rank clocks; **no virtual times**, which depend on
  ``measure_compute`` wall measurements).  Two runs of the same program
  get the same digest regardless of service order or execution backend;
  ``verify=True`` + ``certify=True`` enforces exactly that, and the CLI
  compares digests across ``SerialExecutor`` / ``ProcessExecutor``.

* Chrome ``trace_event`` **flow events** rendering every message as a
  DAG arrow from the send instant on the sender's virtual-time track to
  the delivery instant on the receiver's (:func:`chrome_flow_events`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.parallel.tags import tag_class

__all__ = [
    "Delivery",
    "MessageRace",
    "DeterminismCertificate",
    "reconstruct_vector_clocks",
    "build_certificate",
    "chrome_flow_events",
    "attach_flows",
]

#: delivery record layout produced by the scheduler (kept a plain tuple
#: there so commgraph stays a lazy import)
Delivery = Tuple[int, int, Hashable, Optional[Tuple[int, ...]],
                 Tuple[int, ...], float, float]


def _vc_less(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict vector-clock order: a <= b element-wise and a != b."""
    le = all(x <= y for x, y in zip(a, b))
    return le and any(x < y for x, y in zip(a, b))


@dataclass(frozen=True)
class MessageRace:
    """Two deliveries on one channel with unordered send events."""

    source: int
    dest: int
    tag: Hashable
    #: ``duplicate-delivery`` (equal send clocks — the same send event
    #: delivered twice), ``reordered-delivery`` (later delivery carries
    #: an earlier send), or ``concurrent-send`` (incomparable clocks)
    kind: str
    first_vc: Optional[Tuple[int, ...]]
    second_vc: Optional[Tuple[int, ...]]
    first_time: float
    second_time: float

    @property
    def tag_class(self) -> Hashable:
        return tag_class(self.tag)

    def render(self) -> str:
        return (
            f"race[{self.kind}] channel {self.source} -> {self.dest} "
            f"tag={self.tag!r} (class {self.tag_class!r}): deliveries at "
            f"t={self.first_time:.9g} and t={self.second_time:.9g} carry "
            f"send clocks {self.first_vc} / {self.second_vc}"
        )


@dataclass(frozen=True)
class DeterminismCertificate:
    """Schedule-independent fingerprint of one certified run.

    ``digest`` hashes the happens-before projection (see module
    docstring); ``channels`` is the wire-message census per exact
    channel.  ``races`` non-empty means the run's message order is NOT
    fixed by program order alone and the digest does not certify
    determinism — callers should treat the run as suspect.
    """

    n_ranks: int
    digest: str
    n_messages: int
    n_deliveries: int
    channels: Tuple[Tuple[int, int, str, int], ...]
    clocks: Tuple[Tuple[int, ...], ...]
    races: Tuple[MessageRace, ...]

    @property
    def race_free(self) -> bool:
        return not self.races

    def summary(self) -> str:
        lines = [
            f"DeterminismCertificate digest={self.digest}",
            f"  ranks={self.n_ranks} messages={self.n_messages} "
            f"deliveries={self.n_deliveries} channels={len(self.channels)}",
        ]
        if self.races:
            lines.append(f"  RACES ({len(self.races)}):")
            lines.extend("    " + r.render() for r in self.races)
        else:
            lines.append("  race-free: delivery order fixed by program order")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "n_ranks": self.n_ranks,
            "n_messages": self.n_messages,
            "n_deliveries": self.n_deliveries,
            "n_channels": len(self.channels),
            "race_free": self.race_free,
            "races": [r.render() for r in self.races],
        }


def reconstruct_vector_clocks(
    n_ranks: int,
    events: Sequence[Sequence[Any]],
) -> Tuple[List[Delivery], List[Tuple[int, ...]]]:
    """Replay the scheduler's event logs into vector-clocked deliveries.

    ``events[rank]`` is the rank's program-order log: an ``int`` entry
    is a send stamp (the globally unique sequence number the matching
    raw delivery record carries in slot 3), a tuple entry is the raw
    delivery record ``(src, dst, tag, send_stamp, None, sent, t)``.
    Each rank's clock ticks its own component on every event; a
    delivery additionally merges the sender's clock at the matching
    send.  A rank's replay therefore blocks on a delivery until the
    sender's log has been replayed past that send — since every
    recorded delivery follows its send, the round-robin sweep below
    always terminates on a completed run's logs.

    Returns ``(deliveries, final_clocks)`` where each delivery is the
    canonical 7-tuple with slots 3/4 holding the send / post-receive
    vector clocks (``None`` send clock for unstamped records).  The
    list interleaves ranks in replay order; each destination's
    subsequence is its program order, which is all the downstream
    consumers (races, digest, flow arrows) depend on.
    """
    vclocks = [[0] * n_ranks for _ in range(n_ranks)]
    send_vc: Dict[int, Tuple[int, ...]] = {}
    out: List[Delivery] = []
    ptr = [0] * len(events)
    progress = True
    while progress:
        progress = False
        for rank, log in enumerate(events):
            while ptr[rank] < len(log):
                entry = log[ptr[rank]]
                vc = vclocks[rank]
                if type(entry) is int:
                    vc[rank] += 1
                    send_vc[entry] = tuple(vc)
                else:
                    stamp = entry[3]
                    svc = None
                    if stamp is not None:
                        svc = send_vc.get(stamp)
                        if svc is None:
                            break  # sender not replayed this far yet
                    vc[rank] += 1
                    if svc is not None:
                        for i, v in enumerate(svc):
                            if v > vc[i]:
                                vc[i] = v
                    out.append((entry[0], entry[1], entry[2], svc,
                                tuple(vc), entry[5], entry[6]))
                ptr[rank] += 1
                progress = True
    if any(ptr[r] < len(log) for r, log in enumerate(events)):
        raise ValueError(
            "inconsistent event log: a delivery references a send its "
            "sender never logged"
        )
    return out, [tuple(c) for c in vclocks]


def find_races(deliveries: Sequence[Delivery]) -> List[MessageRace]:
    """Message races: per-channel delivery pairs with unordered sends.

    Deliveries to one destination appear in the global record in that
    destination's program order, so scanning consecutive pairs per exact
    channel covers every adjacent happens-before violation (a total
    order fails iff some adjacent pair fails).
    """
    per_channel: Dict[Tuple[int, int, Hashable], List[Delivery]] = {}
    for d in deliveries:
        per_channel.setdefault((d[0], d[1], d[2]), []).append(d)
    races: List[MessageRace] = []
    for (src, dst, tag), seq in per_channel.items():
        for a, b in zip(seq, seq[1:]):
            va, vb = a[3], b[3]
            if va is None or vb is None:
                continue  # unstamped (pre-certify) message; nothing to say
            if tuple(va) == tuple(vb):
                kind = "duplicate-delivery"
            elif _vc_less(vb, va):
                kind = "reordered-delivery"
            elif not _vc_less(va, vb):
                kind = "concurrent-send"
            else:
                continue
            races.append(MessageRace(
                source=src, dest=dst, tag=tag, kind=kind,
                first_vc=tuple(va), second_vc=tuple(vb),
                first_time=a[6], second_time=b[6],
            ))
    races.sort(key=lambda r: (r.dest, r.source, repr(r.tag), r.first_time))
    return races


def build_certificate(
    n_ranks: int,
    deliveries: Sequence[Delivery],
    census: Dict[Tuple[int, int, Hashable], int],
    clocks: Sequence[Tuple[int, ...]],
) -> DeterminismCertificate:
    """Derive the certificate for one completed ``certify=True`` run."""
    races = find_races(deliveries)
    channels = tuple(sorted(
        (src, dst, repr(tag), count)
        for (src, dst, tag), count in census.items()
    ))
    # canonical, time-free projection: per-destination delivery sequences
    # (destination-local order is program order, hence schedule-free)
    per_dst: List[List[Tuple[Any, ...]]] = [[] for _ in range(n_ranks)]
    for d in deliveries:
        per_dst[d[1]].append((d[0], repr(d[2]), d[3], d[4]))
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(("census", channels)).encode())
    h.update(repr(("clocks", tuple(tuple(c) for c in clocks))).encode())
    for dst, seq in enumerate(per_dst):
        h.update(repr((dst, seq)).encode())
    return DeterminismCertificate(
        n_ranks=n_ranks,
        digest=h.hexdigest(),
        n_messages=sum(census.values()),
        n_deliveries=len(deliveries),
        channels=channels,
        clocks=tuple(tuple(c) for c in clocks),
        races=tuple(races),
    )


# -- Chrome trace_event DAG arrows -----------------------------------------
_US = 1e6  # virtual seconds -> trace microseconds (matches repro.obs.export)


def chrome_flow_events(deliveries: Sequence[Delivery]) -> List[Dict[str, Any]]:
    """Flow-event pairs (``ph`` ``s``/``f``) for every recorded delivery.

    Targets the layout of :func:`repro.obs.export.chrome_trace`: virtual
    clock is process 0 with one thread per rank, timestamps in
    microseconds.  Append these to a trace's ``traceEvents`` to render
    the happens-before DAG as arrows in Perfetto.
    """
    events: List[Dict[str, Any]] = []
    for n, d in enumerate(deliveries):
        src, dst, tag, _svc, _rvc, sent, delivered = d
        common = {"cat": "hb", "name": f"msg:{tag_class(tag)!r}",
                  "id": n + 1, "pid": 0}
        events.append({**common, "ph": "s", "tid": src, "ts": sent * _US,
                       "args": {"tag": str(tag)}})
        events.append({**common, "ph": "f", "bp": "e", "tid": dst,
                       "ts": delivered * _US})
    return events


def attach_flows(trace_json: Dict[str, Any],
                 deliveries: Sequence[Delivery]) -> Dict[str, Any]:
    """Append DAG arrows to a ``chrome_trace`` JSON object (in place)."""
    trace_json.setdefault("traceEvents", []).extend(
        chrome_flow_events(deliveries)
    )
    return trace_json
