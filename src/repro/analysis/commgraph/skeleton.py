"""AST extraction of communication skeletons from rank programs.

A *rank program* in this repository is a Python generator that yields
simulated-MPI operations (``comm.send`` / ``comm.recv`` constructors,
``Compute`` tasks) and drives collectives with ``yield from``.  This
module reconstructs, per generator function, the **communication
skeleton**: the ordered list of comm operations with their symbolic peer
expressions, resolved tag shapes, enclosing guards and loops — the
static counterpart of the op stream the scheduler sees at run time.

The extractor understands the idioms the code base actually uses:

* nested closures (``pfasst_rank_program._predictor`` and friends) are
  extracted as separate skeletons with qualified names, and call sites
  to them become ``call`` ops that :func:`flatten` inlines;
* collectives invoked as *arguments* of wrapper generators —
  ``yield from _protocol(allreduce(comm, ...), "...")`` — are found by
  scanning the whole ``yield from`` expression tree;
* tag expressions are resolved through the module's imports of
  :mod:`repro.parallel.tags` (``tags.PRED``-style attributes and direct
  constant imports), through simple local assignments
  (``tag = (SPLIT, seq)`` then ``(tag, src)``), and down to raw
  literals — each resolved tag records *how* it resolved
  (``literal`` / ``registry`` / ``derived`` / ``param`` / ``unknown``),
  which the checks use to decide what they can assert.

No code is executed: everything is derived from ``ast`` plus the import
of the (side-effect-free) tags registry itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.parallel import tags as _tags_module

__all__ = [
    "TagShape",
    "Guard",
    "CommOp",
    "Skeleton",
    "extract_module",
    "extract_paths",
    "flatten",
    "render_skeleton",
    "to_dot",
]

#: collective generator names -> positional index of their ``tag`` arg
COLLECTIVES: Dict[str, int] = {
    "bcast": 3,
    "reduce": 4,
    "allreduce": 3,
    "gather": 3,
    "scatter": 3,
    "allgather": 2,
    "barrier": 1,
}

#: default base tag per collective (mirrors repro.parallel.collectives)
COLLECTIVE_DEFAULT_TAGS: Dict[str, str] = {
    "bcast": _tags_module.BCAST,
    "reduce": _tags_module.REDUCE,
    "allreduce": _tags_module.ALLREDUCE,
    "gather": _tags_module.GATHER,
    "scatter": _tags_module.SCATTER,
    "allgather": _tags_module.ALLGATHER,
    "barrier": _tags_module.BARRIER,
}

#: names whose mention makes an expression rank-dependent
_RANK_NAMES = {"rank", "me", "vrank", "world_rank", "t_idx", "s_idx", "n_idx"}


# -- resolved tag values ----------------------------------------------------
@dataclass(frozen=True)
class TagShape:
    """Shape of one tag expression at a comm call site.

    ``head`` is the innermost string head when resolvable, else ``None``.
    ``arity`` is the number of tuple components after the head for
    directly constructed tags (``(PRED, block, attempt, j)`` -> 3), 0
    for bare string tags, and ``None`` for derived/unresolvable shapes.
    ``resolved_via`` is one of ``literal`` (raw string constant at the
    call site), ``registry`` (a :mod:`repro.parallel.tags` constant),
    ``derived`` (tuple wrapping of an already-resolved tag, e.g. the
    split protocol's ``(tag, src)``), ``param`` (a function parameter —
    the caller decides), or ``unknown``.
    """

    head: Optional[str]
    arity: Optional[int]
    source: str
    resolved_via: str


@dataclass(frozen=True)
class Guard:
    """One enclosing ``if`` condition of a comm op."""

    source: str
    rank_dependent: bool
    negated: bool
    test: Any = field(compare=False, repr=False, default=None)


@dataclass(frozen=True)
class CommOp:
    """One extracted communication operation."""

    #: ``send`` | ``recv`` | ``collective`` | ``split`` | ``compute`` | ``call``
    kind: str
    #: collective/callee name for ``collective``/``call``, else op kind
    fn: str
    #: source text of the communicator expression (``comm``, ``space``...)
    comm: str
    #: source text of the peer expression (dest/source), None otherwise
    peer: Optional[str]
    tag: Optional[TagShape]
    guards: Tuple[Guard, ...]
    #: nesting depth of enclosing for/while loops
    loops: int
    line: int
    #: peer expression AST (mini-simulation), not part of equality
    peer_ast: Any = field(compare=False, repr=False, default=None)


@dataclass
class Skeleton:
    """Communication skeleton of one generator function."""

    name: str
    module: str
    path: str
    line: int
    params: Tuple[str, ...]
    ops: List[CommOp] = field(default_factory=list)

    @property
    def calls(self) -> List[str]:
        return [op.fn for op in self.ops if op.kind == "call"]

    def comm_ops(self) -> List[CommOp]:
        return [op for op in self.ops if op.kind != "call"]


# -- resolution environment -------------------------------------------------
class _ModuleMarker:
    """Stand-in for an imported :mod:`repro.parallel.tags` binding."""

    def getattr(self, name: str) -> Optional[str]:
        value = getattr(_tags_module, name, None)
        return value if isinstance(value, str) else None


_TAGS_MODULE_MARKER = _ModuleMarker()

# resolved value representations
_Str = Tuple[str, str, str]          # ("str", value, via)
_TupleV = Tuple[str, list]           # ("tuple", [resolved...])
_Other = Tuple[str, str]             # ("param"|"unknown", source)
Resolved = Union[_Str, _TupleV, _Other]


def _module_env(tree: ast.Module) -> Dict[str, Any]:
    """Names bound to the tags registry by this module's imports."""
    env: Dict[str, Any] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.parallel":
                for alias in node.names:
                    if alias.name == "tags":
                        env[alias.asname or "tags"] = _TAGS_MODULE_MARKER
            elif node.module == "repro.parallel.tags":
                for alias in node.names:
                    value = _TAGS_MODULE_MARKER.getattr(alias.name)
                    if value is not None:
                        env[alias.asname or alias.name] = value
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.parallel.tags" and alias.asname:
                    env[alias.asname] = _TAGS_MODULE_MARKER
    return env


def _src(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:
        return "<unparse-failed>"


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _RANK_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank",
                                                           "world_rank"):
            return True
    return False


def _resolve(node: ast.AST, env: Dict[str, Any], params: Sequence[str],
             local: Dict[str, Resolved]) -> Resolved:
    """Best-effort symbolic value of a tag expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ("str", node.value, "literal")
    if isinstance(node, ast.Name):
        if node.id in local:
            return local[node.id]
        bound = env.get(node.id)
        if isinstance(bound, str):
            return ("str", bound, "registry")
        if node.id in params:
            return ("param", node.id)
        return ("unknown", node.id)
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and env.get(base.id) is _TAGS_MODULE_MARKER:
            value = _TAGS_MODULE_MARKER.getattr(node.attr)
            if value is not None:
                return ("str", value, "registry")
        return ("unknown", _src(node))
    if isinstance(node, ast.Tuple):
        return ("tuple",
                [_resolve(e, env, params, local) for e in node.elts])
    return ("unknown", _src(node))


def _shape_of(resolved: Resolved, source: str) -> TagShape:
    """Collapse a resolved value to the (head, arity, via) shape."""
    kind = resolved[0]
    if kind == "str":
        return TagShape(head=resolved[1], arity=0, source=source,
                        resolved_via=resolved[2])
    if kind == "tuple":
        elems = resolved[1]
        if not elems:
            return TagShape(None, None, source, "unknown")
        head = elems[0]
        if head[0] == "str":
            return TagShape(head=head[1], arity=len(elems) - 1,
                            source=source, resolved_via=head[2])
        if head[0] == "tuple":
            inner = _shape_of(head, source)
            return TagShape(head=inner.head, arity=None, source=source,
                            resolved_via=("derived" if inner.head is not None
                                          else "unknown"))
        if head[0] == "param":
            return TagShape(None, None, source, "param")
        return TagShape(None, None, source, "unknown")
    if kind == "param":
        return TagShape(None, None, source, "param")
    return TagShape(None, None, source, "unknown")


# -- the per-function walker ------------------------------------------------
class _FnWalker:
    def __init__(self, fn: ast.FunctionDef, qualname: str, module: str,
                 path: str, env: Dict[str, Any]) -> None:
        self.fn = fn
        self.env = env
        params = [a.arg for a in (fn.args.posonlyargs + fn.args.args
                                  + fn.args.kwonlyargs)]
        self.skeleton = Skeleton(
            name=qualname, module=module, path=path, line=fn.lineno,
            params=tuple(params),
        )
        self._guards: List[Guard] = []
        self._loops = 0
        self._local: Dict[str, Resolved] = {}

    def run(self) -> Skeleton:
        self._walk_body(self.fn.body)
        return self.skeleton

    # -- statements ---------------------------------------------------
    def _walk_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are extracted as their own skeletons
        if isinstance(stmt, ast.If):
            guard = Guard(source=_src(stmt.test),
                          rank_dependent=_mentions_rank(stmt.test),
                          negated=False, test=stmt.test)
            self._guards.append(guard)
            self._walk_body(stmt.body)
            self._guards.pop()
            if stmt.orelse:
                self._guards.append(Guard(
                    source=guard.source, rank_dependent=guard.rank_dependent,
                    negated=True, test=stmt.test,
                ))
                self._walk_body(stmt.orelse)
                self._guards.pop()
            return
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test)
            else:
                self._scan_expr(stmt.iter)
            self._loops += 1
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            self._loops -= 1
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
            self._walk_body(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            if (len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                resolved = _resolve(stmt.value, self.env,
                                    self.skeleton.params, self._local)
                if resolved[0] in ("str", "tuple"):
                    self._local[stmt.targets[0].id] = resolved
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    # -- expressions --------------------------------------------------
    def _scan_expr(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        nodes = [n for n in ast.walk(expr)
                 if isinstance(n, (ast.Yield, ast.YieldFrom))]
        nodes.sort(key=lambda n: (n.lineno, n.col_offset))
        for node in nodes:
            if isinstance(node, ast.Yield):
                self._handle_yield(node)
            else:
                self._handle_yield_from(node)

    def _handle_yield(self, node: ast.Yield) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        if isinstance(func, ast.Attribute):
            if func.attr == "send" and len(value.args) >= 2:
                self._emit("send", "send", _src(func.value),
                           value.args[0], value.args[1], node.lineno)
                return
            if func.attr == "recv" and len(value.args) >= 2:
                self._emit("recv", "recv", _src(func.value),
                           value.args[0], value.args[1], node.lineno)
                return
            if func.attr in ("annotate", "work"):
                return
        if isinstance(func, ast.Name) and func.id == "Compute":
            self.skeleton.ops.append(CommOp(
                kind="compute", fn="compute", comm="", peer=None, tag=None,
                guards=tuple(self._guards), loops=self._loops,
                line=node.lineno,
            ))

    def _handle_yield_from(self, node: ast.YieldFrom) -> None:
        # collectives may sit anywhere in the delegated expression
        # (``_protocol(allreduce(...), "...")``), so scan the whole tree
        calls = [c for c in ast.walk(node.value) if isinstance(c, ast.Call)]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        direct_emitted = False
        for call in calls:
            name = self._callee_name(call.func)
            if name in COLLECTIVES:
                self._emit_collective(name, call, node.lineno)
                direct_emitted = direct_emitted or call is node.value
            elif (isinstance(call.func, ast.Attribute)
                  and call.func.attr == "split"):
                self.skeleton.ops.append(CommOp(
                    kind="split", fn="split", comm=_src(call.func.value),
                    peer=None, tag=None, guards=tuple(self._guards),
                    loops=self._loops, line=node.lineno,
                ))
                direct_emitted = direct_emitted or call is node.value
        # a direct call to another generator becomes a call op so that
        # flatten can inline module-local targets (``_predictor``,
        # ``_protocol`` — the latter's argument collectives were already
        # emitted above, the call op only inlines ops of its own body)
        if isinstance(node.value, ast.Call) and not direct_emitted:
            name = self._callee_name(node.value.func)
            if name and name not in COLLECTIVES:
                self.skeleton.ops.append(CommOp(
                    kind="call", fn=name, comm="", peer=None, tag=None,
                    guards=tuple(self._guards), loops=self._loops,
                    line=node.lineno,
                ))

    @staticmethod
    def _callee_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _emit(self, kind: str, fn: str, comm: str, peer: ast.expr,
              tag: ast.expr, line: int) -> None:
        resolved = _resolve(tag, self.env, self.skeleton.params, self._local)
        self.skeleton.ops.append(CommOp(
            kind=kind, fn=fn, comm=comm, peer=_src(peer),
            tag=_shape_of(resolved, _src(tag)),
            guards=tuple(self._guards), loops=self._loops, line=line,
            peer_ast=peer,
        ))

    def _emit_collective(self, name: str, call: ast.Call,
                         line: int) -> None:
        tag_expr: Optional[ast.expr] = None
        for kw in call.keywords:
            if kw.arg == "tag":
                tag_expr = kw.value
        if tag_expr is None:
            idx = COLLECTIVES[name]
            if len(call.args) > idx:
                tag_expr = call.args[idx]
        if tag_expr is None:
            shape = TagShape(head=COLLECTIVE_DEFAULT_TAGS[name], arity=0,
                             source=f"<default:{name}>",
                             resolved_via="registry")
        else:
            resolved = _resolve(tag_expr, self.env, self.skeleton.params,
                                self._local)
            shape = _shape_of(resolved, _src(tag_expr))
        comm = _src(call.args[0]) if call.args else ""
        self.skeleton.ops.append(CommOp(
            kind="collective", fn=name, comm=comm, peer=None, tag=shape,
            guards=tuple(self._guards), loops=self._loops, line=line,
        ))


# -- module-level extraction ------------------------------------------------
def _is_generator(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            owner = _owner_fn.get(node)
            if owner is fn:
                return True
    return False


_owner_fn: Dict[ast.AST, ast.FunctionDef] = {}


def _index_owners(tree: ast.Module) -> None:
    """Map every yield node to its immediately enclosing function."""

    def visit(node: ast.AST, owner: Optional[ast.FunctionDef]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child)  # type: ignore[arg-type]
            elif isinstance(child, ast.Lambda):
                visit(child, None)
            else:
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    if owner is not None:
                        _owner_fn[child] = owner
                visit(child, owner)

    visit(tree, None)


def extract_module(source: str, path: str = "<string>",
                   module: Optional[str] = None) -> List[Skeleton]:
    """Extract every generator function's skeleton from one module."""
    tree = ast.parse(source, filename=path)
    _owner_fn.clear()
    _index_owners(tree)
    env = _module_env(tree)
    if module is None:
        module = Path(path).stem
    skeletons: List[Skeleton] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef):
                qual = f"{prefix}{child.name}"
                if _is_generator(child):
                    skeleton = _FnWalker(child, qual, module, path,
                                         env).run()
                    if skeleton.ops:
                        skeletons.append(skeleton)
                visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return skeletons


def extract_paths(paths: Sequence[Union[str, Path]]) -> List[Skeleton]:
    """Extract skeletons from files and/or directories of ``.py`` files."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: List[Skeleton] = []
    for f in files:
        out.extend(extract_module(f.read_text(), path=str(f),
                                  module=_module_name(f)))
    return out


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


# -- flattening (call-op inlining) -----------------------------------------
def flatten(root: Skeleton, skeletons: Sequence[Skeleton],
            max_depth: int = 8) -> List[CommOp]:
    """Ops of ``root`` with local ``call`` ops inlined.

    Call targets resolve by qualified-name suffix within the same
    module (``_predictor`` matches ``pfasst_rank_program._predictor``);
    cross-module calls stay as unresolved ``call`` ops and are dropped.
    Recursion is cycle-safe and depth-limited.
    """
    by_suffix: Dict[str, List[Skeleton]] = {}
    for sk in skeletons:
        if sk.module != root.module:
            continue
        by_suffix.setdefault(sk.name.rsplit(".", 1)[-1], []).append(sk)

    def expand(sk: Skeleton, depth: int, stack: Tuple[str, ...]
               ) -> List[CommOp]:
        if depth > max_depth or sk.name in stack:
            return []
        out: List[CommOp] = []
        for op in sk.ops:
            if op.kind != "call":
                out.append(op)
                continue
            targets = by_suffix.get(op.fn, [])
            # prefer a sibling/child of the current function
            target: Optional[Skeleton] = None
            for cand in targets:
                if cand.name != sk.name:
                    target = cand
                    break
            if target is not None:
                out.extend(expand(target, depth + 1, stack + (sk.name,)))
        return out

    return expand(root, 0, ())


def roots_of(skeletons: Sequence[Skeleton]) -> List[Skeleton]:
    """Skeletons not inlined by any other skeleton of the same module."""
    called: Dict[str, set] = {}
    for sk in skeletons:
        called.setdefault(sk.module, set()).update(sk.calls)
    return [
        sk for sk in skeletons
        if sk.name.rsplit(".", 1)[-1] not in called.get(sk.module, set())
    ]


# -- rendering --------------------------------------------------------------
def render_skeleton(sk: Skeleton) -> str:
    """ASCII rendering of one skeleton (one line per op)."""
    lines = [f"skeleton {sk.module}:{sk.name} ({sk.path}:{sk.line})"]
    for op in sk.ops:
        indent = "  " * (1 + op.loops)
        guard = ""
        if op.guards:
            parts = [("!" if g.negated else "") + g.source
                     for g in op.guards]
            guard = " [if " + " and ".join(parts) + "]"
        if op.kind in ("send", "recv"):
            arrow = "->" if op.kind == "send" else "<-"
            head = op.tag.head if op.tag else None
            lines.append(
                f"{indent}{op.kind} {arrow} {op.peer} "
                f"tag={op.tag.source if op.tag else '?'} "
                f"(head={head!r}, via={op.tag.resolved_via if op.tag else '?'})"
                f"{guard}"
            )
        elif op.kind == "collective":
            head = op.tag.head if op.tag else None
            lines.append(
                f"{indent}{op.fn}({op.comm}) tag head={head!r}{guard}"
            )
        elif op.kind == "split":
            lines.append(f"{indent}split({op.comm}){guard}")
        elif op.kind == "compute":
            lines.append(f"{indent}compute{guard}")
        else:
            lines.append(f"{indent}call {op.fn}(){guard}")
    return "\n".join(lines)


def to_dot(skeletons: Sequence[Skeleton]) -> str:
    """GraphViz DOT of skeleton call structure and channel heads."""
    lines = ["digraph commgraph {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    for sk in skeletons:
        node = sk.name.replace(".", "_")
        heads = sorted({
            repr(op.tag.head) for op in sk.ops
            if op.tag is not None and op.tag.head is not None
        })
        label = sk.name + "\\n" + ", ".join(heads)
        lines.append(f'  "{node}" [label="{label}"];')
        for callee in sk.calls:
            lines.append(f'  "{node}" -> "{callee}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines)
