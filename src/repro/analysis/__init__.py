"""Static analysis and dynamic checking for reproducibility guarantees.

The paper's headline results rest on two properties the code can silently
lose as it grows: *determinism* of the discrete-event simulated MPI (the
PFASST pipeline is only measurable because message matching is
schedule-independent) and *numerical hygiene* of the batched tree engine
(a stray float32 temporary or unseeded RNG corrupts the fine/coarse theta
equivalence the particle-coarsening result depends on).  This package
machine-checks both:

* :mod:`repro.analysis.lint` — ``repro-lint``, an AST-based project
  linter (rules RPR001-RPR005: unseeded RNG, nondeterminism sources,
  per-particle Python loops in hot modules, dtype drift, ``assert``-based
  checks in library code);
* :mod:`repro.analysis.commcheck` — protocol verification for the
  simulated MPI: wait-for-graph deadlock diagnostics, orphaned-message
  reports, and the byte-identity machinery behind
  ``Scheduler(verify=True)`` replay (a practical race detector for the
  event-driven runtime);
* :mod:`repro.analysis.commgraph` — ``repro-comm``, two-layer
  communication verification: static per-rank automata extracted from
  the rank-program generators (checks CG001-CG006 against the central
  tag registry :mod:`repro.parallel.tags`) and dynamic vector-clock
  certification (happens-before DAG, message races, schedule-independent
  determinism certificates);
* :mod:`repro.analysis.sanitize` — opt-in NaN/Inf and shape/dtype
  contract decorators gated behind ``REPRO_SANITIZE=1``, compiled to
  zero-overhead no-ops when the flag is unset;
* :mod:`repro.analysis.linkcheck` / :mod:`repro.analysis.clidoc` — docs
  enforcement: offline verification of every internal markdown link,
  and regeneration of ``docs/cli.md`` from the live ``--help`` output
  of each console tool (CI fails when either drifts).

See ``docs/static_analysis.md`` for the full rule catalogue.
"""

from repro.analysis.commcheck import (
    OrphanMessage,
    VerificationError,
    WaitForGraph,
    find_orphans,
    freeze,
)
from repro.analysis.sanitize import SanitizeError, boundary, enabled

_LINT_NAMES = ("RULES", "Violation", "lint_paths", "lint_source")


def __getattr__(name: str):
    # Lazy so that ``python -m repro.analysis.lint`` does not re-import
    # the module it is executing (runpy double-import warning).
    if name in _LINT_NAMES:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "OrphanMessage",
    "VerificationError",
    "WaitForGraph",
    "find_orphans",
    "freeze",
    "RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "SanitizeError",
    "boundary",
    "enabled",
]
