"""Unified observability: tracing, metrics and schedule rendering.

``repro.obs`` is the cross-cutting instrumentation layer for the solver:

* :mod:`repro.obs.tracer` — span/event tracer recording both wall-clock
  (``time.perf_counter``) and **simulated virtual-time** activity.  The
  module-level default is a zero-cost no-op (:data:`NULL_TRACER`);
  install a real :class:`Tracer` with :func:`use_tracer` /
  :func:`set_tracer` to record.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with labeled
  series, same no-op-by-default pattern (:data:`NULL_METRICS`).
* :mod:`repro.obs.timing` — the :class:`Timer` / :class:`TimingRegistry`
  phase timers (previously ``repro.utils.timing``), bridged into the
  active tracer.
* :mod:`repro.obs.export` — native trace files, Chrome ``trace_event``
  JSON (Perfetto) and CSV exporters.
* :mod:`repro.obs.gantt` — ASCII/SVG per-rank Gantt rendering of a
  traced PFASST schedule (the paper's Fig. 6).
* :mod:`repro.obs.cli` — the ``repro-trace`` command-line tool
  (``summarize`` / ``export`` / ``gantt`` / ``diff``).

Typical traced run::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics
    from repro.obs import save_trace

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        result = run_pfasst(cfg, specs, u0, p_time=4, tracer=tracer)
    save_trace(tracer, "trace.json", metrics=metrics)

See ``docs/observability.md`` for the full guide.
"""

from repro.obs.export import (
    TraceData,
    chrome_trace,
    export_chrome_trace,
    load_trace,
    save_trace,
    spans_to_csv,
)
from repro.obs.gantt import render_ascii, render_svg, span_family
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.timing import Timer, TimingRegistry, timed
from repro.obs.tracer import (
    Instant,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracer
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "Instant",
    "get_tracer", "set_tracer", "use_tracer",
    # metrics
    "MetricsRegistry", "NullMetrics", "NULL_METRICS",
    "Counter", "Gauge", "Histogram",
    "get_metrics", "set_metrics", "use_metrics",
    # timing
    "Timer", "TimingRegistry", "timed",
    # export / rendering
    "TraceData", "save_trace", "load_trace",
    "chrome_trace", "export_chrome_trace", "spans_to_csv",
    "render_ascii", "render_svg", "span_family",
]
