"""Trace and metrics exporters.

Three output formats:

* **native** (``save_trace`` / ``load_trace``) — a single JSON file
  (``{"format": "repro-trace", "version": 1, ...}``) holding spans,
  instants, a metrics snapshot and free-form metadata.  This is what the
  ``repro-trace`` CLI consumes and what benchmarks write alongside their
  ``BENCH_*.json`` results.
* **Chrome ``trace_event``** (``chrome_trace`` / ``export_chrome_trace``)
  — loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Virtual time is mapped onto the timeline (1 virtual second = 1 exported
  second) with one *thread per simulated rank* under the "virtual time"
  process; wall-clock spans appear under a separate "wall clock" process,
  shifted to start at zero.
* **CSV** (``spans_to_csv``, ``MetricsRegistry.to_csv``) — flat dumps for
  spreadsheet/pandas post-processing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracer import Instant, Span, Tracer

__all__ = [
    "TraceData",
    "save_trace",
    "load_trace",
    "chrome_trace",
    "export_chrome_trace",
    "spans_to_csv",
]

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

#: exported microseconds per virtual second (Chrome ``ts`` is in us)
_US = 1e6


@dataclass
class TraceData:
    """A loaded trace file: the same shape a :class:`Tracer` records."""

    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def tracks(self) -> List[str]:
        names = {s.track for s in self.spans}
        names.update(i.track for i in self.instants)
        return sorted(names)


TraceLike = Union[Tracer, TraceData]


def _span_dict(s: Span) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": s.name, "track": s.track, "t0": s.t0, "t1": s.t1,
        "clock": s.clock,
    }
    if s.cat:
        out["cat"] = s.cat
    if s.args:
        out["args"] = s.args
    return out


def _instant_dict(i: Instant) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": i.name, "track": i.track, "t": i.t, "clock": i.clock,
    }
    if i.cat:
        out["cat"] = i.cat
    if i.args:
        out["args"] = i.args
    return out


def save_trace(
    source: TraceLike,
    path: Union[str, Path],
    metrics: Optional[Union[MetricsRegistry, NullMetrics,
                            Dict[str, Any]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the native ``repro-trace`` JSON file; returns the path."""
    if metrics is None:
        snapshot: Dict[str, Any] = {}
    elif hasattr(metrics, "as_dict"):
        snapshot = metrics.as_dict()
    else:
        snapshot = dict(metrics)
    merged_meta = dict(getattr(source, "meta", {}) or {})
    merged_meta.update(meta or {})
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": merged_meta,
        "spans": [_span_dict(s) for s in source.spans],
        "instants": [_instant_dict(i) for i in source.instants],
        "metrics": snapshot,
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, default=str) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> TraceData:
    """Read a native trace file back into a :class:`TraceData`."""
    raw = json.loads(Path(path).read_text())
    if raw.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path}: not a {FORMAT_NAME} file "
            f"(format={raw.get('format')!r}); export Chrome JSON with "
            "'repro-trace export', not as the working format"
        )
    spans = [
        Span(name=d["name"], track=d["track"], t0=d["t0"], t1=d["t1"],
             clock=d.get("clock", "wall"), cat=d.get("cat", ""),
             args=d.get("args"))
        for d in raw.get("spans", [])
    ]
    instants = [
        Instant(name=d["name"], track=d["track"], t=d["t"],
                clock=d.get("clock", "virtual"), cat=d.get("cat", ""),
                args=d.get("args"))
        for d in raw.get("instants", [])
    ]
    return TraceData(spans=spans, instants=instants,
                     metrics=raw.get("metrics", {}),
                     meta=raw.get("meta", {}))


# -- Chrome trace_event ----------------------------------------------------
def _track_tid(track: str, fallback: Dict[str, int]) -> int:
    """Thread id for a track: ``rankN`` -> N, others densely from 1000."""
    if track.startswith("rank"):
        suffix = track[4:]
        if suffix.isdigit():
            return int(suffix)
    if track not in fallback:
        fallback[track] = 1000 + len(fallback)
    return fallback[track]


def chrome_trace(source: TraceLike) -> Dict[str, Any]:
    """Convert a recording to a Chrome ``trace_event`` JSON object.

    Virtual-clock records go to process 0 ("virtual time", one thread
    per rank); wall-clock records to process 1 ("wall clock"), shifted
    so the earliest wall timestamp is 0.
    """
    events: List[Dict[str, Any]] = []
    fallback_tids: Dict[str, int] = {}
    wall_times = [s.t0 for s in source.spans if s.clock == "wall"]
    wall_times += [i.t for i in source.instants if i.clock == "wall"]
    wall_zero = min(wall_times) if wall_times else 0.0

    def _pid_ts(clock: str, t: float) -> tuple:
        if clock == "virtual":
            return 0, t * _US
        return 1, (t - wall_zero) * _US

    seen_threads = set()
    for s in source.spans:
        pid, ts = _pid_ts(s.clock, s.t0)
        tid = _track_tid(s.track, fallback_tids)
        seen_threads.add((pid, tid, s.track))
        events.append({
            "name": s.name, "cat": s.cat or "span", "ph": "X",
            "ts": ts, "dur": max(s.t1 - s.t0, 0.0) * _US,
            "pid": pid, "tid": tid, "args": s.args or {},
        })
    for i in source.instants:
        pid, ts = _pid_ts(i.clock, i.t)
        tid = _track_tid(i.track, fallback_tids)
        seen_threads.add((pid, tid, i.track))
        events.append({
            "name": i.name, "cat": i.cat or "instant", "ph": "i",
            "ts": ts, "s": "t", "pid": pid, "tid": tid,
            "args": i.args or {},
        })

    meta_events: List[Dict[str, Any]] = []
    pids = sorted({pid for pid, _, _ in seen_threads})
    pid_names = {0: "virtual time (simulated ranks)", 1: "wall clock"}
    for pid in pids:
        meta_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": pid_names.get(pid, f"process {pid}")},
        })
    for pid, tid, track in sorted(seen_threads):
        meta_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
        meta_events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })

    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
        "otherData": dict(getattr(source, "meta", {}) or {}),
    }


def export_chrome_trace(source: TraceLike, path: Union[str, Path]) -> Path:
    """Write Chrome ``trace_event`` JSON; open in Perfetto to view."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source), indent=1, default=str)
                    + "\n")
    return path


def spans_to_csv(source: TraceLike) -> str:
    """Flat CSV of every span: track,name,clock,cat,t0,t1,duration."""
    rows = ["track,name,clock,cat,t0,t1,duration"]
    ordered = sorted(source.spans, key=lambda s: (s.clock, s.track, s.t0,
                                                  s.name))
    for s in ordered:
        rows.append(f"{s.track},{s.name},{s.clock},{s.cat},"
                    f"{s.t0:.9g},{s.t1:.9g},{s.duration:.9g}")
    return "\n".join(rows) + "\n"
