"""Per-rank Gantt rendering of a traced schedule (the paper's Fig. 6).

Turns the virtual-time spans of a traced ``run_pfasst`` (or any rank
program) into a schedule diagram:

* :func:`render_ascii` — one row per track, glyphs per span family,
  proportional to virtual time; the direct analogue of the paper's
  Fig. 6 and what ``repro-trace gantt`` prints.
* :func:`render_svg` — the same layout as standalone SVG (one colored
  rect per span with a hover title), for docs and reports without a
  Perfetto round-trip.

Span *families* collapse the per-iteration labels into a legend: the
family of ``sweep:L0:k2`` is ``sweep:L0``, of ``predict:1`` is
``predict`` — i.e. the label up to the last ``:``-separated counter
segment (pure-digit or ``k<digit>`` tails are stripped).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence
from xml.sax.saxutils import escape

from repro.obs.tracer import Span

__all__ = ["span_family", "render_ascii", "render_svg", "DEFAULT_GLYPHS"]

#: glyphs for the PFASST schedule families (Fig. 6 conventions):
#: predictor 'p', finest-level sweep 'F', coarser sweeps 'c', waits '.'
DEFAULT_GLYPHS: Dict[str, str] = {
    "predict": "p",
    "sweep:L0": "F",
    "sweep:L1": "c",
    "sweep:L2": "c",
    "warm-rebuild": "w",
    "wait:recv": ".",
    "compute": "#",
    "work": "#",
}

_FALLBACK_GLYPHS = "abdeghijklmnoqrstuvxyz"

#: fill colors per family for the SVG renderer (hex, cycled)
_SVG_COLORS = (
    "#4878cf", "#ee854a", "#6acc65", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
)


def span_family(name: str) -> str:
    """Collapse a span label to its family (strip counter tails)."""
    parts = name.split(":")
    while len(parts) > 1:
        tail = parts[-1]
        if tail.isdigit() or (len(tail) >= 2 and tail[0] in "k" and
                              tail[1:].isdigit()):
            parts = parts[:-1]
        else:
            break
    return ":".join(parts)


def _virtual_spans(spans: Iterable[Span]) -> List[Span]:
    return [s for s in spans if s.clock == "virtual"]


def _glyph_map(families: Sequence[str],
               glyphs: Optional[Dict[str, str]]) -> Dict[str, str]:
    table = dict(DEFAULT_GLYPHS)
    if glyphs:
        table.update(glyphs)
    out: Dict[str, str] = {}
    used = set(table.values())
    spare = [g for g in _FALLBACK_GLYPHS if g not in used]
    for fam in families:
        if fam in table:
            out[fam] = table[fam]
        else:
            out[fam] = spare.pop(0) if spare else "?"
    return out


def render_ascii(
    spans: Iterable[Span],
    width: int = 78,
    glyphs: Optional[Dict[str, str]] = None,
    include: Optional[Sequence[str]] = None,
) -> str:
    """ASCII Gantt chart of the virtual-time spans, one row per track.

    ``include`` restricts rendering to the given categories (default:
    ``phase`` spans only, which is the Fig. 6 view — pass ``None``-like
    ``("phase", "comm")`` to add waits).
    """
    cats = tuple(include) if include is not None else ("phase",)
    vspans = [s for s in _virtual_spans(spans) if s.cat in cats]
    if not vspans:
        return "(no virtual-time spans to render)"
    t_max = max(s.t1 for s in vspans)
    t_max = max(t_max, 1e-12)
    families = sorted({span_family(s.name) for s in vspans})
    glyph = _glyph_map(families, glyphs)
    tracks = sorted({s.track for s in vspans})
    label_w = max(len(t) for t in tracks)

    lines: List[str] = []
    for track in tracks:
        row = [" "] * width
        for s in sorted((s for s in vspans if s.track == track),
                        key=lambda s: s.t0):
            a = int(s.t0 / t_max * (width - 1))
            b = max(a + 1, int(s.t1 / t_max * (width - 1)))
            g = glyph[span_family(s.name)]
            for i in range(a, min(b, width)):
                row[i] = g
        lines.append(f"{track:<{label_w}s} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    legend = ", ".join(f"{glyph[f]} = {f}" for f in families)
    lines.append(f"{'':<{label_w}s}  {legend}; time ->")
    return "\n".join(lines)


def render_svg(
    spans: Iterable[Span],
    width: int = 900,
    row_height: int = 22,
    include: Optional[Sequence[str]] = None,
) -> str:
    """Standalone SVG Gantt chart of the virtual-time spans."""
    cats = tuple(include) if include is not None else ("phase", "comm")
    vspans = [s for s in _virtual_spans(spans) if s.cat in cats]
    tracks = sorted({s.track for s in vspans})
    families = sorted({span_family(s.name) for s in vspans})
    color = {fam: _SVG_COLORS[i % len(_SVG_COLORS)]
             for i, fam in enumerate(families)}
    t_max = max((s.t1 for s in vspans), default=1.0)
    t_max = max(t_max, 1e-12)
    label_w = 90
    plot_w = width - label_w - 10
    legend_h = 18 * (len(families) + 1)
    height = row_height * max(len(tracks), 1) + 30 + legend_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for row, track in enumerate(tracks):
        y = 10 + row * row_height
        parts.append(
            f'<text x="4" y="{y + row_height * 0.7:.1f}">'
            f'{escape(str(track))}</text>')
        parts.append(
            f'<line x1="{label_w}" y1="{y + row_height - 2}" '
            f'x2="{width - 10}" y2="{y + row_height - 2}" '
            f'stroke="#ddd"/>')
        for s in vspans:
            if s.track != track:
                continue
            x = label_w + s.t0 / t_max * plot_w
            w = max((s.t1 - s.t0) / t_max * plot_w, 0.75)
            fam = span_family(s.name)
            parts.append(
                f'<rect x="{x:.2f}" y="{y + 2}" width="{w:.2f}" '
                f'height="{row_height - 6}" fill="{color[fam]}" '
                f'fill-opacity="0.85"><title>{escape(str(s.name))} '
                f'[{s.t0:.6g}, {s.t1:.6g}]s</title></rect>')
    y0 = 20 + row_height * max(len(tracks), 1)
    parts.append(f'<text x="4" y="{y0}">legend (virtual time, '
                 f'makespan {t_max:.6g}s):</text>')
    for i, fam in enumerate(families):
        y = y0 + 16 * (i + 1)
        parts.append(f'<rect x="8" y="{y - 9}" width="12" height="10" '
                     f'fill="{color[fam]}"/>')
        parts.append(f'<text x="26" y="{y}">{escape(str(fam))}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
