"""Metrics registry: named counters, gauges and histograms.

Replaces the ad-hoc private counters that used to be scattered across the
code base (``Scheduler.stats_messages``, ``TreeStateCache`` hit/miss
pairs, per-evaluator call counts) with one exportable substrate:

* **counters** — monotonically increasing integers/floats (messages and
  bytes per rank pair, MAC tests, retransmissions, sanitizer
  activations);
* **gauges** — last-written values (cache sizes, alpha estimates);
* **histograms** — streaming count/total/min/max summaries (interaction
  list sizes, per-iteration residuals) without storing every sample.

Metrics may carry **labels** (``counter("mpi.bytes", src=0, dest=1)``);
each label combination is its own series, rendered as
``name{dest=1,src=0}`` in exports (keys sorted, so naming is
deterministic).

Like the tracer, the module-level registry defaults to
:data:`NULL_METRICS`, whose factory methods return shared no-op
instruments — call sites pay one ``enabled`` check and zero allocations
when metrics are off.  Components that *own* a registry (the simulated
MPI scheduler) create a real one unconditionally: their instrument
updates are O(ranks²), nowhere near a hot path.

Export with :func:`MetricsRegistry.as_dict`, ``to_json`` or ``to_csv``,
or bundle into a trace file via :func:`repro.obs.export.save_trace`.
"""

from __future__ import annotations

import csv
import io
import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical series name: ``name{k1=v1,k2=v2}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotone accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary (count/total/min/max); no samples retained."""

    __slots__ = ("name", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.vmin: float = float("inf")
        self.vmax: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.vmin,
                "max": self.vmax, "mean": self.mean}


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Inactive registry: factories return a shared no-op instrument."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Live registry; instruments are created on first use and reused."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- factories ------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series_key(name, labels)
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter(key)
        return found

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series_key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge(key)
        return found

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _series_key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(key)
        return found

    # -- export ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready snapshot, keys sorted for deterministic output."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].summary()
                           for k in sorted(self._histograms)},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_csv(self) -> str:
        """Flat ``kind,name,field,value`` rows (one histogram field per
        row), deterministic order.

        Fields are quoted per RFC 4180 via :mod:`csv`: multi-label series
        names are comma-joined (``msg_bytes{dst=1,src=0}``), so writing
        them unquoted would split one name across several columns and
        corrupt every per-rank-pair scheduler metric.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["kind", "name", "field", "value"])
        snapshot = self.as_dict()
        for name, value in snapshot["counters"].items():
            writer.writerow(["counter", name, "value", value])
        for name, value in snapshot["gauges"].items():
            writer.writerow(["gauge", name, "value", value])
        for name, summary in snapshot["histograms"].items():
            for fld in ("count", "total", "min", "max", "mean"):
                writer.writerow(["histogram", name, fld, summary[fld]])
        return buf.getvalue()

    def merge(self, other: "MetricsRegistry | Dict[str, Dict[str, Any]]") -> None:
        """Fold another registry (or an ``as_dict`` snapshot) into this
        one: counters add, gauges overwrite, histogram summaries add."""
        snap = other.as_dict() if hasattr(other, "as_dict") else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snap.get("histograms", {}).items():
            if not summary or not summary.get("count"):
                continue
            h = self.histogram(name)
            h.count += int(summary["count"])
            h.total += summary["total"]
            h.vmin = min(h.vmin, summary["min"])
            h.vmax = max(h.vmax, summary["max"])


#: the module-level active registry (no-op unless replaced)
_ACTIVE: NullMetrics | MetricsRegistry = NULL_METRICS


def get_metrics() -> NullMetrics | MetricsRegistry:
    """The active registry; :data:`NULL_METRICS` unless one was installed."""
    return _ACTIVE


def set_metrics(registry: Optional[NullMetrics | MetricsRegistry]) -> None:
    """Install ``registry`` globally (``None`` restores the no-op)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_METRICS


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped installation: the previous registry is restored on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
