"""Wall-clock phase timing, bridged into the tracer.

This module is the home of :class:`Timer` / :class:`TimingRegistry`
(historically ``repro.utils.timing``, which remains as a re-exporting
shim).  The tree code and the PFASST sweepers need fine-grained phase
timings (tree build, moments, traversal, far/near summation; sweeps per
level) so the benchmark harness can reproduce the per-phase breakdowns of
the paper (Fig. 5) and feed measured compute costs into the virtual-time
scheduler (Fig. 8).

When a tracer is installed globally (:func:`repro.obs.tracer.use_tracer`),
every :meth:`TimingRegistry.phase` activation is *also* recorded as a
wall-clock span — so a traced run gets the tree pipeline's
``tree_build`` / ``moments`` / ``traverse`` / ``layout`` / ``far_field``
/ ``near_field`` phases on its timeline without any per-call-site
instrumentation.  With the default null tracer the cost is a single
attribute check per phase activation; the accumulating-timer behaviour is
unchanged either way.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs.tracer import get_tracer

__all__ = ["Timer", "TimingRegistry", "timed"]


@dataclass
class Timer:
    """Accumulating stopwatch for a single named phase.

    Supports nested use as a context manager; ``elapsed`` accumulates across
    activations and ``count`` records the number of completed activations.
    """

    name: str = ""
    elapsed: float = 0.0
    count: int = 0
    _started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        dt = time.perf_counter() - self._started
        self._started = None
        self.elapsed += dt
        self.count += 1
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._started = None

    @property
    def mean(self) -> float:
        """Mean elapsed time per completed activation (0.0 if never run)."""
        return self.elapsed / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimingRegistry:
    """A set of named :class:`Timer` objects keyed by phase name."""

    timers: Dict[str, Timer] = field(default_factory=dict)

    def timer(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name=name)
        return self.timers[name]

    @contextmanager
    def phase(self, name: str) -> Iterator[Timer]:
        t = self.timer(name)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(name, cat="phase"):
                t.start()
                try:
                    yield t
                finally:
                    t.stop()
            return
        t.start()
        try:
            yield t
        finally:
            t.stop()

    def elapsed(self, name: str) -> float:
        return self.timers[name].elapsed if name in self.timers else 0.0

    def reset(self) -> None:
        for t in self.timers.values():
            t.reset()

    def report(self) -> str:
        """Human-readable one-line-per-phase summary, longest first."""
        rows: List[str] = []
        for name, t in sorted(
            self.timers.items(), key=lambda kv: -kv[1].elapsed
        ):
            rows.append(
                f"{name:<28s} {t.elapsed:10.4f}s  x{t.count:<6d} "
                f"mean {t.mean * 1e3:9.3f}ms"
            )
        return "\n".join(rows)

    def as_dict(self) -> Dict[str, float]:
        return {name: t.elapsed for name, t in self.timers.items()}


@contextmanager
def timed() -> Iterator[Timer]:
    """Measure a single block: ``with timed() as t: ...; t.elapsed``."""
    t = Timer(name="block")
    t.start()
    try:
        yield t
    finally:
        if t._started is not None:
            t.stop()
