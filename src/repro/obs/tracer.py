"""Span/event tracer with a zero-cost no-op default.

The observability layer records two kinds of facts about a run:

* **spans** — named intervals with a begin and an end, on a *track*
  (a simulated MPI rank, or ``"main"`` for serial code), against one of
  two clocks: ``"wall"`` (``time.perf_counter`` seconds) or ``"virtual"``
  (the simulated-MPI scheduler's per-rank clocks);
* **instants** — labelled points in time (a message send, a fault
  injection, a residual sample), with optional structured ``args``.

The module-level *active tracer* defaults to :data:`NULL_TRACER`, whose
``span()`` returns a shared singleton context manager and whose event
methods are empty — instrumented call sites pay one attribute check and
**zero allocations** when tracing is off (the regression test in
``tests/test_obs_tracer.py`` pins this, mirroring the ``REPRO_SANITIZE``
identity-decorator contract).  Enable tracing by passing a
:class:`Tracer` to the component (``Scheduler(tracer=...)``,
``run_pfasst(..., tracer=...)``) or by installing one globally::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        evaluator.field(positions, charges)   # phase timings become spans
    print(len(tracer.spans))

Virtual-time spans are recorded post hoc via :meth:`Tracer.vspan` (the
scheduler knows both endpoints when the span closes); wall-clock spans
via the :meth:`Tracer.span` context manager.  ``begin:<name>`` /
``end:<name>`` annotation pairs (the simulated-MPI ``Annotate`` op used
by the PFASST controller for Fig. 6 schedules) are folded into virtual
spans by :meth:`Tracer.annotate`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Instant",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One closed interval ``[t0, t1]`` on a named track."""

    name: str
    track: str
    t0: float
    t1: float
    #: ``"wall"`` (perf_counter seconds) or ``"virtual"`` (scheduler clock)
    clock: str = "wall"
    #: coarse grouping for exporters ("phase", "compute", "comm", ...)
    cat: str = ""
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Instant:
    """One labelled point in time on a named track."""

    name: str
    track: str
    t: float
    clock: str = "virtual"
    cat: str = ""
    args: Optional[Dict[str, Any]] = None


class _NullSpan:
    """Shared do-nothing context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, **args: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Inactive tracer: every method is a no-op, ``span()`` allocates
    nothing (it returns a module-level singleton)."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, *, track: str = "main", cat: str = "",
             args: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return _NULL_SPAN

    def vspan(self, name: str, t0: float, t1: float, *, track: str = "main",
              cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def wspan(self, name: str, t0: float, t1: float, *, track: str = "main",
              cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def instant(self, name: str, t: Optional[float] = None, *,
                track: str = "main", clock: str = "virtual", cat: str = "",
                args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def annotate(self, track: str, label: str, t: float,
                 data: Optional[Dict[str, Any]] = None) -> None:
        return None


NULL_TRACER = NullTracer()


class _WallSpan:
    """Live wall-clock span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_track", "_cat", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, track: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._name = name
        self._track = track
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def add(self, **args: Any) -> "_WallSpan":
        """Attach extra key/value payload to the span."""
        if self._args is None:
            self._args = {}
        self._args.update(args)
        return self

    def __enter__(self) -> "_WallSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        self._tracer.spans.append(
            Span(name=self._name, track=self._track, t0=self._t0, t1=t1,
                 clock="wall", cat=self._cat, args=self._args)
        )
        return False


class Tracer:
    """In-memory recording tracer.

    Collects :class:`Span` and :class:`Instant` records; exporters
    (:mod:`repro.obs.export`) turn the recording into Chrome
    ``trace_event`` JSON, the native ``repro-trace`` file format, or a
    Gantt rendering (:mod:`repro.obs.gantt`).
    """

    enabled = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.meta: Dict[str, Any] = dict(meta or {})
        #: open ``begin:`` annotations awaiting their ``end:`` twin
        self._open: Dict[Tuple[str, str], Tuple[float, Optional[Dict[str, Any]]]] = {}

    # -- recording ------------------------------------------------------
    def span(self, name: str, *, track: str = "main", cat: str = "",
             args: Optional[Dict[str, Any]] = None) -> _WallSpan:
        """Context manager timing a wall-clock span."""
        return _WallSpan(self, name, track, cat, args)

    def vspan(self, name: str, t0: float, t1: float, *, track: str = "main",
              cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed virtual-time span ``[t0, t1]``."""
        self.spans.append(
            Span(name=name, track=track, t0=t0, t1=t1, clock="virtual",
                 cat=cat, args=args)
        )

    def wspan(self, name: str, t0: float, t1: float, *, track: str = "main",
              cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed *wall-clock* span measured elsewhere.

        The executor's worker processes time their tasks with their own
        ``perf_counter`` (CLOCK_MONOTONIC is system-wide on Linux, so
        the endpoints are directly comparable across processes) and the
        scheduler records them post hoc — one ``worker<i>`` track per
        pool worker, genuinely overlapping under real parallelism.
        """
        self.spans.append(
            Span(name=name, track=track, t0=t0, t1=t1, clock="wall",
                 cat=cat, args=args)
        )

    def instant(self, name: str, t: Optional[float] = None, *,
                track: str = "main", clock: str = "virtual", cat: str = "",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event (``t=None`` stamps the wall clock)."""
        if t is None:
            t = time.perf_counter()
            clock = "wall"
        self.instants.append(
            Instant(name=name, track=track, t=t, clock=clock, cat=cat,
                    args=args)
        )

    def annotate(self, track: str, label: str, t: float,
                 data: Optional[Dict[str, Any]] = None) -> None:
        """Fold ``begin:X`` / ``end:X`` label pairs into virtual spans.

        Labels without the prefix become instants.  Unbalanced ``begin``
        annotations stay open (they are dropped, matching the permissive
        semantics of the scheduler's raw trace list); an ``end`` without
        a ``begin`` is recorded as an instant so it remains visible.
        """
        kind, sep, rest = label.partition(":")
        if sep and kind == "begin":
            self._open[(track, rest)] = (t, data)
            return
        if sep and kind == "end":
            opened = self._open.pop((track, rest), None)
            if opened is not None:
                t0, begin_data = opened
                args = dict(begin_data or {})
                if data:
                    args.update(data)
                self.vspan(rest, t0, t, track=track, cat="phase",
                           args=args or None)
                return
        self.instant(label, t=t, track=track, clock="virtual", cat="mark",
                     args=data)

    # -- introspection --------------------------------------------------
    def tracks(self) -> List[str]:
        """Sorted names of every track that recorded anything."""
        names = {s.track for s in self.spans}
        names.update(i.track for i in self.instants)
        return sorted(names)

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._open.clear()


#: the module-level active tracer (zero-cost no-op unless replaced)
_ACTIVE: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The active tracer; :data:`NULL_TRACER` unless one was installed."""
    return _ACTIVE


def set_tracer(tracer: Optional[NullTracer | Tracer]) -> None:
    """Install ``tracer`` globally (``None`` restores the no-op)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped installation: the previous tracer is restored on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
