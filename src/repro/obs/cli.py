"""``repro-trace`` — inspect, export and compare trace files.

Subcommands (all consume the *native* trace format written by
:func:`repro.obs.export.save_trace`):

``summarize FILE``
    Per-track span totals (grouped by family), instant counts, metrics
    snapshot and virtual makespan.
``export FILE -o OUT [--format chrome|csv|metrics-json|metrics-csv]``
    Convert to Chrome ``trace_event`` JSON (Perfetto-loadable), a flat
    span CSV, or a metrics dump.
``gantt FILE [--width N] [--svg OUT] [--cats phase,comm]``
    ASCII Gantt chart of the schedule (Fig. 6 view); optionally write an
    SVG alongside.
``diff A B``
    Compare per-(track, family) busy time and makespan of two traces —
    the before/after view for performance work.

Also reachable as ``python -m repro trace <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.export import (
    TraceData,
    chrome_trace,
    export_chrome_trace,
    load_trace,
    spans_to_csv,
)
from repro.obs.gantt import render_ascii, render_svg, span_family

__all__ = ["main", "build_parser", "summarize_text", "diff_text"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="inspect, export and diff repro observability traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-track totals and metrics")
    p_sum.add_argument("file", help="native trace JSON")

    p_exp = sub.add_parser("export", help="convert to chrome/csv/metrics")
    p_exp.add_argument("file", help="native trace JSON")
    p_exp.add_argument("-o", "--output", required=True, help="output path")
    p_exp.add_argument("--format", default="chrome",
                       choices=["chrome", "csv", "metrics-json",
                                "metrics-csv"])

    p_gantt = sub.add_parser("gantt", help="ASCII/SVG schedule chart")
    p_gantt.add_argument("file", help="native trace JSON")
    p_gantt.add_argument("--width", type=int, default=78)
    p_gantt.add_argument("--svg", default=None,
                         help="also write an SVG rendering to this path")
    p_gantt.add_argument("--cats", default="phase",
                         help="comma-separated span categories to draw")

    p_diff = sub.add_parser("diff", help="compare two traces")
    p_diff.add_argument("a", help="baseline trace JSON")
    p_diff.add_argument("b", help="candidate trace JSON")
    return parser


# -- summarize -------------------------------------------------------------
def _busy_by_track_family(
    data: TraceData,
) -> Dict[Tuple[str, str], Tuple[float, int]]:
    """(track, family) -> (total busy seconds on the span's clock, count)."""
    out: Dict[Tuple[str, str], Tuple[float, int]] = defaultdict(
        lambda: (0.0, 0)
    )
    for s in data.spans:
        key = (s.track, span_family(s.name))
        total, count = out[key]
        out[key] = (total + s.duration, count + 1)
    return dict(out)


def _makespan(data: TraceData) -> float:
    return max((s.t1 for s in data.spans if s.clock == "virtual"),
               default=0.0)


def summarize_text(data: TraceData) -> str:
    lines: List[str] = []
    n_v = sum(1 for s in data.spans if s.clock == "virtual")
    n_w = len(data.spans) - n_v
    lines.append(f"spans: {len(data.spans)} ({n_v} virtual, {n_w} wall); "
                 f"instants: {len(data.instants)}; "
                 f"tracks: {', '.join(data.tracks()) or '(none)'}")
    makespan = _makespan(data)
    if makespan:
        lines.append(f"virtual makespan: {makespan:.6g}s")
    if data.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(data.meta.items()))
        lines.append(f"meta: {meta}")
    busy = _busy_by_track_family(data)
    if busy:
        lines.append("")
        lines.append(f"{'track':<10s} {'span family':<24s} "
                     f"{'count':>6s} {'busy [s]':>12s}")
        for (track, family), (total, count) in sorted(busy.items()):
            lines.append(f"{track:<10s} {family:<24s} {count:>6d} "
                         f"{total:>12.6g}")
    if data.instants:
        counts: Dict[str, int] = defaultdict(int)
        for i in data.instants:
            counts[i.cat or i.name] += 1
        rendered = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        lines.append("")
        lines.append(f"instants by kind: {rendered}")
    metrics = data.metrics or {}
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<40s} {counters[name]}")
    for kind in ("gauges", "histograms"):
        entries = metrics.get(kind, {})
        if entries:
            lines.append(f"{kind}:")
            for name in sorted(entries):
                lines.append(f"  {name:<40s} {entries[name]}")
    return "\n".join(lines)


# -- diff ------------------------------------------------------------------
def diff_text(a: TraceData, b: TraceData,
              label_a: str = "A", label_b: str = "B") -> str:
    busy_a = _busy_by_track_family(a)
    busy_b = _busy_by_track_family(b)
    keys = sorted(set(busy_a) | set(busy_b))
    lines = [
        f"{'track':<10s} {'span family':<24s} {label_a + ' [s]':>12s} "
        f"{label_b + ' [s]':>12s} {'delta':>10s}"
    ]
    for key in keys:
        ta = busy_a.get(key, (0.0, 0))[0]
        tb = busy_b.get(key, (0.0, 0))[0]
        delta = tb - ta
        rel = f"{delta / ta * 100:+.1f}%" if ta else "new"
        track, family = key
        lines.append(f"{track:<10s} {family:<24s} {ta:>12.6g} {tb:>12.6g} "
                     f"{rel:>10s}")
    ma, mb = _makespan(a), _makespan(b)
    if ma or mb:
        rel = f"{(mb - ma) / ma * 100:+.1f}%" if ma else "new"
        lines.append(f"{'':<10s} {'virtual makespan':<24s} {ma:>12.6g} "
                     f"{mb:>12.6g} {rel:>10s}")
    return "\n".join(lines)


# -- entry point -----------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "summarize":
        print(summarize_text(load_trace(args.file)))
        return 0

    if args.command == "export":
        data = load_trace(args.file)
        out = Path(args.output)
        if args.format == "chrome":
            export_chrome_trace(data, out)
            n = len(chrome_trace(data)["traceEvents"])
            print(f"wrote {out} ({n} trace events); open in "
                  "https://ui.perfetto.dev")
        elif args.format == "csv":
            out.write_text(spans_to_csv(data))
            print(f"wrote {out} ({len(data.spans)} spans)")
        elif args.format == "metrics-json":
            import json

            out.write_text(json.dumps(data.metrics, indent=2) + "\n")
            print(f"wrote {out}")
        else:  # metrics-csv
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.merge(data.metrics)
            out.write_text(registry.to_csv())
            print(f"wrote {out}")
        return 0

    if args.command == "gantt":
        data = load_trace(args.file)
        cats = tuple(c.strip() for c in args.cats.split(",") if c.strip())
        print(render_ascii(data.spans, width=args.width, include=cats))
        if args.svg:
            Path(args.svg).write_text(render_svg(data.spans, include=cats))
            print(f"\nwrote {args.svg}")
        return 0

    if args.command == "diff":
        a, b = load_trace(args.a), load_trace(args.b)
        print(diff_text(a, b, label_a=Path(args.a).stem,
                        label_b=Path(args.b).stem))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
