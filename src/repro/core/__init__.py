"""Core facade: solver configuration and the `SpaceTimeSolver` entry point."""

from repro.core.config import SolverConfig, SpaceConfig, TimeConfig
from repro.core.solver import SpaceTimeSolver, RunResult

__all__ = [
    "SolverConfig",
    "SpaceConfig",
    "TimeConfig",
    "SpaceTimeSolver",
    "RunResult",
]
