"""Run configuration for the space-time parallel solver facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.utils.validation import check_in, check_positive

__all__ = ["SpaceConfig", "TimeConfig", "SolverConfig"]

EvaluatorKind = Literal["direct", "tree"]
Method = Literal["euler", "rk2", "rk3", "rk4", "sdc", "pfasst"]


@dataclass(frozen=True)
class SpaceConfig:
    """Spatial (RHS evaluation) parameters.

    ``theta_coarse`` only matters for PFASST: it defines the cheaper coarse
    propagator via the multipole acceptance criterion — the paper's
    particle-based coarsening (0.3 fine / 0.6 coarse in Sec. IV-B).
    """

    evaluator: EvaluatorKind = "tree"
    kernel: str = "algebraic6"
    theta: float = 0.3
    theta_coarse: float = 0.6
    multipole_order: int = 2
    leaf_size: int = 48
    stretching: Literal["transpose", "classical"] = "transpose"

    def __post_init__(self) -> None:
        check_in("evaluator", self.evaluator, ("direct", "tree"))
        if self.theta < 0 or self.theta_coarse < 0:
            raise ValueError("theta values must be >= 0")
        check_in("multipole_order", self.multipole_order, (0, 1, 2))


@dataclass(frozen=True)
class TimeConfig:
    """Temporal integration parameters.

    ``method="pfasst"`` maps to the paper's ``PFASST(X, Y, P_T)`` with
    ``X = iterations``, ``Y = coarse_sweeps``, ``P_T = p_time``.
    ``p_nodes > 1`` adds the third grid dimension (PFASST-ER): each time
    rank becomes a group of ``p_nodes`` ranks sharding the collocation
    nodes; ``sweeper="diagonal"`` makes the sweep updates themselves
    node-parallel.
    """

    method: Method = "sdc"
    t0: float = 0.0
    t_end: float = 4.0
    dt: float = 0.5
    # SDC / PFASST fine level
    num_nodes: int = 3
    sweeps: int = 4
    node_type: str = "lobatto"
    sweeper: str = "gauss-seidel"
    # PFASST
    iterations: int = 2
    coarse_nodes: int = 2
    coarse_sweeps: int = 2
    p_time: int = 4
    p_nodes: int = 1
    residual_tol: Optional[float] = None

    def __post_init__(self) -> None:
        check_in(
            "method", self.method, ("euler", "rk2", "rk3", "rk4", "sdc", "pfasst")
        )
        check_in("sweeper", self.sweeper, ("gauss-seidel", "diagonal"))
        if self.p_nodes < 1:
            raise ValueError(f"p_nodes must be >= 1, got {self.p_nodes}")
        check_positive("dt", self.dt)
        if not self.t_end > self.t0:
            raise ValueError("t_end must be > t0")

    @property
    def n_steps(self) -> int:
        span = self.t_end - self.t0
        n = int(round(span / self.dt))
        if abs(n * self.dt - span) > 1e-9 * max(1.0, abs(span)):
            raise ValueError(
                f"(t_end - t0) = {span} is not an integer multiple of dt = {self.dt}"
            )
        return n


@dataclass(frozen=True)
class SolverConfig:
    """Complete space-time solver configuration."""

    space: SpaceConfig = field(default_factory=SpaceConfig)
    time: TimeConfig = field(default_factory=TimeConfig)
