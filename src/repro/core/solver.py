"""`SpaceTimeSolver`: one entry point for every integration mode.

Wires a particle system to a field evaluator (direct or Barnes-Hut tree)
and drives it with a classical Runge-Kutta scheme, serial SDC, or PFASST —
the combinations the paper compares.  This is the public API exercised by
the examples and benchmarks; the underlying packages remain fully usable
on their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import SolverConfig, SpaceConfig, TimeConfig
from repro.integrators import get_integrator
from repro.pfasst import LevelSpec, PfasstConfig, run_pfasst
from repro.sdc import SDCStepper
from repro.tree import TreeEvaluator
from repro.vortex import (
    DirectEvaluator,
    FieldEvaluator,
    ParticleSystem,
    VortexProblem,
    get_kernel,
)

__all__ = ["RunResult", "SpaceTimeSolver"]


@dataclass
class RunResult:
    """Outcome of a space-time solver run."""

    final: ParticleSystem
    config: SolverConfig
    #: total RHS evaluations of the fine evaluator
    fine_evals: int
    #: total RHS evaluations of the coarse evaluator (PFASST only)
    coarse_evals: int
    #: measured wall-clock spent inside the fine evaluator (s)
    fine_eval_seconds: float
    coarse_eval_seconds: float
    #: PFASST fine residual history per rank (empty otherwise)
    residuals: List[List[float]] = field(default_factory=list)

    @property
    def alpha_measured(self) -> Optional[float]:
        """Measured coarse/fine per-evaluation cost ratio (PFASST runs)."""
        if self.coarse_evals == 0 or self.fine_evals == 0:
            return None
        fine = self.fine_eval_seconds / self.fine_evals
        coarse = self.coarse_eval_seconds / self.coarse_evals
        return coarse / fine if fine > 0 else None


class SpaceTimeSolver:
    """Facade over the vortex problem + evaluators + time integrators."""

    def __init__(
        self,
        particles: ParticleSystem,
        sigma: float,
        config: SolverConfig | None = None,
    ) -> None:
        self.particles = particles
        self.sigma = float(sigma)
        self.config = config or SolverConfig()
        self.fine_evaluator = self._make_evaluator(self.config.space.theta)
        if isinstance(self.fine_evaluator, TreeEvaluator):
            # the theta pair shares one tree-state cache: one build + one
            # moment pass per particle configuration, two traversals
            self.coarse_evaluator = self.fine_evaluator.coarsened(
                self.config.space.theta_coarse
            )
        else:
            self.coarse_evaluator = self._make_evaluator(
                self.config.space.theta_coarse
            )
        self.problem = VortexProblem(
            particles.volumes, self.fine_evaluator, self.config.space.stretching
        )
        self.coarse_problem = self.problem.with_evaluator(self.coarse_evaluator)

    def _make_evaluator(self, theta: float) -> FieldEvaluator:
        space = self.config.space
        kernel = get_kernel(space.kernel)
        if space.evaluator == "direct":
            return DirectEvaluator(kernel, self.sigma)
        return TreeEvaluator(
            kernel,
            self.sigma,
            theta=theta,
            order=space.multipole_order,
            leaf_size=space.leaf_size,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        callback: Optional[Callable[[float, np.ndarray], None]] = None,
    ) -> RunResult:
        """Integrate the configured problem and return the final state."""
        tc = self.config.time
        u0 = self.particles.state()
        self.fine_evaluator.reset_stats()
        self.coarse_evaluator.reset_stats()
        residuals: List[List[float]] = []

        if tc.method in ("euler", "rk2", "rk3", "rk4"):
            integ = get_integrator(tc.method)
            u_end = integ.run(self.problem, u0, tc.t0, tc.t_end, tc.dt, callback)
        elif tc.method == "sdc":
            stepper = SDCStepper(
                self.problem,
                num_nodes=tc.num_nodes,
                sweeps=tc.sweeps,
                node_type=tc.node_type,
                residual_tol=tc.residual_tol,
                sweeper=tc.sweeper,
            )
            u_end = stepper.run(u0, tc.t0, tc.t_end, tc.dt, callback)
        elif tc.method == "pfasst":
            cfg = PfasstConfig(
                t0=tc.t0,
                t_end=tc.t_end,
                n_steps=tc.n_steps,
                iterations=tc.iterations,
                residual_tol=tc.residual_tol,
            )
            specs = [
                LevelSpec(self.problem, num_nodes=tc.num_nodes, sweeps=1,
                          node_type=tc.node_type, sweeper=tc.sweeper),
                LevelSpec(self.coarse_problem, num_nodes=tc.coarse_nodes,
                          sweeps=tc.coarse_sweeps, node_type=tc.node_type,
                          sweeper=tc.sweeper),
            ]
            result = run_pfasst(cfg, specs, u0, p_time=tc.p_time,
                                p_nodes=tc.p_nodes)
            u_end = result.u_end
            residuals = result.residuals
        else:  # pragma: no cover - guarded by config validation
            raise ValueError(f"unknown method {tc.method!r}")

        return RunResult(
            final=self.particles.with_state(u_end),
            config=self.config,
            fine_evals=self.fine_evaluator.calls,
            coarse_evals=self.coarse_evaluator.calls,
            fine_eval_seconds=self.fine_evaluator.timer.elapsed,
            coarse_eval_seconds=self.coarse_evaluator.timer.elapsed,
            residuals=residuals,
        )
