"""Pluggable execution backends for the simulated-MPI scheduler.

The discrete-event scheduler (:mod:`repro.parallel.simmpi`) owns virtual
time, message ordering, fault injection and the ``verify=True`` replay
contract — none of that moves here.  What an execution backend owns is
the *compute payload between yields*: a rank program may yield a
:class:`Compute` operation wrapping a :class:`ComputeTask` (a picklable
descriptor "call ``method`` on registered payload ``key`` with these
arguments"), and the backend decides where that call runs:

* :class:`SerialExecutor` — runs the task inline, in-process, at the
  yield point.  Results, virtual clocks and op streams are byte-identical
  to a scheduler without any executor attached (the byte-identity suite
  in ``tests/test_executor.py`` pins this).
* :class:`ProcessExecutor` — runs tasks on a
  :class:`concurrent.futures.ProcessPoolExecutor`.  The scheduler defers
  every ``Compute``-blocked rank until no further event-loop progress is
  possible, then flushes the accumulated *batch* through
  :meth:`ProcessExecutor.dispatch` — concurrently runnable work
  (independent RHS evaluations across time ranks, per-row space segments)
  lands on real cores in one barrier round.  Input arrays travel through
  :mod:`multiprocessing.shared_memory` blocks (created per dispatch,
  unlinked immediately after the barrier); results return pickled.

Payload objects (problems with their evaluators and tree-state caches)
are registered up front under stable string keys and shipped to the
workers **once**, at pool start-up, via the pool initializer — per-task
traffic is only the state array, the small ``args``/``tail`` scalars and
the result.  Workers keep their (forked/unpickled) payload copies alive
across tasks, so tree-state caches warm up per worker exactly as the
in-process evaluator's cache does.

Every task runs under a fresh per-task :class:`MetricsRegistry`
(installed via ``use_metrics``), and the deltas are bucketed per worker
id.  The scheduler folds the buckets into its own registry at the end of
the run, **sorted by worker id**, so merged counter totals are
deterministic and — for everything except cache hit/miss splits, which
depend on task placement — exactly equal between backends.

Process-safety of the task descriptors is enforced statically by
``repro-lint`` rule RPR006 (no lambdas inside ``ComputeTask(...)``
construction, ``method`` must be a string literal) and dynamically by
:class:`PayloadPicklingError` at registration/dispatch time.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, use_metrics

__all__ = [
    "ComputeTask",
    "Compute",
    "DispatchResult",
    "DispatchContext",
    "PayloadPicklingError",
    "ExecutionBackend",
    "SerialExecutor",
    "ProcessExecutor",
]


class PayloadPicklingError(TypeError):
    """A payload required by a process backend cannot be pickled.

    Raised instead of the advisory ``UserWarning`` fallback of
    :func:`repro.parallel.simmpi.payload_bytes`: under a
    :class:`ProcessExecutor` an unpicklable message payload or compute
    argument is not a cost-model inaccuracy but a correctness bug — the
    silent 64-byte guess would let the program run on data that can never
    cross a process boundary and deadlock (or crash) the dispatch
    barrier.  The error names the offending rank/tag (message path) or
    payload key/method (compute path).
    """

    def __init__(
        self,
        type_name: str,
        *,
        rank: Optional[int] = None,
        dest: Optional[int] = None,
        tag: Optional[Hashable] = None,
        payload_key: Optional[str] = None,
        method: Optional[str] = None,
        cause: Optional[BaseException] = None,
    ) -> None:
        self.type_name = type_name
        self.rank = rank
        self.dest = dest
        self.tag = tag
        self.payload_key = payload_key
        self.method = method
        where = []
        if rank is not None:
            where.append(f"rank {rank}")
        if dest is not None:
            where.append(f"dest {dest}")
        if tag is not None:
            where.append(f"tag {tag!r}")
        if payload_key is not None:
            where.append(f"payload {payload_key!r}")
        if method is not None:
            where.append(f"method {method!r}")
        ctx = " (" + ", ".join(where) + ")" if where else ""
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"object of type {type_name!r} cannot be pickled for the "
            f"process execution backend{ctx}{detail}"
        )


@dataclass(frozen=True)
class ComputeTask:
    """Picklable description of one dispatchable compute call.

    The backend resolves ``payload`` against its registry and invokes::

        getattr(registry[payload], method)(*args, *arrays, *tail)

    ``arrays`` carries the large ndarray inputs (particle states,
    positions/charges) — a process backend moves them through shared
    memory; ``args``/``tail`` are small picklable scalars placed before
    and after the arrays in the call.  ``method`` must be a *string
    literal* naming a regular method on the registered object: lambdas
    and closures cannot cross a process boundary (``repro-lint`` RPR006).
    """

    payload: str
    method: str
    args: Tuple[Any, ...] = ()
    arrays: Tuple[np.ndarray, ...] = ()
    tail: Tuple[Any, ...] = ()

    def invoke(self, obj: Any) -> Any:
        return getattr(obj, self.method)(*self.args, *self.arrays, *self.tail)


@dataclass(frozen=True)
class Compute:
    """Scheduler operation: run ``task`` on the attached execution backend.

    Yielded by rank programs (via the dispatch seam in
    :func:`repro.sdc.sweeper.evaluate_rhs` /
    ``SpaceParallelTreeEvaluator.field_program``); the value sent back
    into the generator is the task's return value.  Requires a scheduler
    constructed with ``executor=...``.
    """

    task: ComputeTask


@dataclass
class DispatchResult:
    """Outcome of one executed :class:`ComputeTask`."""

    value: Any = None
    #: exception raised by the task body (re-thrown into the rank program)
    error: Optional[BaseException] = None
    #: dense worker id that ran the task (0 for the serial backend)
    worker: int = 0
    #: wall-clock seconds spent inside the task body
    elapsed: float = 0.0
    #: perf_counter endpoints in the *executing* process (CLOCK_MONOTONIC
    #: is system-wide on Linux, so worker spans overlay on one timeline)
    wall_t0: float = 0.0
    wall_t1: float = 0.0
    #: shared-memory bytes staged for this task's input arrays
    shm_bytes: int = 0
    #: ``MetricsRegistry.as_dict()`` snapshot recorded inside the task
    metrics: Optional[Dict[str, Any]] = None


class DispatchContext:
    """Maps live payload objects to their registered backend keys.

    Threaded through the PFASST controller and sweeper so that RHS call
    sites can turn ``problem.rhs(t, u)`` into a :class:`ComputeTask`
    referencing the problem's registered key.  Objects are matched by
    identity; an unregistered object simply evaluates inline.
    """

    def __init__(self, executor: "ExecutionBackend") -> None:
        self.executor = executor
        self._keys: Dict[int, str] = {}

    def register(self, key: str, obj: Any) -> None:
        self.executor.register(key, obj)
        self._keys[id(obj)] = key

    def key_of(self, obj: Any) -> Optional[str]:
        return self._keys.get(id(obj))


class ExecutionBackend:
    """Common payload registry + worker-metrics bookkeeping.

    Subclasses set :attr:`inline` (execute at the yield point vs queue
    for a batched :meth:`dispatch`) and :attr:`requires_pickling` (the
    scheduler then escalates unpicklable *message* payloads to
    :class:`PayloadPicklingError` instead of the advisory warning).
    """

    name = "base"
    #: True: the scheduler calls :meth:`execute` at the Compute op and
    #: feeds the value straight back — no barrier phase is entered
    inline = True
    #: True: payloads must survive a process boundary
    requires_pickling = False

    def __init__(self) -> None:
        self._payloads: Dict[str, Any] = {}
        self._started = False
        #: worker id -> merged per-task metrics deltas for the active run
        self._buckets: Dict[int, MetricsRegistry] = {}
        #: backend-side recovery events awaiting the scheduler's fold
        self._events: List[Dict[str, Any]] = []

    # -- payload registry ----------------------------------------------
    def register(self, key: str, obj: Any) -> None:
        """Register ``obj`` under ``key`` (idempotent for the same object)."""
        existing = self._payloads.get(key)
        if existing is obj:
            return
        if existing is not None:
            raise ValueError(
                f"payload key {key!r} is already registered to a different "
                "object; use one executor per payload set"
            )
        if self._started:
            raise RuntimeError(
                f"cannot register payload {key!r}: the worker pool has "
                "already started (payloads ship once, at start-up)"
            )
        self._payloads[key] = obj

    def _resolve(self, task: ComputeTask) -> Any:
        try:
            return self._payloads[task.payload]
        except KeyError:
            raise KeyError(
                f"compute task references unregistered payload "
                f"{task.payload!r} (registered: {sorted(self._payloads)})"
            ) from None

    # -- execution ------------------------------------------------------
    def execute(self, task: ComputeTask) -> DispatchResult:
        raise NotImplementedError

    def dispatch(self, batch: List[ComputeTask]) -> List[DispatchResult]:
        """Run a batch; default is sequential :meth:`execute`."""
        return [self.execute(task) for task in batch]

    # -- scheduler integration -----------------------------------------
    def serial_clone(self) -> "SerialExecutor":
        """In-process twin sharing this backend's payload registry.

        The scheduler's ``verify=True`` replay runs on the clone: replay
        correctness is about op-stream determinism, not wall-clock, and
        an inline second pass sidesteps pool lifetime entanglement.
        """
        return SerialExecutor(_payloads=self._payloads)

    def reset_run(self) -> None:
        """Drop per-run worker-metric buckets (scheduler run prologue)."""
        self._buckets = {}
        self._events = []

    def drain_events(self) -> List[Dict[str, Any]]:
        """Return and clear pending backend recovery events.

        The scheduler calls this after every dispatch barrier and folds
        the entries (dicts with ``kind``/``detail`` keys) into the run's
        :class:`~repro.parallel.faults.ResilienceReport`.
        """
        events, self._events = self._events, []
        return events

    def _bucket(self, result: DispatchResult) -> None:
        if result.metrics is None:
            return
        bucket = self._buckets.get(result.worker)
        if bucket is None:
            bucket = self._buckets[result.worker] = MetricsRegistry()
        bucket.merge(result.metrics)

    def collect_into(self, registry: MetricsRegistry) -> None:
        """Fold worker metric deltas into ``registry``, sorted by worker
        id — the deterministic merge order of the executor contract."""
        for worker in sorted(self._buckets):
            registry.merge(self._buckets[worker])

    def close(self) -> None:
        """Release backend resources (no-op for in-process backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


def _run_task(obj: Any, task: ComputeTask) -> DispatchResult:
    """Execute one task in this process under a fresh metrics registry."""
    registry = MetricsRegistry()
    value: Any = None
    error: Optional[BaseException] = None
    t0 = time.perf_counter()
    try:
        with use_metrics(registry):
            value = task.invoke(obj)
    except Exception as exc:  # re-thrown into the rank program
        error = exc
    t1 = time.perf_counter()
    return DispatchResult(
        value=value, error=error, worker=0, elapsed=t1 - t0,
        wall_t0=t0, wall_t1=t1, shm_bytes=0, metrics=registry.as_dict(),
    )


class SerialExecutor(ExecutionBackend):
    """Reference backend: every task runs inline at the yield point.

    The scheduler's behaviour with a ``SerialExecutor`` attached is
    byte-identical (results *and* virtual clocks) to the same run with
    dispatch disabled entirely — the compute simply happens in
    :meth:`execute` instead of inside the generator frame.  It also
    defines the metrics contract the process backend must reproduce.
    """

    name = "serial"
    inline = True
    requires_pickling = False

    def __init__(self, _payloads: Optional[Dict[str, Any]] = None) -> None:
        super().__init__()
        if _payloads is not None:
            self._payloads = _payloads

    def execute(self, task: ComputeTask) -> DispatchResult:
        result = _run_task(self._resolve(task), task)
        self._bucket(result)
        return result


# -- worker-process side of ProcessExecutor ---------------------------------
_WORKER_PAYLOADS: Dict[str, Any] = {}
_WORKER_ID: int = 0


def _worker_init(payload_blob: bytes, id_counter: Any) -> None:
    """Pool initializer: unpack payloads once, claim a dense worker id."""
    global _WORKER_ID
    with id_counter.get_lock():
        _WORKER_ID = id_counter.value
        id_counter.value += 1
    _WORKER_PAYLOADS.update(pickle.loads(payload_blob))


def _attach_shm(name: str):
    """Attach a shared-memory block without adopting its lifetime.

    The *scheduler* process owns creation and unlinking (the block is
    gone right after the dispatch barrier); the worker only maps and
    closes.  Pool workers share the scheduler's resource-tracker process
    (both fork and spawn hand the tracker fd to children), so the
    worker-side attach merely re-adds the already-tracked name to the
    tracker's set — a no-op — and the single unregister happens inside
    the scheduler-side ``unlink()``.  Nothing to compensate for here;
    explicitly unregistering in the worker would *remove* the shared
    entry and make the later unlink trip a tracker KeyError.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_exec(
    payload_key: str,
    method: str,
    args: Tuple[Any, ...],
    tail: Tuple[Any, ...],
    shm_specs: List[Tuple[str, Tuple[int, ...], str]],
) -> Tuple[int, float, float, float, Any, Optional[BaseException], Dict[str, Any]]:
    """Run one task against shared-memory array views; return the outcome.

    The views are mapped read-only: task methods receive *inputs* through
    shared memory and must allocate their own outputs (which return
    pickled) — the explicit buffer-handoff contract of
    :mod:`repro.tree.engine`.
    """
    registry = MetricsRegistry()
    blocks = []
    value: Any = None
    error: Optional[BaseException] = None
    t0 = time.perf_counter()
    try:
        arrays = []
        for name, shape, dtype in shm_specs:
            shm = _attach_shm(name)
            blocks.append(shm)
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
            view.flags.writeable = False
            arrays.append(view)
        obj = _WORKER_PAYLOADS[payload_key]
        task = ComputeTask(payload_key, method, args, tuple(arrays), tail)  # repro-lint: disable=RPR006 -- worker-side reconstruction, already across the boundary
        with use_metrics(registry):
            value = task.invoke(obj)
    except Exception as exc:
        try:
            pickle.dumps(exc)
            error = exc
        except Exception:
            error = RuntimeError(
                f"compute task {payload_key}.{method} failed with an "
                f"unpicklable exception: {exc!r}"
            )
        value = None
    finally:
        del arrays  # drop shm views before closing the blocks
        for shm in blocks:
            shm.close()
    elapsed = time.perf_counter() - t0
    return (_WORKER_ID, t0, t0 + elapsed, elapsed, value, error,
            registry.as_dict())


class ProcessExecutor(ExecutionBackend):
    """Real-core backend over a :class:`ProcessPoolExecutor`.

    Payloads are pickled once into the pool initializer.  Per task,
    :meth:`dispatch` stages the input arrays into per-task
    ``multiprocessing.shared_memory`` blocks, submits the worker calls,
    waits for the whole batch (the scheduler's barrier), writes results
    back and unlinks the blocks.  Workers claim dense ids 0..W-1 from a
    shared counter; their per-task metric deltas are bucketed by id for
    the deterministic end-of-run merge.

    ``max_workers`` bounds genuine concurrency; ``max_workers=1`` is the
    degenerate (still multi-process) case the test suite pins.  The pool
    starts lazily on first dispatch so payload registration stays open
    until the scheduler actually runs.

    Worker death (``BrokenProcessPool``) is recoverable: dispatch is
    deterministic and side-effect-free — tasks only read staged input
    arrays and return values — so :meth:`dispatch` respawns the pool and
    re-runs the whole in-flight batch, up to ``max_retries`` times with
    exponential ``retry_backoff`` sleeps between attempts.  Each respawn
    is recorded as a backend event (folded into the scheduler's
    resilience report) and counted in the ``executor.pool_restarts`` /
    ``executor.redispatched_tasks`` metrics.
    """

    name = "process"
    inline = False
    requires_pickling = True

    def __init__(
        self,
        max_workers: int = 4,
        start_method: Optional[str] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        super().__init__()
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.max_workers = max_workers
        self.start_method = start_method
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self._pool: Optional[ProcessPoolExecutor] = None
        self._run_restarts = 0
        self._run_redispatched = 0

    # -- pool lifecycle -------------------------------------------------
    def start(self) -> None:
        """Pickle the payload registry and spin up the worker pool."""
        if self._pool is not None:
            return
        import multiprocessing

        for key, obj in self._payloads.items():
            try:
                pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise PayloadPicklingError(
                    type(obj).__name__, payload_key=key, cause=exc
                ) from exc
        blob = pickle.dumps(self._payloads, protocol=pickle.HIGHEST_PROTOCOL)
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else multiprocessing.get_context()
        )
        counter = ctx.Value("i", 0)
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(blob, counter),
        )
        self._started = True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _respawn(self) -> None:
        """Tear down a broken pool and start a fresh one."""
        if self._pool is not None:
            # the pool is broken; don't wait on dead workers
            self._pool.shutdown(wait=False)
            self._pool = None
        self.start()

    def reset_run(self) -> None:
        super().reset_run()
        self._run_restarts = 0
        self._run_redispatched = 0

    def collect_into(self, registry: MetricsRegistry) -> None:
        super().collect_into(registry)
        if self._run_restarts:
            registry.counter("executor.pool_restarts").inc(
                self._run_restarts
            )
            registry.counter("executor.redispatched_tasks").inc(
                self._run_redispatched
            )

    # -- execution ------------------------------------------------------
    def execute(self, task: ComputeTask) -> DispatchResult:
        return self.dispatch([task])[0]

    def dispatch(self, batch: List[ComputeTask]) -> List[DispatchResult]:
        attempt = 0
        while True:
            try:
                return self._dispatch_once(batch)
            except BrokenExecutor as exc:
                if attempt >= self.max_retries:
                    self._events.append({
                        "kind": "pool-failure",
                        "detail": (
                            f"worker pool died {attempt + 1} time(s) "
                            f"dispatching a batch of {len(batch)} task(s); "
                            f"retries exhausted (max_retries="
                            f"{self.max_retries})"
                        ),
                    })
                    raise RuntimeError(
                        f"process pool worker death persisted through "
                        f"{self.max_retries} respawn(s) for a batch of "
                        f"{len(batch)} task(s): {exc!r}"
                    ) from exc
                attempt += 1
                self._run_restarts += 1
                self._run_redispatched += len(batch)
                self._events.append({
                    "kind": "pool-respawn",
                    "detail": (
                        f"worker death ({exc!r}); respawned pool and "
                        f"re-dispatched {len(batch)} task(s) "
                        f"[attempt {attempt}/{self.max_retries}]"
                    ),
                })
                if self.retry_backoff > 0:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                self._respawn()

    def _dispatch_once(
        self, batch: List[ComputeTask]
    ) -> List[DispatchResult]:
        from multiprocessing import shared_memory

        self.start()
        pool = self._pool
        futures = []
        all_blocks: List[Any] = []
        shm_per_task: List[int] = []
        try:
            for task in batch:
                try:
                    pickle.dumps((task.args, task.tail),
                                 protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as exc:
                    bad = "task arguments"
                    for item in (*task.args, *task.tail):
                        try:
                            pickle.dumps(
                                item, protocol=pickle.HIGHEST_PROTOCOL
                            )
                        except Exception:
                            bad = type(item).__name__
                            break
                    raise PayloadPicklingError(
                        bad,
                        payload_key=task.payload, method=task.method,
                        cause=exc,
                    ) from exc
                specs = []
                nbytes = 0
                for arr in task.arrays:
                    a = np.ascontiguousarray(arr)
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(1, a.nbytes)
                    )
                    all_blocks.append(shm)
                    np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf)[...] = a
                    specs.append((shm.name, a.shape, a.dtype.str))
                    nbytes += int(a.nbytes)
                shm_per_task.append(nbytes)
                futures.append(pool.submit(
                    _worker_exec, task.payload, task.method,
                    task.args, task.tail, specs,
                ))
            # barrier: collect in submission order
            results = []
            for fut, nbytes in zip(futures, shm_per_task):
                wid, t0, t1, elapsed, value, error, metrics = fut.result()
                results.append(DispatchResult(
                    value=value, error=error, worker=wid, elapsed=elapsed,
                    wall_t0=t0, wall_t1=t1, shm_bytes=nbytes,
                    metrics=metrics,
                ))
        finally:
            for shm in all_blocks:
                shm.close()
                shm.unlink()
        for result in results:
            self._bucket(result)
        return results
